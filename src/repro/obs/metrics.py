"""Counters, gauges, and histograms for run telemetry.

The metric taxonomy mirrors the funnel structure the paper's pipeline
imposes (§III-A drops ~86% of collected tweets across stages):
``pipeline.tweets_seen``, ``pipeline.dropped{stage=...}``, per-shard
wall time, transport retry counts, storage fsync/retry counters — the
numbers that turn a slow or degraded chaos run from a black box into a
diagnosis.

Design constraints, in order:

* **Deterministic export** — metric snapshots sort by (name, labels),
  so two runs with the same fault schedule emit identical metric lines
  (timings aside).  No set/dict-view ordering ever reaches the output.
* **Mergeable** — per-worker registries combine with :meth:`merge`
  (counters sum, gauges last-write-wins in merge order, histograms
  pool), matching the per-worker-buffer trace model.
* **Zero influence** — a registry only ever *receives* values; nothing
  in the system reads a metric to make a decision, which is what keeps
  telemetry-on and telemetry-off runs byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

#: Label values accepted at the call site; canonicalized to strings so
#: metric keys always sort (mixed value types would not).
LabelValue = str | int | float | bool
#: Canonical (sorted, stringified) label form used as a metric key part.
LabelItems = tuple[tuple[str, str], ...]
#: A metric identity: name plus canonical labels.
MetricKey = tuple[str, LabelItems]

#: Histogram bucket exponents: upper bounds 2**e seconds (or units),
#: covering ~1µs to ~18h.  Fixed boundaries keep merged histograms
#: exact — pooling is a per-bucket sum, never a re-binning estimate.
BUCKET_EXPONENTS = range(-20, 17)


def _key(name: str, labels: dict[str, LabelValue]) -> MetricKey:
    return name, tuple(sorted((k, str(v)) for k, v in labels.items()))


def bucket_bound(value: float) -> float:
    """The histogram bucket (upper bound) a positive value falls into."""
    exponent = max(
        BUCKET_EXPONENTS.start,
        min(BUCKET_EXPONENTS.stop - 1, math.ceil(math.log2(value))),
    )
    return float(2.0**exponent)


@dataclass(slots=True)
class HistogramData:
    """Pooled observations: summary stats plus fixed-boundary buckets."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    buckets: dict[float, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        bound = bucket_bound(value) if value > 0 else 0.0
        self.buckets[bound] = self.buckets.get(bound, 0) + 1

    def merge(self, other: "HistogramData") -> None:
        self.count += other.count
        self.total += other.total
        self.minimum = min(self.minimum, other.minimum)
        self.maximum = max(self.maximum, other.maximum)
        for bound, count in sorted(other.buckets.items()):
            self.buckets[bound] = self.buckets.get(bound, 0) + count

    def to_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else None,
            "max": self.maximum if self.count else None,
            "buckets": [
                [bound, self.buckets[bound]]
                for bound in sorted(self.buckets)
            ],
        }


class MetricsRegistry:
    """One process's (or worker's) metric store.

    All three instrument families share the label model: ``inc("x",
    stage="non_us")`` and ``inc("x", stage="keyword")`` are distinct
    series under one name.
    """

    def __init__(self) -> None:
        self._counters: dict[MetricKey, float] = {}
        self._gauges: dict[MetricKey, float] = {}
        self._histograms: dict[MetricKey, HistogramData] = {}

    def inc(
        self, name: str, value: int | float = 1, **labels: LabelValue
    ) -> None:
        """Add to a monotonically growing counter."""
        if value < 0:
            raise ValueError(f"counter {name} cannot decrease (got {value})")
        key = _key(name, labels)
        self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name: str, value: float, **labels: LabelValue) -> None:
        """Set a point-in-time gauge (last write wins)."""
        self._gauges[_key(name, labels)] = float(value)

    def observe(self, name: str, value: float, **labels: LabelValue) -> None:
        """Pool one observation into a histogram."""
        key = _key(name, labels)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = HistogramData()
        histogram.observe(value)

    # -- reads (for tests and the exporter only) ------------------------

    def counter_value(self, name: str, **labels: LabelValue) -> float:
        return self._counters.get(_key(name, labels), 0)

    def gauge_value(self, name: str, **labels: LabelValue) -> float | None:
        return self._gauges.get(_key(name, labels))

    def histogram_data(
        self, name: str, **labels: LabelValue
    ) -> HistogramData | None:
        return self._histograms.get(_key(name, labels))

    @property
    def empty(self) -> bool:
        return not (self._counters or self._gauges or self._histograms)

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold another registry in (worker buffers at join)."""
        for key, value in sorted(other._counters.items()):
            self._counters[key] = self._counters.get(key, 0) + value
        for key, value in sorted(other._gauges.items()):
            self._gauges[key] = value
        for key, data in sorted(other._histograms.items()):
            mine = self._histograms.get(key)
            if mine is None:
                mine = self._histograms[key] = HistogramData()
            mine.merge(data)

    def to_records(self) -> list[dict[str, object]]:
        """Canonical export form: sorted, one JSON-ready dict per series."""
        records: list[dict[str, object]] = []
        for (name, labels), value in sorted(self._counters.items()):
            records.append(
                {
                    "kind": "counter",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                }
            )
        for (name, labels), value in sorted(self._gauges.items()):
            records.append(
                {
                    "kind": "gauge",
                    "name": name,
                    "labels": dict(labels),
                    "value": value,
                }
            )
        for (name, labels), data in sorted(self._histograms.items()):
            record: dict[str, object] = {
                "kind": "histogram",
                "name": name,
                "labels": dict(labels),
            }
            record.update(data.to_dict())
            records.append(record)
        return records
