"""Trace/metrics JSONL export, reading, validation, and summaries.

The on-disk form is one JSON object per line, in a fixed order that
makes two equal-telemetry runs byte-comparable:

1. one ``meta`` header (``schema``, worker name, caller attributes),
2. spans then events, in buffer order (deterministic: workers are
   absorbed in shard order),
3. metric series from
   :meth:`repro.obs.metrics.MetricsRegistry.to_records` (sorted).

Writes go through :class:`repro.storage.atomic.AtomicWriter` — the one
sanctioned write primitive — so a crash mid-export can never tear an
existing trace file.  Reads reuse the corpus reader's bounded
torn-tail probe (:func:`repro.dataset.io.read_objects_jsonl`): a trace
whose process died mid-flush still parses up to its last complete
line.

This module imports :mod:`repro.storage`, and :mod:`repro.storage`
imports :mod:`repro.obs.telemetry` — which is why ``repro.obs``'s
``__init__`` must never import this module.  Consumers import
``repro.obs.export`` directly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.dataset.io import read_objects_jsonl
from repro.obs.telemetry import Telemetry
from repro.storage.atomic import AtomicWriter
from repro.storage.fs import FileSystem

#: Version stamped into (and required of) every trace file's meta line.
TRACE_SCHEMA = 1

#: Conventional trace file name inside a run directory.
TRACE_FILENAME = "trace.jsonl"

#: Record kinds a valid trace may contain, and the keys each requires.
_REQUIRED_KEYS: dict[str, tuple[str, ...]] = {
    "meta": ("schema",),
    "span": ("name", "worker", "span_id", "start", "end", "attrs"),
    "event": ("name", "worker", "at", "attrs"),
    "counter": ("name", "labels", "value"),
    "gauge": ("name", "labels", "value"),
    "histogram": ("name", "labels", "count", "sum", "buckets"),
}


def trace_records(
    telemetry: Telemetry, **meta_attrs: str | int | float | bool | None
) -> list[dict[str, object]]:
    """The full export payload for one telemetry bundle, header first."""
    meta: dict[str, object] = {
        "kind": "meta",
        "schema": TRACE_SCHEMA,
        "worker": telemetry.worker,
    }
    meta.update(meta_attrs)
    records: list[dict[str, object]] = [meta]
    records.extend(span.to_dict() for span in telemetry.tracer.spans)
    records.extend(event.to_dict() for event in telemetry.tracer.events)
    records.extend(telemetry.metrics.to_records())
    return records


def write_trace(
    telemetry: Telemetry,
    path: str | Path,
    *,
    fs: FileSystem | None = None,
    **meta_attrs: str | int | float | bool | None,
) -> int:
    """Atomically export a telemetry bundle as JSONL; returns the line count.

    Safe to call repeatedly on a growing bundle (the journal flushes
    after every stage): each call atomically replaces the file with the
    complete current state, so the newest durable trace is always whole
    up to the last finished flush.
    """
    records = trace_records(telemetry, **meta_attrs)
    with AtomicWriter(path, fs=fs) as writer:
        for record in records:
            writer.write(json.dumps(record, ensure_ascii=False))
            writer.write("\n")
    return len(records)


def read_trace(
    path: str | Path, tolerate_torn_tail: bool = True
) -> list[dict[str, object]]:
    """Load a trace file's records; tolerant of a torn tail by default.

    Traces are advisory telemetry, not corpus data — a trace whose
    writer was killed mid-line should still yield every complete
    record, hence the inverted ``tolerate_torn_tail`` default relative
    to the corpus readers.
    """
    return [
        record
        for _, record in read_objects_jsonl(
            path, tolerate_torn_tail=tolerate_torn_tail
        )
    ]


def validate_trace(records: list[dict[str, object]]) -> list[str]:
    """Schema-check parsed trace records; returns problems (empty = valid)."""
    problems: list[str] = []
    if not records:
        return ["trace is empty (no meta header)"]
    head = records[0]
    if head.get("kind") != "meta":
        problems.append(f"first record must be meta, got {head.get('kind')!r}")
    elif head.get("schema") != TRACE_SCHEMA:
        problems.append(
            f"unsupported trace schema {head.get('schema')!r} "
            f"(expected {TRACE_SCHEMA})"
        )
    for index, record in enumerate(records):
        kind = record.get("kind")
        if not isinstance(kind, str) or kind not in _REQUIRED_KEYS:
            problems.append(f"record {index}: unknown kind {kind!r}")
            continue
        if kind == "meta" and index > 0:
            problems.append(f"record {index}: meta must be first")
            continue
        missing = [
            key for key in _REQUIRED_KEYS[kind] if key not in record
        ]
        if missing:
            problems.append(
                f"record {index} ({kind}): missing {', '.join(missing)}"
            )
            continue
        if kind == "span":
            start, end = record["start"], record["end"]
            if (
                isinstance(start, (int, float))
                and isinstance(end, (int, float))
                and end < start
            ):
                problems.append(
                    f"record {index} (span {record['name']!r}): "
                    f"end {end} precedes start {start}"
                )
        elif kind == "counter":
            value = record["value"]
            if isinstance(value, (int, float)) and value < 0:
                problems.append(
                    f"record {index} (counter {record['name']!r}): "
                    f"negative value {value}"
                )
        elif kind == "histogram":
            buckets = record["buckets"]
            count = record["count"]
            if isinstance(buckets, list) and isinstance(count, int):
                pooled = sum(
                    pair[1]
                    for pair in buckets
                    if isinstance(pair, list) and len(pair) == 2
                )
                if pooled != count:
                    problems.append(
                        f"record {index} (histogram {record['name']!r}): "
                        f"bucket counts sum to {pooled}, expected {count}"
                    )
    return problems


@dataclass(slots=True)
class TraceSummary:
    """What ``repro trace`` renders: the run at a glance.

    Attributes:
        stages: (span name, worker, duration) for every ``stage.*``
            span, in recorded order.
        funnel: pipeline funnel counters keyed by counter name (with a
            ``{stage=...}`` suffix for labelled drops), insertion order
            = canonical sorted export order.
        slowest_shards: (worker, duration) for ``shard`` spans, slowest
            first.
        fault_counters: non-pipeline counters — transport, storage,
            supervisor, sensor — in sorted export order.
        span_count / event_count: raw record totals.
    """

    stages: list[tuple[str, str, float]] = field(default_factory=list)
    funnel: dict[str, float] = field(default_factory=dict)
    slowest_shards: list[tuple[str, float]] = field(default_factory=list)
    fault_counters: dict[str, float] = field(default_factory=dict)
    span_count: int = 0
    event_count: int = 0

    def as_rows(self) -> list[tuple[str, str]]:
        """(label, value) pairs for table rendering (HealthReport shape)."""
        rows: list[tuple[str, str]] = []
        for name, worker, duration in self.stages:
            rows.append((f"{name} [{worker}]", f"{duration:.6f}s"))
        for name, value in self.funnel.items():
            rows.append((name, f"{value:g}"))
        for worker, duration in self.slowest_shards:
            rows.append((f"shard {worker}", f"{duration:.6f}s"))
        for name, value in self.fault_counters.items():
            rows.append((name, f"{value:g}"))
        rows.append(("spans", str(self.span_count)))
        rows.append(("events", str(self.event_count)))
        return rows

    def to_dict(self) -> dict[str, object]:
        return {
            "stages": [
                {"name": name, "worker": worker, "duration": duration}
                for name, worker, duration in self.stages
            ],
            "funnel": dict(self.funnel),
            "slowest_shards": [
                {"worker": worker, "duration": duration}
                for worker, duration in self.slowest_shards
            ],
            "fault_counters": dict(self.fault_counters),
            "span_count": self.span_count,
            "event_count": self.event_count,
        }


def _counter_label(record: dict[str, object]) -> str:
    name = str(record["name"])
    labels = record.get("labels")
    if isinstance(labels, dict) and labels:
        inner = ",".join(
            f"{key}={labels[key]}" for key in sorted(labels)
        )
        return f"{name}{{{inner}}}"
    return name


def summarize_trace(records: list[dict[str, object]]) -> TraceSummary:
    """Fold parsed trace records into the ``repro trace`` summary."""
    summary = TraceSummary()
    shards: list[tuple[str, float]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "span":
            summary.span_count += 1
            name = str(record.get("name", ""))
            worker = str(record.get("worker", ""))
            start = record.get("start")
            end = record.get("end")
            if not isinstance(start, (int, float)) or not isinstance(
                end, (int, float)
            ):
                continue
            duration = float(end) - float(start)
            if name.startswith("stage."):
                summary.stages.append((name, worker, duration))
            elif name == "shard":
                shards.append((worker, duration))
        elif kind == "event":
            summary.event_count += 1
        elif kind == "counter":
            value = record.get("value")
            if not isinstance(value, (int, float)):
                continue
            label = _counter_label(record)
            if label.startswith("pipeline."):
                summary.funnel[label] = float(value)
            else:
                summary.fault_counters[label] = float(value)
    shards.sort(key=lambda pair: (-pair[1], pair[0]))
    summary.slowest_shards = shards
    return summary
