"""Run-telemetry observability: trace spans, metrics, ambient runtime.

Public surface::

    from repro.obs import current, activate, Telemetry
    from repro.obs import ManualClock, MONOTONIC

    with activate(Telemetry()) as telemetry:
        with current().span("stage.collect", shard=3):
            current().inc("pipeline.tweets_seen")

Export (:mod:`repro.obs.export`) is deliberately **not** re-exported
here: the storage layer imports :mod:`repro.obs.telemetry` to count
fsyncs and retries, while the exporter writes through the storage
layer's atomic primitive.  Keeping this package's ``__init__`` free of
the exporter is what keeps that dependency pair acyclic — import
``repro.obs.export`` directly where needed.

The governing invariant (property-tested in
:mod:`tests.properties.test_props_obs`): telemetry on versus off
produces byte-identical corpora under every chaos mode.  Telemetry is
write-only; no code path reads a span or counter to make a decision.
"""

from repro.obs.clock import MONOTONIC, Clock, ManualClock, MonotonicClock
from repro.obs.metrics import (
    BUCKET_EXPONENTS,
    HistogramData,
    LabelValue,
    MetricsRegistry,
    bucket_bound,
)
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    TelemetrySnapshot,
    activate,
    current,
)
from repro.obs.trace import AttrValue, EventRecord, SpanRecord, Tracer

__all__ = [
    "AttrValue",
    "BUCKET_EXPONENTS",
    "Clock",
    "EventRecord",
    "HistogramData",
    "LabelValue",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "MONOTONIC",
    "NULL_TELEMETRY",
    "NullTelemetry",
    "SpanRecord",
    "Telemetry",
    "TelemetrySnapshot",
    "Tracer",
    "activate",
    "bucket_bound",
    "current",
]
