"""The monotonic-clock seam: the only sanctioned host-clock read.

Telemetry needs durations, and durations need a clock — but the
determinism invariants (DESIGN §11) forbid wall-clock reads in core
logic, because a corpus built at 14:02 must be byte-identical to one
built at 14:03.  The resolution is a *seam*: exactly one function in
the tree reads ``time.monotonic``, every timestamp-consuming component
(the tracer, the supervisor's liveness deadlines) takes a clock as a
dependency, and tests substitute :class:`ManualClock` to make measured
durations deterministic.

Clock readings may only ever flow into *telemetry* (spans, events,
deadlines) — never into a computed artifact.  The chaos-equivalence
property tests (:mod:`tests.properties.test_props_obs`) prove the
stronger claim: tracing on and off produce byte-identical corpora.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """Anything that can report elapsed seconds on a monotonic axis."""

    def now(self) -> float:
        """Seconds since an arbitrary, monotonically advancing origin."""
        ...  # pragma: no cover - protocol


class MonotonicClock:
    """The host's monotonic clock, confined to this one seam."""

    __slots__ = ()

    def now(self) -> float:
        return time.monotonic()  # reprolint: disable=RPL002 — the observability clock seam: the single sanctioned host-clock read; readings feed spans and liveness deadlines only, never computed artifacts


class ManualClock:
    """A hand-advanced clock for deterministic telemetry in tests.

    Args:
        start: initial reading in seconds.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Move time forward; negative advances are rejected."""
        if seconds < 0:
            raise ValueError(f"cannot advance a clock backwards ({seconds})")
        self._now += seconds


#: The shared host-clock instance every production component should use.
MONOTONIC = MonotonicClock()
