"""The telemetry bundle and its ambient activation seam.

Instrumented code never takes a telemetry argument — it asks
:func:`current` for the active :class:`Telemetry` and records into it.
When none is active, :func:`current` returns the module's disabled
singleton whose every operation is a no-op, so instrumentation costs a
context-variable read and nothing else on untraced runs.

The ambient value lives in a :class:`contextvars.ContextVar`: thread-
and async-safe by construction.  Worker *processes* do not inherit the
parent's activation usefully (their buffers would die with them);
instead each traced worker builds its own :class:`Telemetry`, runs
under it, and ships a picklable :class:`TelemetrySnapshot` back with
its result for the parent to :meth:`Telemetry.absorb` in deterministic
shard order — the per-worker-buffer model of :mod:`repro.obs.trace`.

The invariant the property tests enforce: activating telemetry changes
*no* computed byte anywhere.  Telemetry is write-only — no code path
reads a span or counter to make a decision.
"""

from __future__ import annotations

from contextlib import AbstractContextManager, contextmanager
from contextvars import ContextVar
from collections.abc import Iterator
from dataclasses import dataclass

from repro.obs.clock import MONOTONIC, Clock
from repro.obs.metrics import LabelValue, MetricsRegistry
from repro.obs.trace import AttrValue, EventRecord, SpanRecord, Tracer


@dataclass(frozen=True, slots=True)
class TelemetrySnapshot:
    """A finished worker buffer, picklable for the result pipe.

    Attributes:
        worker: the recording worker's name.
        spans / events: the worker's trace buffer.
        metrics: the worker's metric series in export form.
    """

    worker: str
    spans: tuple[SpanRecord, ...]
    events: tuple[EventRecord, ...]
    metrics: "MetricsRegistry"


class Telemetry:
    """One run's telemetry: a tracer plus a metrics registry.

    Args:
        worker: buffer name (``"main"`` in the parent, ``"shard-N"``
            in workers).
        clock: monotonic time source; tests pass a
            :class:`repro.obs.clock.ManualClock`.
    """

    enabled = True

    def __init__(self, worker: str = "main", clock: Clock | None = None):
        self.clock: Clock = clock if clock is not None else MONOTONIC
        self.tracer = Tracer(worker=worker, clock=self.clock)
        self.metrics = MetricsRegistry()

    @property
    def worker(self) -> str:
        return self.tracer.worker

    def span(
        self, name: str, **attrs: AttrValue
    ) -> AbstractContextManager[None]:
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: AttrValue) -> None:
        self.tracer.event(name, **attrs)

    def inc(
        self, name: str, value: int | float = 1, **labels: LabelValue
    ) -> None:
        self.metrics.inc(name, value, **labels)

    def gauge(self, name: str, value: float, **labels: LabelValue) -> None:
        self.metrics.gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels: LabelValue) -> None:
        self.metrics.observe(name, value, **labels)

    def snapshot(self) -> TelemetrySnapshot:
        """Freeze this telemetry into a picklable worker buffer."""
        return TelemetrySnapshot(
            worker=self.worker,
            spans=tuple(self.tracer.spans),
            events=tuple(self.tracer.events),
            metrics=self.metrics,
        )

    def absorb(self, snapshot: TelemetrySnapshot | None) -> None:
        """Merge a worker buffer; call in deterministic shard order."""
        if snapshot is None:
            return
        self.tracer.absorb(list(snapshot.spans), list(snapshot.events))
        self.metrics.merge(snapshot.metrics)


@contextmanager
def _null_span() -> Iterator[None]:
    yield


class NullTelemetry(Telemetry):
    """The disabled singleton: every operation is a no-op."""

    enabled = False

    def span(
        self, name: str, **attrs: AttrValue
    ) -> AbstractContextManager[None]:
        return _null_span()

    def event(self, name: str, **attrs: AttrValue) -> None:
        return None

    def inc(
        self, name: str, value: int | float = 1, **labels: LabelValue
    ) -> None:
        return None

    def gauge(self, name: str, value: float, **labels: LabelValue) -> None:
        return None

    def observe(self, name: str, value: float, **labels: LabelValue) -> None:
        return None


#: Shared across every untraced call site; records nothing.
NULL_TELEMETRY = NullTelemetry()

_ACTIVE: ContextVar[Telemetry | None] = ContextVar(
    "repro_obs_telemetry", default=None
)


def current() -> Telemetry:
    """The active telemetry, or the disabled singleton."""
    active = _ACTIVE.get()
    return active if active is not None else NULL_TELEMETRY


@contextmanager
def activate(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Make ``telemetry`` ambient for the duration of the with-block."""
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)
