"""Trace spans and point events on the monotonic-clock seam.

A :class:`Tracer` records two shapes:

* **Spans** — named, nestable intervals opened with the
  :meth:`Tracer.span` context manager.  Nesting is tracked with an
  explicit stack, so a span records its parent and ``repro trace`` can
  rebuild the stage → shard hierarchy.
* **Events** — named instants (a retry dispatched, a worker crash
  observed) with attributes.

Process safety comes from *per-worker buffers*: each worker process
builds its own tracer (see :func:`repro.obs.telemetry.Telemetry.snapshot`),
ships the finished buffer back with its shard result, and the parent
merges buffers in deterministic shard order at join.  Nothing is shared
while work is in flight, so tracing can never introduce cross-process
coordination — and therefore can never perturb results.

Timestamps are monotonic-clock readings local to the recording process;
durations are meaningful everywhere, absolute values only within one
worker's records.
"""

from __future__ import annotations

from collections.abc import Iterator
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs.clock import MONOTONIC, Clock

#: JSON-representable attribute values.
AttrValue = str | int | float | bool | None


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed span.

    Attributes:
        name: span name (e.g. ``"stage.collect"``, ``"shard"``).
        worker: the recording buffer's name (``"main"``, ``"shard-3"``).
        span_id: id unique within the recording worker.
        parent_id: enclosing span's id within the same worker, or None.
        start / end: monotonic readings in the recording process.
        attrs: caller-supplied attributes.
    """

    name: str
    worker: str
    span_id: int
    parent_id: int | None
    start: float
    end: float
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "span",
            "name": self.name,
            "worker": self.worker,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


@dataclass(frozen=True, slots=True)
class EventRecord:
    """One named instant with attributes."""

    name: str
    worker: str
    at: float
    attrs: dict[str, AttrValue] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "kind": "event",
            "name": self.name,
            "worker": self.worker,
            "at": self.at,
            "attrs": dict(self.attrs),
        }


class Tracer:
    """Span/event recorder for one worker.

    Args:
        worker: buffer name stamped on every record.
        clock: monotonic time source (the seam; tests pass
            :class:`repro.obs.clock.ManualClock`).
    """

    def __init__(self, worker: str = "main", clock: Clock | None = None):
        self.worker = worker
        self.clock: Clock = clock if clock is not None else MONOTONIC
        self.spans: list[SpanRecord] = []
        self.events: list[EventRecord] = []
        self._stack: list[int] = []
        self._next_id = 0

    @contextmanager
    def span(self, name: str, **attrs: AttrValue) -> Iterator[None]:
        """Record a nestable interval around the with-block.

        The span lands in :attr:`spans` when the block exits — including
        on exception, so a failing stage still shows its duration.
        """
        span_id = self._next_id
        self._next_id += 1
        parent_id = self._stack[-1] if self._stack else None
        self._stack.append(span_id)
        start = self.clock.now()
        try:
            yield
        finally:
            end = self.clock.now()
            self._stack.pop()
            self.spans.append(
                SpanRecord(
                    name=name,
                    worker=self.worker,
                    span_id=span_id,
                    parent_id=parent_id,
                    start=start,
                    end=end,
                    attrs=dict(attrs),
                )
            )

    def event(self, name: str, **attrs: AttrValue) -> None:
        """Record a point event at the current clock reading."""
        self.events.append(
            EventRecord(
                name=name,
                worker=self.worker,
                at=self.clock.now(),
                attrs=dict(attrs),
            )
        )

    def absorb(
        self, spans: list[SpanRecord], events: list[EventRecord]
    ) -> None:
        """Merge a finished per-worker buffer into this tracer.

        Records keep their original worker stamp and ids (ids are only
        unique per worker; ``(worker, span_id)`` is the global key).
        Call in deterministic order — e.g. shard index — at join.
        """
        self.spans.extend(spans)
        self.events.extend(events)
