"""The six major solid organs transplanted in the USA.

The paper restricts the *Subject* vocabulary (Fig. 1) to the six major
solid organs: heart, kidney, liver, lung, pancreas, and intestine.  This
module is the single source of truth for that entity set — every matrix in
:mod:`repro.core` indexes its columns by :data:`ORGANS`.
"""

from __future__ import annotations

import enum
from collections.abc import Iterable


class Organ(enum.Enum):
    """One of the six major solid organs studied in the paper."""

    HEART = "heart"
    KIDNEY = "kidney"
    LIVER = "liver"
    LUNG = "lung"
    PANCREAS = "pancreas"
    INTESTINE = "intestine"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value

    @property
    def index(self) -> int:
        """Column index of this organ in attention/aggregation matrices."""
        return ORGANS.index(self)

    @classmethod
    def from_name(cls, name: str) -> "Organ":
        """Resolve an organ from a canonical name or known alias.

        Raises:
            UnknownOrganError: if ``name`` is not a recognized organ term.
        """
        token = name.strip().lower()
        organ = ALIASES.get(token)
        if organ is None:
            raise UnknownOrganError(name)
        return organ


class UnknownOrganError(KeyError):
    """Raised when a string cannot be resolved to one of the six organs."""

    def __init__(self, name: str):
        super().__init__(name)
        self.name = name

    def __str__(self) -> str:
        return f"unknown organ name: {self.name!r}"


#: Canonical column order for all organ-indexed matrices.
ORGANS: tuple[Organ, ...] = (
    Organ.HEART,
    Organ.KIDNEY,
    Organ.LIVER,
    Organ.LUNG,
    Organ.PANCREAS,
    Organ.INTESTINE,
)

#: Number of organs (``n`` in the paper's notation).
N_ORGANS: int = len(ORGANS)

#: Canonical lowercase names, in column order.
ORGAN_NAMES: tuple[str, ...] = tuple(organ.value for organ in ORGANS)

#: Accepted surface forms for each organ, used by the NLP matcher.  Keys are
#: lowercase single tokens; plural forms are included because tweet text uses
#: them freely ("kidneys", "lungs").
ALIASES: dict[str, Organ] = {
    "heart": Organ.HEART,
    "hearts": Organ.HEART,
    "cardiac": Organ.HEART,
    "kidney": Organ.KIDNEY,
    "kidneys": Organ.KIDNEY,
    "renal": Organ.KIDNEY,
    "liver": Organ.LIVER,
    "livers": Organ.LIVER,
    "hepatic": Organ.LIVER,
    "lung": Organ.LUNG,
    "lungs": Organ.LUNG,
    "pulmonary": Organ.LUNG,
    "pancreas": Organ.PANCREAS,
    "pancreases": Organ.PANCREAS,
    "pancreatic": Organ.PANCREAS,
    "intestine": Organ.INTESTINE,
    "intestines": Organ.INTESTINE,
    "intestinal": Organ.INTESTINE,
    "bowel": Organ.INTESTINE,
}


def organ_indices(organs: Iterable[Organ]) -> list[int]:
    """Map organs to their matrix column indices, preserving order."""
    return [organ.index for organ in organs]
