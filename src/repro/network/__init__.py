"""Social-network substrate: follower graph, cascades, interventions.

The paper closes by arguing its characterization "can inform models of
social influence to be employed in the context of organ donation aiming
at designing interventions that effectively target specific groups of
users" (§V), building on evidence that social-media campaigns move donor
registrations (its ref [8], the "Facebook effect").  This package builds
that model layer:

* :mod:`repro.network.graph` — a follower graph over the synthetic
  population with degree heterogeneity and homophily by state and by
  focal organ (people follow like-minded, nearby accounts);
* :mod:`repro.network.cascades` — independent-cascade message spread,
  with pass-along probability modulated by the receiver's attention to
  the message's organ;
* :mod:`repro.network.influence` — seed-set evaluation and greedy
  (CELF-style) influence maximization with degree/random baselines;
* :mod:`repro.network.intervention` — campaign strategies that combine
  the paper's artifacts (Fig. 7 user segments, Fig. 5 receptive states)
  and measure awareness reach.
"""

from repro.network.cascades import CascadeResult, simulate_cascade
from repro.network.graph import FollowerGraph, GraphConfig, build_follower_graph
from repro.network.influence import (
    InfluenceEstimate,
    estimate_influence,
    greedy_influence_maximization,
)
from repro.network.intervention import (
    CampaignOutcome,
    CampaignStrategy,
    run_campaign,
)

__all__ = [
    "CampaignOutcome",
    "CampaignStrategy",
    "CascadeResult",
    "FollowerGraph",
    "GraphConfig",
    "InfluenceEstimate",
    "build_follower_graph",
    "estimate_influence",
    "greedy_influence_maximization",
    "run_campaign",
    "simulate_cascade",
]
