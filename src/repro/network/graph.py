"""Follower-graph generation over the synthetic population.

Edges point in the direction information flows: an edge ``u → v`` means
*v follows u*, so u's tweets reach v.  The generator reproduces the three
structural facts that matter for influence modelling on Twitter:

* heavy-tailed audience sizes (a few accounts reach many followers),
* state homophily (people disproportionately follow accounts from their
  own state), and
* interest homophily (organ-donation conversations cluster by focal
  organ — the communities behind Fig. 7's segments).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.errors import ConfigError
from repro.organs import Organ
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True, slots=True)
class GraphConfig:
    """Follower-graph shape parameters.

    Attributes:
        mean_followers: mean audience size per account.
        prestige_exponent: Zipf exponent for account attractiveness; the
            follower distribution's tail follows it.
        same_state_share: fraction of follow edges drawn from the
            follower's own state.
        same_organ_share: fraction drawn from accounts with the same
            focal organ (state-independent).
        seed: RNG seed.
    """

    mean_followers: float = 8.0
    prestige_exponent: float = 2.2
    same_state_share: float = 0.35
    same_organ_share: float = 0.30
    seed: int = 0

    def __post_init__(self) -> None:
        if self.mean_followers <= 0:
            raise ConfigError("mean_followers must be > 0")
        if self.prestige_exponent <= 1.0:
            raise ConfigError("prestige_exponent must be > 1")
        if not 0.0 <= self.same_state_share + self.same_organ_share <= 1.0:
            raise ConfigError(
                "same_state_share + same_organ_share must be within [0, 1]"
            )


class FollowerGraph:
    """A follower graph with per-node attention metadata.

    Wraps a :class:`networkx.DiGraph`; node ids are user ids.  Node
    attributes: ``state`` (USPS code or None), ``focal`` (:class:`Organ`),
    and ``attention`` (the ground-truth attention vector).
    """

    def __init__(self, digraph: nx.DiGraph):
        self.graph = digraph

    @property
    def n_users(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self.graph.number_of_edges()

    def followers_of(self, user_id: int) -> list[int]:
        """Users who see ``user_id``'s tweets."""
        return list(self.graph.successors(user_id))

    def audience_size(self, user_id: int) -> int:
        return self.graph.out_degree(user_id)

    def attention_of(self, user_id: int) -> np.ndarray:
        return self.graph.nodes[user_id]["attention"]

    def focal_of(self, user_id: int) -> Organ:
        return self.graph.nodes[user_id]["focal"]

    def state_of(self, user_id: int) -> str | None:
        return self.graph.nodes[user_id]["state"]

    def users_in_state(self, state: str) -> list[int]:
        return [
            node
            for node, data in self.graph.nodes(data=True)
            if data["state"] == state
        ]

    def users_with_focal(self, organ: Organ) -> list[int]:
        return [
            node
            for node, data in self.graph.nodes(data=True)
            if data["focal"] is organ
        ]

    def top_audiences(self, k: int) -> list[int]:
        """The k accounts with the largest audiences."""
        return sorted(
            self.graph.nodes,
            key=lambda node: -self.graph.out_degree(node),
        )[:k]


def build_follower_graph(
    world: SyntheticWorld, config: GraphConfig | None = None
) -> FollowerGraph:
    """Generate the follower graph for a synthetic world.

    Complexity is O(users × mean_followers); a paper-scale world
    (~520k users) builds in well under a minute.
    """
    config = config or GraphConfig()
    rng = np.random.default_rng(config.seed)
    truth = world.ground_truth
    n = world.n_users

    states = np.array(
        [seed.state or "" for seed in truth.seeds], dtype=object
    )
    focals = [attention.focal for attention in truth.attentions]

    # Account prestige: heavy-tailed attractiveness weights.
    prestige = rng.zipf(config.prestige_exponent, size=n).astype(float)
    prestige_p = prestige / prestige.sum()

    by_state: dict[str, list[int]] = defaultdict(list)
    by_focal: dict[Organ, list[int]] = defaultdict(list)
    for user_id in range(n):
        if states[user_id]:
            by_state[states[user_id]].append(user_id)
        by_focal[focals[user_id]].append(user_id)
    state_pools = {
        state: (np.array(members), _pool_weights(members, prestige))
        for state, members in by_state.items()
    }
    focal_pools = {
        organ: (np.array(members), _pool_weights(members, prestige))
        for organ, members in by_focal.items()
    }

    digraph = nx.DiGraph()
    for user_id in range(n):
        digraph.add_node(
            user_id,
            state=truth.seeds[user_id].state,
            focal=focals[user_id],
            attention=truth.attentions[user_id].distribution,
        )

    # Each user picks who to follow; the edge added is followee → user.
    follow_counts = rng.poisson(config.mean_followers, size=n)
    for user_id in range(n):
        wanted = int(follow_counts[user_id])
        if wanted <= 0:
            continue
        followees: set[int] = set()
        rolls = rng.random(wanted)
        for roll in rolls:
            if roll < config.same_state_share and states[user_id]:
                pool, weights = state_pools[states[user_id]]
            elif roll < config.same_state_share + config.same_organ_share:
                pool, weights = focal_pools[focals[user_id]]
            else:
                pool, weights = None, None
            if pool is None:
                choice = int(rng.choice(n, p=prestige_p))
            elif pool.size <= 1:
                continue
            else:
                choice = int(pool[int(rng.choice(pool.size, p=weights))])
            if choice != user_id:
                followees.add(choice)
        for followee in followees:
            digraph.add_edge(followee, user_id)
    return FollowerGraph(digraph)


def _pool_weights(members: list[int], prestige: np.ndarray) -> np.ndarray:
    weights = prestige[np.array(members)]
    return weights / weights.sum()
