"""Influence estimation and greedy seed selection.

Monte-Carlo influence estimation under the independent-cascade model and
a lazy-greedy (CELF-style) maximizer.  Influence maximization is the
formal version of the paper's "designing interventions that effectively
target specific groups of users"; the submodularity of independent
cascade makes lazy greedy a (1 − 1/e)-approximation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.network.cascades import simulate_cascade
from repro.network.graph import FollowerGraph
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class InfluenceEstimate:
    """Monte-Carlo influence of one seed set.

    Attributes:
        seeds: the evaluated seed set.
        mean_reach: mean activated users across simulations.
        std_reach: standard deviation across simulations.
        mean_aligned_reach: mean of Σ attention[organ] over activated
            users — "awareness mass" delivered to the campaign's topic,
            the metric that rewards targeting the right audience rather
            than the biggest one.
        n_simulations: Monte-Carlo repetitions.
    """

    seeds: tuple[int, ...]
    mean_reach: float
    std_reach: float
    mean_aligned_reach: float
    n_simulations: int

    @property
    def alignment(self) -> float:
        """Aligned reach per activated user, in [0, 1]."""
        if self.mean_reach <= 0:
            return 0.0
        return self.mean_aligned_reach / self.mean_reach


def estimate_influence(
    graph: FollowerGraph,
    seeds: list[int],
    organ: Organ,
    n_simulations: int = 30,
    base_probability: float = 0.06,
    seed: int = 0,
) -> InfluenceEstimate:
    """Monte-Carlo estimate of a seed set's expected (aligned) reach."""
    if n_simulations < 1:
        raise ConfigError(f"n_simulations must be >= 1, got {n_simulations}")
    rng = np.random.default_rng(seed)
    organ_index = organ.index
    sizes: list[int] = []
    aligned: list[float] = []
    for __ in range(n_simulations):
        cascade = simulate_cascade(graph, seeds, organ, rng, base_probability)
        sizes.append(cascade.size)
        aligned.append(
            float(
                sum(
                    graph.attention_of(user)[organ_index]
                    for user in cascade.activated
                )
            )
        )
    return InfluenceEstimate(
        seeds=tuple(seeds),
        mean_reach=float(np.mean(sizes)),
        std_reach=float(np.std(sizes)),
        mean_aligned_reach=float(np.mean(aligned)),
        n_simulations=n_simulations,
    )


def greedy_influence_maximization(
    graph: FollowerGraph,
    budget: int,
    organ: Organ,
    candidates: list[int] | None = None,
    n_simulations: int = 20,
    base_probability: float = 0.06,
    seed: int = 0,
) -> InfluenceEstimate:
    """Lazy-greedy seed selection under independent cascade.

    Args:
        graph: the follower graph.
        budget: number of seeds to select.
        organ: campaign topic.
        candidates: candidate pool; defaults to the 50 largest audiences
            (marginal gain is negligible outside it and evaluation is the
            cost driver).
        n_simulations: Monte-Carlo repetitions per evaluation.

    Raises:
        ConfigError: if the budget exceeds the candidate pool.
    """
    if candidates is None:
        candidates = graph.top_audiences(50)
    if budget < 1 or budget > len(candidates):
        raise ConfigError(
            f"budget must be in [1, {len(candidates)}], got {budget}"
        )

    def reach(seed_set: list[int]) -> float:
        return estimate_influence(
            graph, seed_set, organ, n_simulations, base_probability, seed
        ).mean_reach

    chosen: list[int] = []
    base_reach = 0.0
    # CELF: a max-heap of stale marginal gains; re-evaluate lazily.
    heap: list[tuple[float, int, int]] = []  # (-gain, candidate, round)
    for candidate in candidates:
        gain = reach([candidate])
        heapq.heappush(heap, (-gain, candidate, 0))
    current_round = 0
    while len(chosen) < budget and heap:
        neg_gain, candidate, evaluated_round = heapq.heappop(heap)
        if evaluated_round == current_round:
            chosen.append(candidate)
            base_reach = reach(chosen)
            current_round += 1
        else:
            gain = reach(chosen + [candidate]) - base_reach
            heapq.heappush(heap, (-gain, candidate, current_round))
    final = estimate_influence(
        graph, chosen, organ, n_simulations, base_probability, seed
    )
    return final
