"""Conversation-thread extraction and analysis.

The paper's related work observes that health conversations on Twitter
form support-group-like structures (its ref [13]) and that dialogue
structure can be modeled from reply chains (ref [22]).  This module
reconstructs reply threads from a collected corpus and measures the
support-group signal: threads are far more organ-homogeneous than chance.

Threads are built from the ``in_reply_to`` links *within the corpus* —
replies to uncollected tweets start their own threads, exactly as a
keyword-filtered collection would see them.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

import numpy as np

from repro.dataset.corpus import TweetCorpus
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class Thread:
    """One reconstructed conversation thread.

    Attributes:
        root_id: tweet id of the thread root (within the corpus).
        tweet_ids: all member tweet ids, root first, in reply order.
        participants: distinct user ids involved.
        depth: longest root-to-leaf reply chain length.
        organs: union of organs mentioned across the thread.
    """

    root_id: int
    tweet_ids: tuple[int, ...]
    participants: frozenset[int]
    depth: int
    organs: frozenset[Organ]

    @property
    def size(self) -> int:
        return len(self.tweet_ids)

    @property
    def is_conversation(self) -> bool:
        """More than one tweet and more than one participant."""
        return self.size > 1 and len(self.participants) > 1


def build_threads(corpus: TweetCorpus) -> list[Thread]:
    """Reconstruct reply threads from a corpus.

    Every tweet whose parent is absent from the corpus roots a thread.
    Complexity O(n) in corpus size.
    """
    by_id = {record.tweet.tweet_id: record for record in corpus}
    children: dict[int, list[int]] = defaultdict(list)
    roots: list[int] = []
    for record in corpus:
        parent = record.tweet.in_reply_to
        if parent is not None and parent in by_id:
            children[parent].append(record.tweet.tweet_id)
        else:
            roots.append(record.tweet.tweet_id)

    threads: list[Thread] = []
    for root in roots:
        tweet_ids: list[int] = []
        participants: set[int] = set()
        organs: set[Organ] = set()
        depth = 0
        stack = [(root, 0)]
        while stack:
            tweet_id, level = stack.pop()
            record = by_id[tweet_id]
            tweet_ids.append(tweet_id)
            participants.add(record.user_id)
            organs |= record.distinct_organs
            depth = max(depth, level)
            for child in children.get(tweet_id, ()):
                stack.append((child, level + 1))
        threads.append(
            Thread(
                root_id=root,
                tweet_ids=tuple(tweet_ids),
                participants=frozenset(participants),
                depth=depth,
                organs=frozenset(organs),
            )
        )
    return threads


@dataclass(frozen=True, slots=True)
class ThreadHomogeneity:
    """The support-group signal: organ agreement within threads.

    Attributes:
        n_conversations: multi-tweet, multi-participant threads.
        observed_single_organ_rate: fraction of conversations whose
            tweets all mention a single common organ set of size 1.
        shuffled_single_organ_rate: same statistic after shuffling
            tweet-thread assignments (the chance baseline).
    """

    n_conversations: int
    observed_single_organ_rate: float
    shuffled_single_organ_rate: float

    @property
    def lift(self) -> float:
        """observed / chance; > 1 means interest-aligned conversations."""
        if self.shuffled_single_organ_rate <= 0:
            return float("inf") if self.observed_single_organ_rate > 0 else 1.0
        return (
            self.observed_single_organ_rate / self.shuffled_single_organ_rate
        )


def thread_homogeneity(
    corpus: TweetCorpus, seed: int = 0
) -> ThreadHomogeneity:
    """Measure organ homogeneity of conversations vs a shuffled baseline.

    The baseline reassigns tweets to conversations of the same size
    distribution uniformly at random, breaking the reply structure while
    preserving everything else.
    """
    threads = [t for t in build_threads(corpus) if t.is_conversation]
    if not threads:
        return ThreadHomogeneity(
            n_conversations=0,
            observed_single_organ_rate=float("nan"),
            shuffled_single_organ_rate=float("nan"),
        )
    observed = np.mean([len(thread.organs) == 1 for thread in threads])

    rng = np.random.default_rng(seed)
    organ_sets = [record.distinct_organs for record in corpus]
    sizes = [thread.size for thread in threads]
    shuffled_hits = []
    for __ in range(20):
        picks = rng.integers(0, len(organ_sets), size=sum(sizes))
        cursor = 0
        for size in sizes:
            union: set[Organ] = set()
            for offset in range(size):
                union |= organ_sets[int(picks[cursor + offset])]
            shuffled_hits.append(len(union) == 1)
            cursor += size
    return ThreadHomogeneity(
        n_conversations=len(threads),
        observed_single_organ_rate=float(observed),
        shuffled_single_organ_rate=float(np.mean(shuffled_hits)),
    )
