"""Campaign intervention strategies.

Compares seed-selection strategies for an organ-awareness campaign — the
practical payoff of the paper's characterizations:

* ``RANDOM`` — naive baseline.
* ``TOP_FOLLOWERS`` — pure audience size, ignoring content fit.
* ``SEGMENT`` — the Fig. 7 insight: seed users whose attention is focused
  on the campaign organ (high pass-along probability among peers).
* ``RECEPTIVE_STATES`` — the Fig. 5 insight: seed high-audience users in
  states with a significant conversation excess for the organ.
* ``GREEDY`` — influence maximization (upper reference).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.network.graph import FollowerGraph
from repro.network.influence import (
    estimate_influence,
    greedy_influence_maximization,
)
from repro.organs import Organ


class CampaignStrategy(enum.Enum):
    """Seed-selection strategy for an awareness campaign."""

    RANDOM = "random"
    TOP_FOLLOWERS = "top-followers"
    SEGMENT = "segment"
    RECEPTIVE_STATES = "receptive-states"
    GREEDY = "greedy"


@dataclass(frozen=True, slots=True)
class CampaignOutcome:
    """Result of one strategy run.

    Attributes:
        strategy: the strategy used.
        organ: campaign topic.
        seeds: chosen seed users.
        mean_reach: expected users reached (Monte-Carlo).
        std_reach: reach standard deviation.
        mean_aligned_reach: expected awareness mass delivered to the
            campaign organ (Σ attention[organ] over reached users).
    """

    strategy: CampaignStrategy
    organ: Organ
    seeds: tuple[int, ...]
    mean_reach: float
    std_reach: float
    mean_aligned_reach: float

    @property
    def alignment(self) -> float:
        """Aligned reach per user reached."""
        if self.mean_reach <= 0:
            return 0.0
        return self.mean_aligned_reach / self.mean_reach


def run_campaign(
    graph: FollowerGraph,
    strategy: CampaignStrategy,
    organ: Organ,
    budget: int = 10,
    receptive_states: tuple[str, ...] = (),
    n_simulations: int = 30,
    base_probability: float = 0.06,
    seed: int = 0,
) -> CampaignOutcome:
    """Select seeds by one strategy and estimate the campaign's reach.

    Args:
        graph: the follower graph.
        strategy: seed-selection strategy.
        organ: campaign topic.
        budget: seed count.
        receptive_states: required for ``RECEPTIVE_STATES`` — normally
            the Fig. 5 highlighted states for the organ.
        n_simulations: Monte-Carlo repetitions for reach estimation.

    Raises:
        ConfigError: on an infeasible budget, or RECEPTIVE_STATES without
            states.
    """
    if budget < 1:
        raise ConfigError(f"budget must be >= 1, got {budget}")
    rng = np.random.default_rng(seed)

    if strategy is CampaignStrategy.GREEDY:
        estimate = greedy_influence_maximization(
            graph, budget, organ,
            n_simulations=max(10, n_simulations // 2),
            base_probability=base_probability,
            seed=seed,
        )
        return CampaignOutcome(
            strategy=strategy,
            organ=organ,
            seeds=estimate.seeds,
            mean_reach=estimate.mean_reach,
            std_reach=estimate.std_reach,
            mean_aligned_reach=estimate.mean_aligned_reach,
        )

    seeds_chosen = _select_seeds(
        graph, strategy, organ, budget, receptive_states, rng
    )
    estimate = estimate_influence(
        graph, seeds_chosen, organ, n_simulations, base_probability, seed
    )
    return CampaignOutcome(
        strategy=strategy,
        organ=organ,
        seeds=estimate.seeds,
        mean_reach=estimate.mean_reach,
        std_reach=estimate.std_reach,
        mean_aligned_reach=estimate.mean_aligned_reach,
    )


def _select_seeds(
    graph: FollowerGraph,
    strategy: CampaignStrategy,
    organ: Organ,
    budget: int,
    receptive_states: tuple[str, ...],
    rng: np.random.Generator,
) -> list[int]:
    if strategy is CampaignStrategy.RANDOM:
        nodes = list(graph.graph.nodes)
        if budget > len(nodes):
            raise ConfigError("budget exceeds population")
        return [int(u) for u in rng.choice(nodes, size=budget, replace=False)]

    if strategy is CampaignStrategy.TOP_FOLLOWERS:
        return graph.top_audiences(budget)

    if strategy is CampaignStrategy.SEGMENT:
        segment = graph.users_with_focal(organ)
        if len(segment) < budget:
            raise ConfigError(
                f"only {len(segment)} users focal on {organ.value}"
            )
        segment.sort(key=lambda user: -graph.audience_size(user))
        return segment[:budget]

    if strategy is CampaignStrategy.RECEPTIVE_STATES:
        if not receptive_states:
            raise ConfigError(
                "RECEPTIVE_STATES requires at least one state"
            )
        pool = [
            user
            for state in receptive_states
            for user in graph.users_in_state(state)
        ]
        if len(pool) < budget:
            raise ConfigError(
                f"only {len(pool)} users in receptive states"
            )
        pool.sort(key=lambda user: -graph.audience_size(user))
        return pool[:budget]

    raise ConfigError(f"unknown strategy {strategy!r}")
