"""Independent-cascade message spread over the follower graph.

A message about one organ starts at a seed set; each newly activated user
exposes their followers once, and a follower activates (retweets /
internalizes the message) with probability

    p = base_probability × (0.5 + attention_follower[organ])

so kidney-focused users readily pass along kidney content and mostly
ignore pancreas content — the attention-gated diffusion the paper's
conclusion envisions informing ("models of social influence … that
effectively target specific groups of users").
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigError
from repro.network.graph import FollowerGraph
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class CascadeResult:
    """One simulated cascade.

    Attributes:
        activated: all users reached (including seeds).
        depth: longest seed-to-leaf hop count.
        organ: the message's organ.
    """

    activated: frozenset[int]
    depth: int
    organ: Organ

    @property
    def size(self) -> int:
        return len(self.activated)


def simulate_cascade(
    graph: FollowerGraph,
    seeds: list[int],
    organ: Organ,
    rng: np.random.Generator,
    base_probability: float = 0.06,
) -> CascadeResult:
    """Run one independent-cascade simulation.

    Args:
        graph: the follower graph.
        seeds: initially activated users.
        organ: the message topic (gates pass-along probability).
        rng: randomness source (pass a fresh generator for i.i.d. runs).
        base_probability: per-exposure activation probability scale.

    Raises:
        ConfigError: on an empty seed set or invalid probability.
    """
    if not seeds:
        raise ConfigError("cascade needs at least one seed")
    if not 0.0 < base_probability <= 1.0:
        raise ConfigError(
            f"base_probability must be in (0, 1], got {base_probability}"
        )
    organ_index = organ.index
    activated: set[int] = set(seeds)
    frontier: deque[tuple[int, int]] = deque((seed, 0) for seed in seeds)
    depth = 0
    while frontier:
        user, level = frontier.popleft()
        depth = max(depth, level)
        followers = graph.followers_of(user)
        if not followers:
            continue
        rolls = rng.random(len(followers))
        for follower, roll in zip(followers, rolls):
            if follower in activated:
                continue
            attention = graph.attention_of(follower)[organ_index]
            if roll < base_probability * (0.5 + attention):
                activated.add(follower)
                frontier.append((follower, level + 1))
    return CascadeResult(
        activated=frozenset(activated), depth=depth, organ=organ
    )
