"""Shared shape for "what did this run live through" reports.

Two layers of the system produce health reports: the resilient stream
client (:class:`repro.twitter.resilient.ReliabilityReport`, transport
faults) and the supervised compute pool
(:class:`repro.supervise.RunHealth`, worker faults).  They count
different things but are consumed the same way — rendered under a run's
output so degradation is explicit, never silent.  This module pins that
common surface down as a :class:`typing.Protocol` plus the one shared
formatting helper, so the CLI and the journal can treat any health
report uniformly.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class HealthReport(Protocol):
    """What every layer-health report must expose.

    ``as_rows`` feeds table renderers; ``summary_lines`` is the uniform
    text surface printed by ``repro collect`` / ``repro run``.
    """

    def as_rows(self) -> list[tuple[str, str]]:
        """(label, value) pairs for table rendering."""
        ...  # pragma: no cover - protocol

    def summary_lines(self) -> list[str]:
        """Human-readable ``label: value`` lines."""
        ...  # pragma: no cover - protocol


def rows_to_lines(rows: list[tuple[str, str]]) -> list[str]:
    """The canonical ``summary_lines`` rendering of ``as_rows`` output."""
    return [f"{label}: {value}" for label, value in rows]
