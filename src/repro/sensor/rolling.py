"""Rolling-window organ-donation awareness sensor.

Consumes a live (or replayed) tweet stream and maintains the paper's
user-level characterization over a sliding time window, emitting
:class:`AwarenessSnapshot` records: per-organ user counts and the states
currently showing a significant conversation excess (Eq. 4 applied to the
window's population).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.config import CollectionConfig, RelativeRiskConfig
from repro.core.relative_risk import highlighted_organs
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.dataset.stats import users_per_organ
from repro.errors import ConfigError
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, matches_query_set
from repro.nlp.matcher import OrganMatcher
from repro.organs import Organ
from repro.pipeline.augment import augment_location
from repro.pipeline.usfilter import is_us_located
from repro.twitter.models import Tweet


@dataclass(frozen=True)
class AwarenessSnapshot:
    """The sensor's reading for one window.

    Attributes:
        window_start / window_end: time span covered.
        n_tweets: retained tweets in the window.
        n_users: distinct users in the window.
        users_by_organ: Fig. 2a per-window (organ popularity right now).
        highlights: Fig. 5 per-window (state → organs in excess).
    """

    window_start: datetime
    window_end: datetime
    n_tweets: int
    n_users: int
    users_by_organ: dict[Organ, int]
    highlights: dict[str, tuple[Organ, ...]]

    def emerging_states(self) -> list[str]:
        """States with at least one highlighted organ, sorted."""
        return sorted(state for state, organs in self.highlights.items() if organs)


class RollingAwarenessSensor:
    """Sliding-window awareness characterization over a tweet stream.

    Args:
        window: how much history a snapshot covers.
        collection: keyword/geocoding configuration (paper defaults).
        relative_risk: highlight-detection configuration.  The default
            ``min_users`` still applies per window — early windows rarely
            flag anything, exactly as a cold-started sensor should.

    The sensor is pure stream-processing: :meth:`observe` ingests one raw
    tweet (applying the full §III-A pipeline inline) and :meth:`snapshot`
    characterizes the current window.  Eviction follows tweet timestamps,
    so replays of historical streams behave identically to live use.
    """

    def __init__(
        self,
        window: timedelta,
        collection: CollectionConfig | None = None,
        relative_risk: RelativeRiskConfig | None = None,
    ):
        if window <= timedelta(0):
            raise ConfigError(f"window must be positive, got {window}")
        self.window = window
        self.collection = collection or CollectionConfig()
        self.relative_risk = relative_risk or RelativeRiskConfig()
        self._queries = build_query_set(
            self.collection.context_terms, self.collection.subject_terms
        )
        self._geocoder = Geocoder()
        self._matcher = OrganMatcher()
        self._buffer: deque[CollectedTweet] = deque()
        self.seen = 0
        self.retained = 0

    def observe(self, tweet: Tweet) -> bool:
        """Ingest one tweet; returns True when it entered the window."""
        self.seen += 1
        self._evict(tweet.created_at)
        if not matches_query_set(tweet.text, self._queries):
            return False
        match = augment_location(tweet, self._geocoder, self.collection)
        if not is_us_located(match, self.collection):
            return False
        mentions = self._matcher.mentions(tweet.text)
        if not mentions:
            return False
        self._buffer.append(
            CollectedTweet(tweet=tweet, location=match, mentions=dict(mentions))
        )
        self.retained += 1
        return True

    def snapshot(self) -> AwarenessSnapshot | None:
        """Characterize the current window; ``None`` while it is empty."""
        if not self._buffer:
            return None
        corpus = TweetCorpus(self._buffer)
        start, end = corpus.time_span()
        return AwarenessSnapshot(
            window_start=start,
            window_end=end,
            n_tweets=len(corpus),
            n_users=corpus.n_users,
            users_by_organ=users_per_organ(corpus),
            highlights=highlighted_organs(corpus, self.relative_risk),
        )

    def run(
        self, stream: Iterable[Tweet], emit_every: int = 1000
    ) -> Iterator[AwarenessSnapshot]:
        """Drive the sensor over a stream, yielding periodic snapshots.

        Args:
            stream: tweets in timestamp order.
            emit_every: emit a snapshot after this many *retained* tweets.
        """
        if emit_every < 1:
            raise ConfigError(f"emit_every must be >= 1, got {emit_every}")
        since_emit = 0
        for tweet in stream:
            if self.observe(tweet):
                since_emit += 1
                if since_emit >= emit_every:
                    since_emit = 0
                    snapshot = self.snapshot()
                    if snapshot is not None:
                        yield snapshot
        final = self.snapshot()
        if final is not None:
            yield final

    @property
    def window_size(self) -> int:
        """Tweets currently in the window."""
        return len(self._buffer)

    def _evict(self, now: datetime) -> None:
        horizon = now - self.window
        while self._buffer and self._buffer[0].tweet.created_at < horizon:
            self._buffer.popleft()
