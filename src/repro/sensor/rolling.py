"""Rolling-window organ-donation awareness sensor.

Consumes a live (or replayed) tweet stream and maintains the paper's
user-level characterization over a sliding time window, emitting
:class:`AwarenessSnapshot` records: per-organ user counts and the states
currently showing a significant conversation excess (Eq. 4 applied to the
window's population).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from datetime import datetime, timedelta

from repro.config import CollectionConfig, RelativeRiskConfig
from repro.core.relative_risk import highlighted_organs
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.dataset.stats import users_per_organ
from repro.errors import ConfigError
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, matches_query_set
from repro.obs import current as telemetry_current
from repro.nlp.matcher import OrganMatcher
from repro.organs import Organ
from repro.pipeline.augment import augment_location
from repro.pipeline.usfilter import is_us_located
from repro.twitter.models import Tweet


@dataclass(frozen=True)
class AwarenessSnapshot:
    """The sensor's reading for one window.

    Attributes:
        window_start / window_end: time span covered.
        n_tweets: retained tweets in the window.
        n_users: distinct users in the window.
        users_by_organ: Fig. 2a per-window (organ popularity right now).
        highlights: Fig. 5 per-window (state → organs in excess).
    """

    window_start: datetime
    window_end: datetime
    n_tweets: int
    n_users: int
    users_by_organ: dict[Organ, int]
    highlights: dict[str, tuple[Organ, ...]]

    def emerging_states(self) -> list[str]:
        """States with at least one highlighted organ, sorted."""
        return sorted(state for state, organs in self.highlights.items() if organs)


class RollingAwarenessSensor:
    """Sliding-window awareness characterization over a tweet stream.

    Args:
        window: how much history a snapshot covers.
        collection: keyword/geocoding configuration (paper defaults).
        relative_risk: highlight-detection configuration.  The default
            ``min_users`` still applies per window — early windows rarely
            flag anything, exactly as a cold-started sensor should.

    The sensor is pure stream-processing: :meth:`observe` ingests one raw
    tweet (applying the full §III-A pipeline inline) and :meth:`snapshot`
    characterizes the current window.  Eviction follows tweet timestamps,
    so replays of historical streams behave identically to live use.

    Out-of-order arrivals are handled exactly: the eviction horizon
    follows the *newest* timestamp seen (the stream frontier), a tweet
    already older than the horizon is rejected as stale (counted in
    :attr:`stale_dropped`, never admitted), and an in-window late
    arrival is inserted at its timestamp-sorted position — so the
    window's oldest tweet is always at the buffer's head and eviction
    can never strand an old tweet behind a newer one.
    """

    def __init__(
        self,
        window: timedelta,
        collection: CollectionConfig | None = None,
        relative_risk: RelativeRiskConfig | None = None,
    ):
        if window <= timedelta(0):
            raise ConfigError(f"window must be positive, got {window}")
        self.window = window
        self.collection = collection or CollectionConfig()
        self.relative_risk = relative_risk or RelativeRiskConfig()
        self._queries = build_query_set(
            self.collection.context_terms, self.collection.subject_terms
        )
        self._geocoder = Geocoder()
        self._matcher = OrganMatcher()
        self._buffer: deque[CollectedTweet] = deque()
        self._frontier: datetime | None = None
        self.seen = 0
        self.retained = 0
        self.stale_dropped = 0

    def observe(self, tweet: Tweet) -> bool:
        """Ingest one tweet; returns True when it entered the window.

        A tweet whose timestamp already lies behind the current eviction
        horizon (the newest timestamp seen minus the window) is stale:
        admitting it would put an already-expired record in the window,
        and before the frontier was tracked such records could sit behind
        newer ones forever, surviving every eviction scan.  Stale tweets
        are rejected and counted instead.
        """
        self.seen += 1
        if self._frontier is None or tweet.created_at > self._frontier:
            self._frontier = tweet.created_at
        self._evict()
        if tweet.created_at < self._frontier - self.window:
            self.stale_dropped += 1
            telemetry_current().inc("sensor.stale_dropped")
            return False
        if not matches_query_set(tweet.text, self._queries):
            return False
        match = augment_location(tweet, self._geocoder, self.collection)
        if not is_us_located(match, self.collection):
            return False
        mentions = self._matcher.mentions(tweet.text)
        if not mentions:
            return False
        record = CollectedTweet(
            tweet=tweet, location=match, mentions=dict(mentions)
        )
        # Keep the buffer timestamp-sorted so eviction's head scan is
        # exact; a late arrival walks back from the tail (bounded by its
        # displacement, which transport reordering keeps small).
        position = len(self._buffer)
        while (
            position > 0
            and self._buffer[position - 1].tweet.created_at > tweet.created_at
        ):
            position -= 1
        if position == len(self._buffer):
            self._buffer.append(record)
        else:
            self._buffer.insert(position, record)
            telemetry_current().inc("sensor.late_arrivals")
        self.retained += 1
        return True

    def snapshot(self) -> AwarenessSnapshot | None:
        """Characterize the current window; ``None`` while it is empty."""
        if not self._buffer:
            return None
        corpus = TweetCorpus(self._buffer)
        start, end = corpus.time_span()
        return AwarenessSnapshot(
            window_start=start,
            window_end=end,
            n_tweets=len(corpus),
            n_users=corpus.n_users,
            users_by_organ=users_per_organ(corpus),
            highlights=highlighted_organs(corpus, self.relative_risk),
        )

    def run(
        self, stream: Iterable[Tweet], emit_every: int = 1000
    ) -> Iterator[AwarenessSnapshot]:
        """Drive the sensor over a stream, yielding periodic snapshots.

        Args:
            stream: tweets in timestamp order.
            emit_every: emit a snapshot after this many *retained* tweets.
        """
        if emit_every < 1:
            raise ConfigError(f"emit_every must be >= 1, got {emit_every}")
        since_emit = 0
        for tweet in stream:
            if self.observe(tweet):
                since_emit += 1
                if since_emit >= emit_every:
                    since_emit = 0
                    snapshot = self.snapshot()
                    if snapshot is not None:
                        yield snapshot
        final = self.snapshot()
        if final is not None:
            yield final

    @property
    def window_size(self) -> int:
        """Tweets currently in the window."""
        return len(self._buffer)

    def _evict(self) -> None:
        """Drop every buffered tweet behind the frontier's horizon.

        The horizon follows the newest timestamp *seen* — not the
        current tweet's — so an out-of-order old arrival can never pull
        the horizon backwards; and because the buffer is kept sorted,
        the head scan provably reaches everything expired.
        """
        if self._frontier is None:
            return
        horizon = self._frontier - self.window
        while self._buffer and self._buffer[0].tweet.created_at < horizon:
            self._buffer.popleft()
