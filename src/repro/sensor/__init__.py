"""Real-time awareness sensing.

The paper concludes the approach "has the potential to characterize the
awareness of organ donation in real-time".  This package delivers that
extension: a rolling-window sensor over a live tweet stream that
maintains the user-level characterization incrementally and emits
relative-risk snapshots per window.
"""

from repro.sensor.rolling import AwarenessSnapshot, RollingAwarenessSensor

__all__ = ["AwarenessSnapshot", "RollingAwarenessSensor"]
