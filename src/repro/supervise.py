"""Supervised process pool: worker death is a scheduled event, not an error.

The plain executor behind the first parallel layer had no fault story:
one worker segfault aborted the whole sharded collect, K-Means restart
fan-out, or k-sweep, and a hung worker stalled it forever.  This module
replaces it with a MapReduce-style supervisor:

* **One process per task attempt.**  Each task runs in its own child
  with a private result pipe, so a dying worker can corrupt nothing
  shared — the classic failure mode of queue-based pools, where one
  killed worker poisons the queue for everyone.
* **Crash detection** via exit codes: a child that dies without
  reporting a result is a failed attempt, whatever killed it.
* **Heartbeat + per-task deadline** for hung workers: the supervisor
  polls at ``heartbeat_interval`` and terminates any attempt that
  outlives ``task_timeout``.
* **Bounded deterministic retries**: a failed task is re-dispatched to a
  fresh worker up to ``max_retries`` times.  Tasks are pure functions of
  their inputs, so a retry recomputes the identical value and the merged
  output stays byte-identical to a serial run under *any* fault
  schedule.
* **Poison-task quarantine**: a task that exhausts its retries is
  dead-lettered into a :class:`ComputeDeadLetter` (with every attempt's
  failure reason) and the run completes *degraded* — explicitly, via
  :class:`RunHealth` — never hanging and never silently dropping work.

Results come back position-ordered (``results[i]`` belongs to
``tasks[i]``; ``None`` marks a quarantined task), so every caller's
ordered merge is preserved regardless of completion order.

Clock reads are confined to liveness detection (deadlines and poll
pacing) and go through the observability clock seam
(:data:`repro.obs.clock.MONOTONIC`); they influence only *when* a retry
is scheduled, never any computed value, so replayability of results is
unaffected.  The supervisor also narrates itself into the ambient
telemetry (:func:`repro.obs.current`): dispatch/complete/fail counters,
heartbeat ticks, and retry/quarantine events — write-only, so tracing a
run cannot change it.
"""

from __future__ import annotations

import os
import pickle
import time
import traceback
from collections import deque
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field, fields
from multiprocessing.connection import Connection, wait as connection_wait
from typing import Any, TypeVar

from repro.errors import ConfigError
from repro.faults.compute import InjectedComputeError, WorkerFault, WorkerFaultPlan
from repro.health import rows_to_lines
from repro.obs import current as telemetry_current
from repro.obs.clock import MONOTONIC
from repro.procpool import pool_context, reaped

T = TypeVar("T")
R = TypeVar("R")

#: Result-pipe frame tags.  Every worker report is one ``send_bytes``
#: frame whose first byte says how to read the rest: ``O`` — a pickled
#: ordinary object; ``B`` — raw bytes from a task that returned
#: :class:`RawResult` (zero pickle involvement); ``E`` — a UTF-8 task
#: traceback.  An unknown tag is treated as a corrupt report, i.e. a
#: crashed attempt.
_TAG_OBJECT = b"O"
_TAG_BYTES = b"B"
_TAG_ERROR = b"E"


@dataclass(frozen=True, slots=True)
class RawResult:
    """A task result that is already wire-encoded bytes.

    A task function that returns ``RawResult`` opts its payload out of
    pickling on the result pipe: the worker ships it as one tagged raw
    byte frame and the caller receives the same ``RawResult`` back,
    decoding it however its own wire format dictates.  The sharded
    pipeline uses this to return JSON-line frames
    (:mod:`repro.pipeline.wire`) instead of pickled record graphs.
    """

    payload: bytes


@dataclass(frozen=True, slots=True)
class SupervisorPolicy:
    """Retry, deadline, and pacing policy for one supervised run.

    Attributes:
        max_retries: re-dispatches after a task's first failed attempt;
            a task failing ``max_retries + 1`` attempts total is
            quarantined.
        task_timeout: per-attempt deadline in seconds; ``None`` disables
            deadline detection (crash detection still applies).
        heartbeat_interval: supervisor poll period in seconds — the
            upper bound on how long a crash or expired deadline goes
            unnoticed.
    """

    max_retries: int = 2
    task_timeout: float | None = None
    heartbeat_interval: float = 0.05

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.task_timeout is not None and self.task_timeout <= 0.0:
            raise ConfigError(
                f"task_timeout must be > 0 or None, got {self.task_timeout}"
            )
        if self.heartbeat_interval <= 0.0:
            raise ConfigError(
                "heartbeat_interval must be > 0, got "
                f"{self.heartbeat_interval}"
            )


def ensure_supervisable(
    policy: SupervisorPolicy, plan: WorkerFaultPlan
) -> None:
    """Check that ``policy`` can provably absorb every fault in ``plan``.

    The compute-layer analog of
    :func:`repro.twitter.resilient.ensure_compatible`: an injected hang
    is only recoverable by a deadline, a slow task must fit inside that
    deadline, and rate-injected faults must stop before retries run out.
    Poison tasks are exempt — quarantine is their *intended* outcome.

    Raises:
        ConfigError: when the plan can inject a fault the policy cannot
            recover from.
    """
    if plan.hang_rate > 0.0:
        if policy.task_timeout is None:
            raise ConfigError(
                "plan injects hangs but policy.task_timeout is None; a "
                "hung worker would stall the run forever — set a deadline"
            )
        if plan.hang_seconds <= policy.task_timeout:
            raise ConfigError(
                f"hang_seconds={plan.hang_seconds} does not exceed "
                f"task_timeout={policy.task_timeout}; the injected hang "
                "would just be a slow task"
            )
    if (
        plan.slow_rate > 0.0
        and policy.task_timeout is not None
        and plan.slow_seconds >= policy.task_timeout
    ):
        raise ConfigError(
            f"slow_seconds={plan.slow_seconds} exceeds "
            f"task_timeout={policy.task_timeout}; slow tasks would be "
            "killed as hangs and retried forever"
        )
    rate_faults_active = any(
        getattr(plan, name) > 0.0
        for name in ("crash_rate", "hang_rate", "exception_rate", "slow_rate")
    )
    if rate_faults_active and plan.max_faulted_attempts > policy.max_retries:
        raise ConfigError(
            f"max_faulted_attempts={plan.max_faulted_attempts} exceeds "
            f"max_retries={policy.max_retries}; a rate-injected fault "
            "could exhaust every retry and quarantine a healthy task"
        )


@dataclass(frozen=True, slots=True)
class ComputeDeadLetter:
    """One quarantined task, preserved with its full failure history.

    The compute-layer sibling of
    :class:`repro.twitter.resilient.DeadLetter`: instead of an
    undecodable frame it records a task that killed every worker it was
    dispatched to.

    Attributes:
        task_index: position of the task in the submitted sequence.
        label: caller-supplied task name (e.g. ``"shard 3"``).
        attempts: total attempts made (initial dispatch + retries).
        failures: per-attempt failure descriptions — exit codes,
            deadline expiries, or tracebacks.
    """

    task_index: int
    label: str
    attempts: int
    failures: tuple[str, ...]

    def to_dict(self) -> dict[str, object]:
        return {
            "task_index": self.task_index,
            "label": self.label,
            "attempts": self.attempts,
            "failures": list(self.failures),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ComputeDeadLetter":
        return cls(
            task_index=int(data["task_index"]),
            label=str(data["label"]),
            attempts=int(data["attempts"]),
            failures=tuple(str(item) for item in data["failures"]),
        )


@dataclass(slots=True)
class RunHealth:
    """What one supervised compute run survived.

    The compute-layer sibling of
    :class:`repro.twitter.resilient.ReliabilityReport`; both implement
    the :class:`repro.health.HealthReport` protocol and are surfaced
    together under a run's output.

    Attributes:
        tasks: tasks submitted.
        completed: tasks that produced a result.
        retries: re-dispatches after failed attempts.
        worker_crashes: attempts that died without reporting (non-zero
            or silent exit).
        worker_timeouts: attempts terminated for outliving the deadline.
        task_errors: attempts whose task raised an exception.
        quarantined: tasks dead-lettered after exhausting retries.
        dead_letters: the quarantined tasks' records.
    """

    tasks: int = 0
    completed: int = 0
    retries: int = 0
    worker_crashes: int = 0
    worker_timeouts: int = 0
    task_errors: int = 0
    quarantined: int = 0
    dead_letters: list[ComputeDeadLetter] = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        """True when any task was quarantined (results have a gap)."""
        return self.quarantined > 0

    @property
    def failed_attempts(self) -> int:
        return self.worker_crashes + self.worker_timeouts + self.task_errors

    def as_rows(self) -> list[tuple[str, str]]:
        rows = [
            ("Tasks supervised", f"{self.tasks:,}"),
            ("Tasks completed", f"{self.completed:,}"),
            ("Worker crashes survived", f"{self.worker_crashes:,}"),
            ("Worker deadline kills", f"{self.worker_timeouts:,}"),
            ("Task exceptions survived", f"{self.task_errors:,}"),
            ("Retries dispatched", f"{self.retries:,}"),
            ("Tasks quarantined", f"{self.quarantined:,}"),
        ]
        for letter in self.dead_letters:
            rows.append(
                (
                    f"Dead-lettered: {letter.label}",
                    f"{letter.attempts} attempts; last: "
                    f"{letter.failures[-1].splitlines()[-1]}",
                )
            )
        return rows

    def summary_lines(self) -> list[str]:
        return rows_to_lines(self.as_rows())

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name != "dead_letters"
        }
        data["dead_letters"] = [
            letter.to_dict() for letter in self.dead_letters
        ]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "RunHealth":
        health = cls(
            **{
                spec.name: int(data[spec.name])
                for spec in fields(cls)
                if spec.name != "dead_letters"
            }
        )
        health.dead_letters = [
            ComputeDeadLetter.from_dict(item) for item in data["dead_letters"]
        ]
        return health

    def merge(self, other: "RunHealth") -> "RunHealth":
        """Combine two health reports (counters sum, dead letters chain)."""
        merged = RunHealth()
        for spec in fields(RunHealth):
            if spec.name == "dead_letters":
                continue
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        merged.dead_letters = list(self.dead_letters) + list(other.dead_letters)
        return merged


def _worker_main(
    func: Callable[[Any], Any],
    task: Any,
    task_index: int,
    attempt: int,
    fault_plan: WorkerFaultPlan | None,
    conn: Connection,
) -> None:
    """Run one task attempt in a child process and report through the pipe.

    Applies the injected fault for this (task, attempt) first, so a
    crash/hang models a worker dying *before* it can report anything.
    Exactly one message is sent on success or task exception; a crashed
    or hung worker sends nothing and is detected by the supervisor.
    """
    fault = (
        fault_plan.fault_for(task_index, attempt)
        if fault_plan is not None
        else None
    )
    if fault is WorkerFault.CRASH:
        conn.close()
        os._exit(fault_plan.crash_exit_code)  # type: ignore[union-attr]
    if fault is WorkerFault.HANG:
        # A hung worker holds its pipe open and never reports; if the
        # supervisor's deadline does not kill it first, it eventually
        # dies without a result (observed as a crash).
        time.sleep(fault_plan.hang_seconds)  # type: ignore[union-attr]
        conn.close()
        os._exit(fault_plan.crash_exit_code)  # type: ignore[union-attr]
    if fault is WorkerFault.SLOW:
        time.sleep(fault_plan.slow_seconds)  # type: ignore[union-attr]
    try:
        if fault is WorkerFault.EXCEPTION:
            raise InjectedComputeError(
                f"injected exception storm (task {task_index}, "
                f"attempt {attempt})"
            )
        result = func(task)
    except Exception:  # reprolint: disable=RPL004 — traceback is forwarded to the supervisor, which retries or dead-letters it; nothing is swallowed
        conn.send_bytes(_TAG_ERROR + traceback.format_exc().encode("utf-8"))
    else:
        if isinstance(result, RawResult):
            conn.send_bytes(_TAG_BYTES + result.payload)
        else:
            conn.send_bytes(
                _TAG_OBJECT
                + pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL)
            )
    finally:
        conn.close()


@dataclass(slots=True)
class _Attempt:
    """One in-flight task attempt."""

    task_index: int
    attempt: int
    process: Any
    conn: Connection
    deadline: float | None


def run_supervised(
    func: Callable[[T], R],
    tasks: Sequence[T],
    *,
    workers: int = 1,
    policy: SupervisorPolicy | None = None,
    fault_plan: WorkerFaultPlan | None = None,
    labels: Sequence[str] | None = None,
) -> tuple[list[R | None], RunHealth]:
    """Run ``func`` over ``tasks`` in supervised worker processes.

    Args:
        func: pure task function; must be picklable on spawn platforms.
        tasks: task payloads; ``results[i]`` corresponds to ``tasks[i]``.
        workers: maximum concurrent worker processes.
        policy: retry/deadline/pacing policy (defaults apply).
        fault_plan: when given, each (task, attempt) consults the plan
            inside the worker and injects the scheduled fault; the plan
            is validated against the policy first.
        labels: human-readable task names for health reporting.

    Returns:
        ``(results, health)`` — results position-ordered with ``None``
        for quarantined tasks, and the run's :class:`RunHealth`.

    Raises:
        ConfigError: on invalid arguments or an unabsorbable fault plan.
    """
    policy = policy or SupervisorPolicy()
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    if fault_plan is not None:
        ensure_supervisable(policy, fault_plan)
    task_list = list(tasks)
    if labels is not None and len(labels) != len(task_list):
        raise ConfigError(
            f"got {len(labels)} labels for {len(task_list)} tasks"
        )
    label_list = (
        list(labels)
        if labels is not None
        else [f"task {index}" for index in range(len(task_list))]
    )
    health = RunHealth(tasks=len(task_list))
    results: list[R | None] = [None] * len(task_list)
    pending: deque[tuple[int, int]] = deque(
        (index, 0) for index in range(len(task_list))
    )
    failures: dict[int, list[str]] = {
        index: [] for index in range(len(task_list))
    }
    running: dict[int, _Attempt] = {}
    ctx = pool_context()
    max_attempts = policy.max_retries + 1

    telemetry = telemetry_current()

    def fail_attempt(attempt: _Attempt, description: str) -> None:
        failures[attempt.task_index].append(description)
        if attempt.attempt + 1 < max_attempts:
            health.retries += 1
            telemetry.inc("supervisor.retries")
            telemetry.event(
                "supervisor.retry",
                task=label_list[attempt.task_index],
                attempt=attempt.attempt + 1,
            )
            pending.append((attempt.task_index, attempt.attempt + 1))
        else:
            health.quarantined += 1
            telemetry.inc("supervisor.quarantined")
            telemetry.event(
                "supervisor.quarantine",
                task=label_list[attempt.task_index],
                attempts=attempt.attempt + 1,
            )
            health.dead_letters.append(
                ComputeDeadLetter(
                    task_index=attempt.task_index,
                    label=label_list[attempt.task_index],
                    attempts=attempt.attempt + 1,
                    failures=tuple(failures[attempt.task_index]),
                )
            )

    with reaped() as registry:
        while pending or running:
            while pending and len(running) < workers:
                task_index, attempt_no = pending.popleft()
                recv_conn, send_conn = ctx.Pipe(duplex=False)
                process = ctx.Process(
                    target=_worker_main,
                    args=(
                        func,
                        task_list[task_index],
                        task_index,
                        attempt_no,
                        fault_plan,
                        send_conn,
                    ),
                    daemon=True,
                )
                process.start()
                registry.append(process)
                # Close the parent's copy of the write end so a worker
                # death surfaces as EOF instead of a blocked read.
                send_conn.close()
                telemetry.inc("supervisor.dispatched")
                # Liveness deadline through the observability clock
                # seam; affects retry timing only, never computed
                # values.
                deadline = (
                    MONOTONIC.now() + policy.task_timeout
                    if policy.task_timeout is not None
                    else None
                )
                running[task_index] = _Attempt(
                    task_index=task_index,
                    attempt=attempt_no,
                    process=process,
                    conn=recv_conn,
                    deadline=deadline,
                )
            connection_wait(
                [attempt.conn for attempt in running.values()],
                timeout=policy.heartbeat_interval,
            )
            telemetry.inc("supervisor.heartbeats")
            now = MONOTONIC.now()
            for attempt in list(running.values()):
                if attempt.conn.poll():
                    kind: str
                    payload: Any
                    try:
                        frame = attempt.conn.recv_bytes()
                    except (EOFError, OSError):
                        kind, payload = "crash", None
                    else:
                        tag, body = frame[:1], frame[1:]
                        if tag == _TAG_OBJECT:
                            kind, payload = "ok", pickle.loads(body)
                        elif tag == _TAG_BYTES:
                            kind, payload = "ok", RawResult(body)
                        elif tag == _TAG_ERROR:
                            kind, payload = "error", body.decode("utf-8")
                        else:  # pragma: no cover - corrupt frame
                            kind, payload = "crash", None
                    attempt.conn.close()
                    attempt.process.join()
                    del running[attempt.task_index]
                    if kind == "ok":
                        results[attempt.task_index] = payload
                        health.completed += 1
                        telemetry.inc("supervisor.completed")
                    elif kind == "error":
                        health.task_errors += 1
                        telemetry.inc("supervisor.failed", kind="task_error")
                        fail_attempt(
                            attempt,
                            f"attempt {attempt.attempt + 1}: task raised:\n"
                            f"{payload}",
                        )
                    else:
                        health.worker_crashes += 1
                        telemetry.inc("supervisor.failed", kind="crash")
                        fail_attempt(
                            attempt,
                            f"attempt {attempt.attempt + 1}: worker died "
                            "without reporting (exit code "
                            f"{attempt.process.exitcode})",
                        )
                elif not attempt.process.is_alive():
                    attempt.process.join()
                    attempt.conn.close()
                    del running[attempt.task_index]
                    health.worker_crashes += 1
                    telemetry.inc("supervisor.failed", kind="crash")
                    fail_attempt(
                        attempt,
                        f"attempt {attempt.attempt + 1}: worker died with "
                        f"exit code {attempt.process.exitcode}",
                    )
                elif attempt.deadline is not None and now >= attempt.deadline:
                    attempt.process.terminate()
                    attempt.process.join(timeout=5.0)
                    if attempt.process.is_alive():  # pragma: no cover
                        attempt.process.kill()
                        attempt.process.join()
                    attempt.conn.close()
                    del running[attempt.task_index]
                    health.worker_timeouts += 1
                    telemetry.inc("supervisor.failed", kind="timeout")
                    fail_attempt(
                        attempt,
                        f"attempt {attempt.attempt + 1}: exceeded the "
                        f"{policy.task_timeout}s task deadline",
                    )
    return results, health
