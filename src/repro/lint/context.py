"""Per-file analysis context shared by every rule.

Two concerns live here:

* **Role classification** — rules exempt test code (RPL001/004/006) and
  benchmark/CLI code (RPL002) by construction, so the context decides once
  per file whether it is test, CLI, or benchmark code.
* **Import resolution** — rules match *fully qualified* call names
  (``numpy.random.default_rng``, ``datetime.datetime.now``) so aliases
  (``import numpy as np``, ``from datetime import datetime``) cannot hide a
  violation.  :meth:`FileContext.resolve` folds the file's import table
  into dotted attribute chains.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

#: Path components that mark a file as test code.
_TEST_PARTS = frozenset({"tests", "test"})
#: Path components that mark a file as benchmark code.
_BENCH_PARTS = frozenset({"benchmarks", "bench"})
#: Path components that mark a file as CLI code.
_CLI_PARTS = frozenset({"cli"})
#: A component that re-classifies a file as plain source even under tests/
#: (lint fixtures simulate production modules).
_FIXTURE_PART = "fixtures"


@dataclass(frozen=True, slots=True)
class FileRole:
    """Which exemption classes apply to a file."""

    is_test: bool
    is_cli: bool
    is_bench: bool


def classify(path: Path) -> FileRole:
    """Classify a path into its exemption role.

    A ``fixtures`` component wins over ``tests`` so that lint-rule fixture
    snippets (stored under ``tests/lint/fixtures/``) are analyzed as if
    they were production modules.
    """
    parts = set(path.parts)
    name = path.name
    if _FIXTURE_PART in parts:
        return FileRole(is_test=False, is_cli=False, is_bench=False)
    is_test = (
        bool(parts & _TEST_PARTS)
        or name.startswith("test_")
        or name == "conftest.py"
    )
    return FileRole(
        is_test=is_test,
        is_cli=bool(parts & _CLI_PARTS),
        is_bench=bool(parts & _BENCH_PARTS),
    )


def _collect_aliases(tree: ast.AST) -> dict[str, str]:
    """Map local names to the dotted module/object paths they import.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``.  Relative imports are
    skipped: project-internal names are never lint targets.
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level or node.module is None:
                continue
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = f"{node.module}.{alias.name}"
    return aliases


@dataclass(slots=True)
class FileContext:
    """Everything a rule needs to analyze one file."""

    path: Path
    source: str
    tree: ast.Module
    role: FileRole
    aliases: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, path: Path, source: str, tree: ast.Module) -> FileContext:
        return cls(
            path=path,
            source=source,
            tree=tree,
            role=classify(path),
            aliases=_collect_aliases(tree),
        )

    def resolve(self, node: ast.expr) -> str | None:
        """Fully qualified dotted name for a Name/Attribute chain.

        Returns ``None`` when the chain does not bottom out in an imported
        name — locals are never mistaken for stdlib modules.
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None
