"""Fixpoint propagation over function summaries.

Every analysis here is a monotone boolean (or small-lattice) property
propagated over the call graph with a worklist until nothing changes.
The graph is finite and properties only ever grow, so termination is
structural; the worklist is seeded and drained in sorted order so the
result — and therefore every finding — is deterministic.

Computed closures:

* ``can_crash`` — functions that can (transitively) raise a crash-class
  exception (``SimulatedCrash`` or any ``BaseException``-derived,
  non-``Exception`` program class).  Seeds RPL101.
* ``raw_write_taint`` — functions outside a ``storage`` package that can
  reach an unsanctioned raw-write sink without passing through the
  storage barrier.  Seeds RPL103; taint does not propagate out of
  storage-package functions (the audited TCB) nor out of sinks whose
  line carries an RPL008/RPL103 sanction.
* ``returns_telemetry`` — functions whose return value derives from a
  telemetry read, directly or through returned calls.  Seeds RPL104.
* ``returns_unpicklable`` — functions whose return value can never
  cross a pickle boundary (generators, lambdas, open handles, locks),
  directly or through returned calls.  Seeds RPL105.
* ``seed origins`` — resolution of ``param``-classified RNG seeds
  through all call sites to their worst origin.  Seeds RPL102.
"""

from __future__ import annotations

import ast
from collections.abc import Callable
from dataclasses import dataclass

from repro.lint.ipa.callgraph import CallGraph
from repro.lint.ipa.summaries import FunctionSummary, SeedOrigin

#: Bound on caller-chain depth when tracing seed provenance; deeper
#: chains resolve to "derived" (allowed) rather than risking blowup.
_MAX_SEED_DEPTH = 16


def module_has_segment(
    graph: CallGraph, qualname: str, segment: str
) -> bool:
    """True when a function's *module* dotted path contains ``segment``."""
    fn = graph.functions.get(qualname)
    module = fn.module if fn is not None else qualname
    return segment in module.split(".")


@dataclass(slots=True)
class ProgramFacts:
    """The fixpoint results rules evaluate against."""

    graph: CallGraph
    summaries: dict[str, FunctionSummary]
    crash_classes: frozenset[str]
    can_crash: frozenset[str]
    raw_write_taint: dict[str, tuple[str, ...]]
    returns_telemetry: frozenset[str]
    returns_unpicklable: dict[str, str]

    def crash_path(self, start: str, limit: int = 6) -> tuple[str, ...]:
        """A shortest call path from ``start`` to a direct crash raiser."""
        return _shortest_path(
            self.graph,
            self.summaries,
            start,
            lambda s: any(r in self.crash_classes for r in s.raises),
            limit,
        )


def _shortest_path(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    start: str,
    is_target: Callable[[FunctionSummary], bool],
    limit: int,
) -> tuple[str, ...]:
    """BFS call path from ``start`` to a summary satisfying ``is_target``."""
    queue: list[tuple[str, tuple[str, ...]]] = [(start, (start,))]
    seen = {start}
    while queue:
        current, path = queue.pop(0)
        summary = summaries.get(current)
        if summary is None:
            continue
        if is_target(summary):
            return path
        if len(path) >= limit:
            continue
        callees: list[str] = []
        for site in summary.calls:
            callees.extend(site.callees)
        for callee in sorted(set(callees)):
            if callee not in seen:
                seen.add(callee)
                queue.append((callee, path + (callee,)))
    return (start,)


def compute_crash_classes(graph: CallGraph) -> frozenset[str]:
    """Program classes deriving from BaseException but not Exception."""
    crashy: set[str] = set()
    for qualname in sorted(graph.classes):
        if graph.derives_from(
            qualname, "BaseException", stop_at="Exception"
        ) and not graph.derives_from(qualname, "Exception"):
            crashy.add(qualname)
    return frozenset(crashy)


def _closure_over_callers(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    seeds: set[str],
    barrier: frozenset[str],
) -> frozenset[str]:
    """Propagate a property from callees to callers to a fixpoint.

    ``barrier`` functions may *hold* the property but never pass it on.
    """
    reached = set(seeds)
    callers = graph.callers_of()
    worklist = sorted(seeds)
    while worklist:
        current = worklist.pop()
        if current in barrier:
            continue
        for caller in callers.get(current, ()):
            if caller not in reached:
                reached.add(caller)
                worklist.append(caller)
    return frozenset(reached)


def compute_can_crash(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    crash_classes: frozenset[str],
) -> frozenset[str]:
    seeds = {
        qualname
        for qualname in sorted(summaries)
        if any(r in crash_classes for r in summaries[qualname].raises)
    }
    return _closure_over_callers(graph, summaries, seeds, frozenset())


def compute_raw_write_taint(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
) -> dict[str, tuple[str, ...]]:
    """Function → sorted sink-owner qualnames it can transitively reach.

    Storage-package functions are the barrier: they may contain raw
    sinks (that is their job), but the taint stops there.  A sink whose
    line carries an RPL008/RPL103 sanction directive seeds nothing: its
    justification covers the callers too.
    """
    taint: dict[str, set[str]] = {}
    seeds: list[str] = []
    for qualname in sorted(summaries):
        if module_has_segment(graph, qualname, "storage"):
            continue
        if any(not sink.sanctioned for sink in summaries[qualname].sinks):
            taint[qualname] = {qualname}
            seeds.append(qualname)
    callers = graph.callers_of()
    worklist = list(seeds)
    while worklist:
        current = worklist.pop()
        if module_has_segment(graph, current, "storage"):
            continue
        for caller in callers.get(current, ()):
            existing = taint.setdefault(caller, set())
            added = taint[current] - existing
            if added:
                existing.update(added)
                worklist.append(caller)
    return {
        qualname: tuple(sorted(owners))
        for qualname, owners in sorted(taint.items())
    }


def compute_returns_telemetry(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
) -> frozenset[str]:
    tainted = {
        qualname
        for qualname in sorted(summaries)
        if summaries[qualname].returns_telemetry
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(summaries):
            if qualname in tainted:
                continue
            summary = summaries[qualname]
            if any(c in tainted for c in summary.returned_calls):
                tainted.add(qualname)
                changed = True
    return frozenset(tainted)


def compute_returns_unpicklable(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
) -> dict[str, str]:
    reasons: dict[str, str] = {}
    for qualname in sorted(summaries):
        reason = summaries[qualname].returns_unpicklable
        if reason is not None:
            reasons[qualname] = reason
    changed = True
    while changed:
        changed = False
        for qualname in sorted(summaries):
            if qualname in reasons:
                continue
            summary = summaries[qualname]
            for callee in summary.returned_calls:
                if callee in reasons:
                    reasons[qualname] = reasons[callee]
                    changed = True
                    break
    return reasons


def resolve_seed_origin(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    owner: str,
    origin: SeedOrigin,
    _chain: tuple[str, ...] = (),
) -> tuple[SeedOrigin, tuple[str, ...]]:
    """Resolve a seed origin through callers/callees to its worst source.

    For a ``param`` origin, every program call site of the owning
    function is examined and the *worst* (first bad, in sorted caller
    order) origin wins; omitted arguments mean the caller accepted the
    function's explicit seed-parameter default, which is sanctioned.
    For a ``call`` origin, the callee's constant return (if provable)
    makes it a literal.  Everything unresolved is ``derived`` (allowed).
    """
    if len(_chain) >= _MAX_SEED_DEPTH:
        return SeedOrigin("derived", "depth limit", origin.line,
                          origin.col), _chain
    if origin.kind in ("literal", "none", "wallclock", "seedseq", "derived"):
        return origin, _chain
    if origin.kind == "call":
        callee = origin.detail
        summary = summaries.get(callee)
        if summary is not None and summary.returns_constant:
            return (
                SeedOrigin("literal", f"constant return of {callee}",
                           origin.line, origin.col),
                _chain + (callee,),
            )
        return SeedOrigin("derived", callee, origin.line, origin.col), _chain
    if origin.kind != "param":
        return origin, _chain
    param = origin.detail
    fn = graph.functions.get(owner)
    if fn is None or param not in fn.params:
        return SeedOrigin("derived", param, origin.line, origin.col), _chain
    position = fn.params.index(param)
    if fn.is_method and fn.params and fn.params[0] in ("self", "cls"):
        position -= 1
    for caller in graph.callers_of().get(owner, ()):
        if caller in _chain or caller == owner:
            continue
        for arg_origin in _seed_args_at_sites(
            graph, summaries, caller, owner, param, position
        ):
            resolved, chain = resolve_seed_origin(
                graph,
                summaries,
                caller,
                arg_origin,
                _chain + (owner,),
            )
            if resolved.kind in ("literal", "none", "wallclock"):
                return resolved, (caller,) + chain
    return SeedOrigin("derived", param, origin.line, origin.col), _chain


def _seed_args_at_sites(
    graph: CallGraph,
    summaries: dict[str, FunctionSummary],
    caller: str,
    owner: str,
    param: str,
    position: int,
) -> list[SeedOrigin]:
    """Classified argument origins ``caller`` passes into ``owner``."""
    from repro.lint.ipa.summaries import _FunctionSummarizer

    module = graph.fn_modules.get(caller)
    fn = graph.functions.get(caller)
    node = graph.fn_nodes.get(caller)
    if module is None or fn is None or node is None:
        return []
    summarizer = _FunctionSummarizer(
        graph, module, fn, node, frozenset(), frozenset()
    )
    summarizer._collect_env()
    origins: list[SeedOrigin] = []
    for sub in ast.walk(node):
        if not isinstance(sub, ast.Call):
            continue
        site = graph.resolve_call(module, fn, sub, frozenset())
        if owner not in site.callees:
            continue
        arg: ast.expr | None = None
        for keyword in sub.keywords:
            if keyword.arg == param:
                arg = keyword.value
        if arg is None and 0 <= position < len(sub.args):
            candidate = sub.args[position]
            if not isinstance(candidate, ast.Starred):
                arg = candidate
        if arg is not None:
            origins.append(summarizer.classify_seed(arg))
    return origins


def compute_facts(
    graph: CallGraph, summaries: dict[str, FunctionSummary]
) -> ProgramFacts:
    """Run every fixpoint and bundle the results."""
    crash_classes = compute_crash_classes(graph)
    return ProgramFacts(
        graph=graph,
        summaries=summaries,
        crash_classes=crash_classes,
        can_crash=compute_can_crash(graph, summaries, crash_classes),
        raw_write_taint=compute_raw_write_taint(graph, summaries),
        returns_telemetry=compute_returns_telemetry(graph, summaries),
        returns_unpicklable=compute_returns_unpicklable(graph, summaries),
    )
