"""Interprocedural rules RPL101–RPL105.

Each rule evaluates the :class:`~repro.lint.ipa.dataflow.ProgramFacts`
fixpoint and yields :class:`~repro.lint.findings.Finding` records.  Every
finding carries the owning function in ``symbol`` — that, not the line
number, is the baseline-ratchet identity, so findings survive unrelated
edits to the file above them.

Rule ↔ guarantee map (details in DESIGN Section 15):

=======  ==============================================================
RPL101   crash-exception safety: no handler reachable from a
         ``FaultyFS``/supervised path may swallow ``SimulatedCrash``
         (protects kill-and-resume byte-identity).
RPL102   seed provenance: every RNG must trace to a ``SeedSequence`` or
         an explicit seed parameter — never a literal or the wall clock
         (protects parallel/serial equivalence).
RPL103   raw-write reachability: no call chain outside ``storage`` may
         reach a raw write without passing the atomic-durable barrier
         (protects crash-atomicity; closes RPL008's one-hop blind spot).
RPL104   telemetry purity: no control-flow decision may read counters,
         gauges, or spans (protects traced↔untraced byte-identity).
RPL105   pool-payload pickle safety: values crossing ``run_supervised``
         boundaries must be transitively picklable (protects the
         supervised pool's crash/retry model).
=======  ==============================================================
"""

from __future__ import annotations

from collections.abc import Iterator

from repro.lint.findings import Finding
from repro.lint.ipa.dataflow import (
    ProgramFacts,
    module_has_segment,
    resolve_seed_origin,
)
from repro.lint.ipa.summaries import FunctionSummary

#: Rule ids implemented by the interprocedural engine, in order.
IPA_RULE_IDS: tuple[str, ...] = (
    "RPL101",
    "RPL102",
    "RPL103",
    "RPL104",
    "RPL105",
)

#: ``--list-rules`` catalog entries for the interprocedural rules.
IPA_RULE_CATALOG: tuple[tuple[str, str], ...] = (
    ("RPL101", "handler on a crash-injected call path can swallow "
               "SimulatedCrash/BaseException"),
    ("RPL102", "RNG seed does not trace to a SeedSequence or explicit "
               "seed parameter (literal/wall-clock origin)"),
    ("RPL103", "call chain outside repro/storage reaches a raw write "
               "without the atomic-durable barrier"),
    ("RPL104", "control-flow decision reads telemetry "
               "(counters/gauges/spans must stay write-only)"),
    ("RPL105", "unpicklable value crosses a supervised-pool boundary"),
)

#: Module path segments exempt from RPL104 (they legitimately read
#: telemetry: the obs layer exports it, the CLI renders it).
_TELEMETRY_READER_SEGMENTS = ("obs", "cli")


def _finding(
    facts: ProgramFacts,
    qualname: str,
    line: int,
    col: int,
    rule: str,
    message: str,
) -> Finding:
    module = facts.graph.fn_modules[qualname]
    return Finding(
        path=str(module.path),
        line=line,
        col=col,
        rule=rule,
        message=message,
        symbol=qualname,
    )


def _arrow(path: tuple[str, ...]) -> str:
    return " -> ".join(path)


def _catches_crash(
    facts: ProgramFacts, caught: tuple[str, ...], bare: bool
) -> str | None:
    """The crash-capable type a handler catches, if any."""
    if bare:
        return "bare except"
    for name in caught:
        if name == "BaseException" or name.endswith(".BaseException"):
            return "BaseException"
        if name in facts.crash_classes:
            return name
    return None


def check_rpl101(facts: ProgramFacts) -> Iterator[Finding]:
    """Crash-swallowing handlers on crash-reachable call paths."""
    for qualname in sorted(facts.summaries):
        summary = facts.summaries[qualname]
        for handler in summary.handlers:
            caught = _catches_crash(facts, handler.caught, handler.bare)
            if caught is None or handler.reraises:
                continue
            reachable = sorted(
                {
                    callee
                    for site in handler.guarded_calls
                    for callee in site.callees
                    if callee in facts.can_crash
                }
            )
            if not reachable:
                continue
            path = facts.crash_path(reachable[0])
            verb = (
                "contextlib.suppress" if handler.via_suppress else "handler"
            )
            yield _finding(
                facts,
                qualname,
                handler.line,
                handler.col,
                "RPL101",
                f"{verb} catching {caught} can swallow a simulated "
                f"crash injected {len(path) - 1} call(s) away "
                f"({_arrow(path)}); recovery must see SimulatedCrash "
                "propagate — narrow the except or re-raise",
            )


def check_rpl102(facts: ProgramFacts) -> Iterator[Finding]:
    """RNG creations whose seed bottoms out in a literal or the clock."""
    for qualname in sorted(facts.summaries):
        summary = facts.summaries[qualname]
        for creation in summary.rng_creations:
            origin, chain = resolve_seed_origin(
                facts.graph, facts.summaries, qualname, creation.origin
            )
            if origin.kind not in ("literal", "none", "wallclock"):
                continue
            via = (
                f" via {_arrow(chain + (qualname,))}" if chain else ""
            )
            if origin.kind == "wallclock":
                detail = f"the wall clock ({origin.detail})"
            elif origin.kind == "none":
                detail = "None (OS entropy)"
            else:
                detail = f"literal {origin.detail}"
            yield _finding(
                facts,
                qualname,
                creation.line,
                creation.col,
                "RPL102",
                f"seed for {creation.api} traces to {detail}{via}; "
                "derive every seed from a SeedSequence or an explicit "
                "seed parameter so runs stay reproducible and streams "
                "stay independent",
            )


def check_rpl103(facts: ProgramFacts) -> Iterator[Finding]:
    """Transitive reach of raw writes from outside the storage barrier.

    A function's *own* sinks are the file-local RPL008's findings; this
    rule reports the callers that reach someone else's sink — plus the
    one shape RPL008 cannot see at all, a write-mode ``open`` on the
    filesystem seam.
    """
    for qualname in sorted(facts.summaries):
        if module_has_segment(facts.graph, qualname, "storage"):
            continue
        summary = facts.summaries[qualname]
        for sink in summary.sinks:
            if sink.kind == "fs-open-write" and not sink.sanctioned:
                yield _finding(
                    facts,
                    qualname,
                    sink.line,
                    sink.col,
                    "RPL103",
                    f"{sink.description} bypasses the atomic-durable "
                    "barrier; persisted bytes must go through "
                    "repro.storage.AtomicWriter so a crash can never "
                    "tear them",
                )
        own_sinks = bool(summary.sinks)
        reached = _reached_sink_owners(facts, summary)
        for line, col, owners in reached:
            if own_sinks and all(owner == qualname for owner in owners):
                continue
            others = tuple(o for o in owners if o != qualname)
            if not others:
                continue
            yield _finding(
                facts,
                qualname,
                line,
                col,
                "RPL103",
                "call reaches a raw filesystem write in "
                f"{_arrow(others[:3])} without passing through the "
                "atomic-durable barrier (repro.storage); route the "
                "write through AtomicWriter or sanction the sink with "
                "a justified suppression",
            )


def _reached_sink_owners(
    facts: ProgramFacts, summary: FunctionSummary
) -> list[tuple[int, int, tuple[str, ...]]]:
    """(line, col, tainted sink owners) per call site, de-duplicated."""
    seen: set[tuple[int, int]] = set()
    results: list[tuple[int, int, tuple[str, ...]]] = []
    for site in summary.calls:
        owners: list[str] = []
        for callee in site.callees:
            owners.extend(facts.raw_write_taint.get(callee, ()))
        if owners and (site.line, site.col) not in seen:
            seen.add((site.line, site.col))
            results.append((site.line, site.col, tuple(sorted(set(owners)))))
    return results


def check_rpl104(facts: ProgramFacts) -> Iterator[Finding]:
    """Control-flow decisions fed by telemetry reads."""
    for qualname in sorted(facts.summaries):
        if any(
            module_has_segment(facts.graph, qualname, segment)
            for segment in _TELEMETRY_READER_SEGMENTS
        ):
            continue
        summary = facts.summaries[qualname]
        for branch in summary.branch_sites:
            tainted_feeders = sorted(
                c
                for c in branch.feeder_calls
                if c in facts.returns_telemetry
            )
            if branch.reads_telemetry:
                yield _finding(
                    facts,
                    qualname,
                    branch.line,
                    branch.col,
                    "RPL104",
                    "control-flow condition reads telemetry; metrics "
                    "and spans are write-only so traced and untraced "
                    "runs stay byte-identical — decide from pipeline "
                    "state, not observability state",
                )
            elif tainted_feeders:
                yield _finding(
                    facts,
                    qualname,
                    branch.line,
                    branch.col,
                    "RPL104",
                    "control-flow condition depends on "
                    f"{tainted_feeders[0]}, whose return value derives "
                    "from telemetry; metrics and spans are write-only "
                    "so traced and untraced runs stay byte-identical",
                )
        for arg_pass in summary.arg_passes:
            for callee in arg_pass.callees:
                callee_summary = facts.summaries.get(callee)
                if callee_summary is None:
                    continue
                param = _param_for_slot(facts, callee, arg_pass.slot)
                if param is None:
                    continue
                if any(
                    param in b.params for b in callee_summary.branch_sites
                ):
                    yield _finding(
                        facts,
                        qualname,
                        arg_pass.line,
                        arg_pass.col,
                        "RPL104",
                        f"telemetry-derived value is passed into "
                        f"{callee} parameter {param!r}, which feeds a "
                        "control-flow condition there; telemetry must "
                        "stay write-only end to end",
                    )


def _param_for_slot(
    facts: ProgramFacts, callee: str, slot: int | str
) -> str | None:
    fn = facts.graph.functions.get(callee)
    if fn is None:
        return None
    if isinstance(slot, str):
        return slot if slot in fn.params else None
    params = fn.params
    if fn.is_method and params and params[0] in ("self", "cls"):
        params = params[1:]
    if 0 <= slot < len(params):
        return params[slot]
    return None


def check_rpl105(facts: ProgramFacts) -> Iterator[Finding]:
    """Unpicklable values crossing supervised-pool boundaries."""
    for qualname in sorted(facts.summaries):
        summary = facts.summaries[qualname]
        for pool_call in summary.pool_calls:
            for issue in pool_call.issues:
                if issue.deferred_callee is not None:
                    reason = facts.returns_unpicklable.get(
                        issue.deferred_callee
                    )
                    if reason is None:
                        continue
                    message = (
                        f"pool payload comes from "
                        f"{issue.deferred_callee}, which returns "
                        f"{reason}; arguments and returns crossing the "
                        "supervised-pool boundary must be transitively "
                        "picklable"
                    )
                else:
                    message = (
                        f"pool payload is {issue.reason}; arguments "
                        "and returns crossing the supervised-pool "
                        "boundary must be transitively picklable "
                        "(no open handles, locks, lambdas, or "
                        "generators)"
                    )
                yield _finding(
                    facts,
                    qualname,
                    issue.line,
                    issue.col,
                    "RPL105",
                    message,
                )


#: All rule entry points, in rule-id order.
ALL_IPA_CHECKS = (
    check_rpl101,
    check_rpl102,
    check_rpl103,
    check_rpl104,
    check_rpl105,
)
