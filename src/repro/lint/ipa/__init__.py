"""Interprocedural whole-program analysis (IPA) for reprolint.

The file-local rules (RPL001–RPL008) inspect one AST at a time, so a
helper that swallows :class:`SimulatedCrash` three calls away from
``FaultyFS``, or an ``np.random.default_rng`` seeded from a literal in
another module, passes clean.  This package closes that gap:

* :mod:`repro.lint.ipa.program` parses every module under the analyzed
  roots once and resolves imports (including relative imports and
  package re-exports) to canonical dotted names;
* :mod:`repro.lint.ipa.callgraph` indexes functions/classes and builds
  a context-insensitive call graph (with a narrow, documented set of
  duck-typed edges for the filesystem seam and telemetry read API);
* :mod:`repro.lint.ipa.summaries` extracts one summary per function —
  raw-write sinks, crash raises/handlers, RNG seed provenance,
  telemetry reads feeding branch conditions, pool-boundary payloads;
* :mod:`repro.lint.ipa.dataflow` propagates the summaries to a
  fixpoint over the call graph;
* :mod:`repro.lint.ipa.rules` evaluates RPL101–RPL105 on the result;
* :mod:`repro.lint.ipa.baseline` implements the committed
  ``lint-baseline.json`` ratchet: grandfathered findings are tracked,
  new ones fail.

``run_ipa(paths)`` is the library entry point shared by the CLI
(``repro lint --ipa``), the self-clean pytest gate, and the benchmark
harness.
"""

from __future__ import annotations

from repro.lint.ipa.analyzer import (
    IpaResult,
    IpaStats,
    UnknownIpaRuleError,
    run_ipa,
)
from repro.lint.ipa.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    split_baselined,
    write_baseline,
)
from repro.lint.ipa.callgraph import CallGraph
from repro.lint.ipa.graphio import graph_to_dot, graph_to_json
from repro.lint.ipa.program import Program
from repro.lint.ipa.rules import IPA_RULE_CATALOG, IPA_RULE_IDS

__all__ = [
    "Baseline",
    "BaselineError",
    "CallGraph",
    "IPA_RULE_CATALOG",
    "IPA_RULE_IDS",
    "IpaResult",
    "IpaStats",
    "Program",
    "UnknownIpaRuleError",
    "graph_to_dot",
    "graph_to_json",
    "load_baseline",
    "run_ipa",
    "split_baselined",
    "write_baseline",
]
