"""Per-function summaries: the facts the fixpoint engine propagates.

One :class:`FunctionSummary` is extracted per indexed function in a
single AST pass.  Summaries are purely syntactic — no imports are
executed — and record, per function:

* resolved call sites (the graph edges);
* raw-write sinks (the RPL103 seeds, including the filesystem-seam
  ``fs.open(path, "w")`` shape the file-local RPL008 cannot see);
* exception handlers with the canonical types they catch, whether they
  re-raise, and the calls their ``try`` body makes (RPL101);
* raised exception types (crash-source seeds for RPL101);
* RNG creations with a classification of their seed expression
  (RPL102);
* telemetry reads, branch conditions they feed, parameters that feed
  branch conditions, and telemetry-derived returns (RPL104);
* supervised-pool boundary calls with payload descriptors (RPL105).

Intra-function name flow uses a last-write-wins assignment environment:
``h = fetch(); run(h)`` is analyzed as if ``run(fetch())``.  That is
deliberately simple — reassignment in branches is not modeled — and
errs toward reporting (taint sticks) for safety properties and toward
silence (unknown is allowed) for provenance ones.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.ipa.callgraph import CallGraph, CallSite, FunctionInfo
from repro.lint.ipa.program import ModuleInfo
from repro.lint.rules.wallclock import _WALL_CLOCK_CALLS

#: Mode characters that make an ``open`` call a write (or writable) open.
_WRITE_MODE_CHARS = frozenset("wax+")
#: Telemetry read methods distinctive enough to duck-match anywhere.
_TELEMETRY_READ_ATTRS = frozenset(
    {"counter_value", "gauge_value", "histogram_data"}
)
#: Receiver-name hints that make a generic ``.snapshot()`` a telemetry read.
_TELEMETRY_RECEIVER_HINTS = ("telemetry", "metrics")
#: Canonical constructors whose results never cross a pickle boundary.
_UNPICKLABLE_CTORS = {
    "threading.Lock": "a thread lock",
    "threading.RLock": "a thread lock",
    "threading.Condition": "a thread condition",
    "threading.Event": "a thread event",
    "threading.Semaphore": "a thread semaphore",
    "threading.BoundedSemaphore": "a thread semaphore",
    "_thread.allocate_lock": "a thread lock",
}
#: RNG-creating calls whose first argument is the seed.
_RNG_CREATORS = frozenset(
    {"numpy.random.default_rng", "random.Random"}
)
#: Rule ids whose suppression at a sink line sanctions the whole subtree
#: of callers (the justification lives at the source, the taint stops).
_SINK_SANCTIONS = frozenset({"RPL008", "RPL103"})


@dataclass(slots=True, frozen=True)
class Sink:
    """One raw filesystem write operation."""

    line: int
    col: int
    kind: str
    description: str
    sanctioned: bool


@dataclass(slots=True, frozen=True)
class HandlerInfo:
    """One ``except`` clause (or ``contextlib.suppress`` item)."""

    line: int
    col: int
    #: Canonical caught type names; empty tuple means a bare ``except``.
    caught: tuple[str, ...]
    bare: bool
    reraises: bool
    #: Calls made inside the guarded ``try`` (or ``with``) body.
    guarded_calls: tuple[CallSite, ...]
    via_suppress: bool


@dataclass(slots=True, frozen=True)
class SeedOrigin:
    """Where one RNG seed expression bottoms out, after intra-fn flow."""

    kind: str  # literal | none | wallclock | seedseq | param | call | derived
    detail: str  # literal repr, param name, or callee qualname
    line: int
    col: int


@dataclass(slots=True, frozen=True)
class RngCreation:
    """One RNG construction and its seed classification."""

    line: int
    col: int
    api: str
    origin: SeedOrigin


@dataclass(slots=True, frozen=True)
class BranchSite:
    """A control-flow condition and what flows into it."""

    line: int
    col: int
    #: True when a telemetry read feeds the condition intra-procedurally.
    reads_telemetry: bool
    #: Program functions whose return value feeds the condition.
    feeder_calls: tuple[str, ...]
    #: Own parameters that feed the condition.
    params: tuple[str, ...]


@dataclass(slots=True, frozen=True)
class ArgPass:
    """One argument at one call site, mapped to the callee parameter."""

    line: int
    col: int
    callees: tuple[str, ...]
    #: Position (int) or keyword name (str) of the argument.
    slot: int | str
    #: True when the argument is telemetry-derived intra-procedurally.
    telemetry: bool


@dataclass(slots=True, frozen=True)
class PoolPayloadIssue:
    """One unpicklable value crossing a pool boundary, or a deferral."""

    line: int
    col: int
    reason: str
    #: Program function whose return type decides (interprocedural).
    deferred_callee: str | None


@dataclass(slots=True, frozen=True)
class PoolCall:
    """One call into a supervised-pool boundary."""

    line: int
    col: int
    issues: tuple[PoolPayloadIssue, ...]


@dataclass(slots=True)
class FunctionSummary:
    """Everything the fixpoint engine knows about one function."""

    qualname: str
    calls: tuple[CallSite, ...]
    sinks: tuple[Sink, ...]
    handlers: tuple[HandlerInfo, ...]
    raises: tuple[str, ...]
    rng_creations: tuple[RngCreation, ...]
    branch_sites: tuple[BranchSite, ...]
    arg_passes: tuple[ArgPass, ...]
    returns_telemetry: bool
    returned_calls: tuple[str, ...]
    returns_constant: bool
    returns_unpicklable: str | None
    pool_calls: tuple[PoolCall, ...]


def _is_seedseq_expr(name: str | None, call: ast.Call) -> bool:
    if name is not None and name.rsplit(".", 1)[-1] == "SeedSequence":
        return True
    func = call.func
    return isinstance(func, ast.Attribute) and func.attr in (
        "spawn",
        "generate_state",
    )


def _receiver_hint(expr: ast.expr) -> bool:
    """Heuristic: does this receiver look like a telemetry object?"""
    if isinstance(expr, ast.Name):
        text = expr.id
    elif isinstance(expr, ast.Attribute):
        text = expr.attr
    elif isinstance(expr, ast.Call):
        return _receiver_hint(expr.func)
    else:
        return False
    lowered = text.lower()
    return any(hint in lowered for hint in _TELEMETRY_RECEIVER_HINTS)


def _constant_mode(node: ast.Call) -> str | None:
    """The call's mode argument when it is a string constant."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            value = keyword.value
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
            return None
    if len(node.args) >= 2:
        value = node.args[1]
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
    return None


class _FunctionSummarizer:
    """Single-pass fact extractor for one function body."""

    def __init__(
        self,
        graph: CallGraph,
        module: ModuleInfo,
        fn: FunctionInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        duck_names: frozenset[str],
        sanctioned_lines: frozenset[int],
    ):
        self.graph = graph
        self.program = graph.program
        self.module = module
        self.fn = fn
        self.node = node
        self.duck_names = duck_names
        self.sanctioned_lines = sanctioned_lines
        self.env: dict[str, ast.expr] = {}
        self.local_defs: set[str] = set()

    # -- entry -----------------------------------------------------------

    def run(self) -> FunctionSummary:
        self._collect_env()
        calls: list[CallSite] = []
        sinks: list[Sink] = []
        raises: list[str] = []
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Call):
                calls.append(self._resolve(sub))
                sink = self._classify_sink(sub)
                if sink is not None:
                    sinks.append(sink)
            elif isinstance(sub, ast.Raise):
                raised = self._raised_name(sub)
                if raised is not None:
                    raises.append(raised)
        return FunctionSummary(
            qualname=self.fn.qualname,
            calls=tuple(calls),
            sinks=tuple(sinks),
            handlers=tuple(self._handlers()),
            raises=tuple(sorted(set(raises))),
            rng_creations=tuple(self._rng_creations()),
            branch_sites=tuple(self._branch_sites()),
            arg_passes=tuple(self._arg_passes()),
            returns_telemetry=self._returns_telemetry(),
            returned_calls=tuple(self._returned_calls()),
            returns_constant=self._returns_constant(),
            returns_unpicklable=self._returns_unpicklable(),
            pool_calls=tuple(self._pool_calls()),
        )

    # -- shared plumbing -------------------------------------------------

    def _resolve(self, call: ast.Call) -> CallSite:
        return self.graph.resolve_call(
            self.module, self.fn, call, self.duck_names
        )

    def _collect_env(self) -> None:
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target = sub.targets[0]
                if isinstance(target, ast.Name):
                    self.env[target.id] = sub.value
            elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
                if isinstance(sub.target, ast.Name):
                    self.env[sub.target.id] = sub.value
            elif isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if sub is not self.node:
                    self.local_defs.add(sub.name)

    def _deref(self, expr: ast.expr, depth: int = 0) -> ast.expr:
        """Follow simple name assignments to the defining expression."""
        while (
            depth < 8
            and isinstance(expr, ast.Name)
            and expr.id in self.env
        ):
            expr = self.env[expr.id]
            depth += 1
        return expr

    # -- sinks (RPL103 seeds) --------------------------------------------

    def _classify_sink(self, call: ast.Call) -> Sink | None:
        func = call.func
        name = self.program.resolve_expr(self.module, func)
        kind: str | None = None
        description = ""
        if name in ("os.replace", "os.rename"):
            kind, description = "rename", f"{name}() without directory fsync"
        elif name == "os.write":
            kind, description = "os-write", "os.write() raw byte write"
        elif isinstance(func, ast.Attribute) and func.attr in (
            "write_text",
            "write_bytes",
        ):
            kind = "pathlib-write"
            description = f".{func.attr}() in-place write"
        elif (
            isinstance(func, ast.Name) and func.id == "open"
        ) or name == "io.open":
            mode = _constant_mode(call)
            if mode is not None and set(mode) & _WRITE_MODE_CHARS:
                kind = "open-write"
                description = f"open(..., {mode!r})"
        elif (
            isinstance(func, ast.Attribute)
            and func.attr == "open"
            and name is None
        ):
            mode = _constant_mode(call)
            if mode is not None and set(mode) & _WRITE_MODE_CHARS:
                kind = "fs-open-write"
                description = f".open(..., {mode!r}) on a filesystem seam"
        if kind is None:
            return None
        sanctioned = call.lineno in self.sanctioned_lines
        if sanctioned:
            # A sanctioning directive never sees a finding to silence
            # (that is the point), so credit its use here or the unused-
            # suppression check would demand its removal.
            for suppression in self.module.suppressions:
                if suppression.target_line != call.lineno:
                    continue
                for rule in suppression.rules:
                    if rule in _SINK_SANCTIONS:
                        suppression.used.add(rule)
        return Sink(
            line=call.lineno,
            col=call.col_offset,
            kind=kind,
            description=description,
            sanctioned=sanctioned,
        )

    # -- raises / handlers (RPL101) --------------------------------------

    def _raised_name(self, node: ast.Raise) -> str | None:
        exc = node.exc
        if exc is None:
            return None
        if isinstance(exc, ast.Call):
            exc = exc.func
        return self.program.resolve_expr(self.module, exc)

    def _handler_types(
        self, type_node: ast.expr | None
    ) -> tuple[tuple[str, ...], bool]:
        """(canonical caught names, is_bare) for an except clause."""
        if type_node is None:
            return (), True
        elements = (
            list(type_node.elts)
            if isinstance(type_node, ast.Tuple)
            else [type_node]
        )
        names: list[str] = []
        for element in elements:
            resolved = self.program.resolve_expr(self.module, element)
            if resolved is None and isinstance(element, ast.Name):
                resolved = element.id  # builtin (BaseException, ...)
            if resolved is not None:
                names.append(resolved)
        return tuple(names), False

    def _calls_in(self, body: list[ast.stmt]) -> tuple[CallSite, ...]:
        found: list[CallSite] = []
        for stmt in body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    found.append(self._resolve(sub))
        return tuple(found)

    def _handlers(self) -> list[HandlerInfo]:
        handlers: list[HandlerInfo] = []
        for sub in ast.walk(self.node):
            if isinstance(sub, ast.Try):
                guarded = self._calls_in(sub.body)
                for handler in sub.handlers:
                    caught, bare = self._handler_types(handler.type)
                    reraises = any(
                        isinstance(inner, ast.Raise)
                        for inner in ast.walk(handler)
                    )
                    handlers.append(
                        HandlerInfo(
                            line=handler.lineno,
                            col=handler.col_offset,
                            caught=caught,
                            bare=bare,
                            reraises=reraises,
                            guarded_calls=guarded,
                            via_suppress=False,
                        )
                    )
            elif isinstance(sub, ast.With):
                handlers.extend(self._suppress_handlers(sub))
        return handlers

    def _suppress_handlers(self, node: ast.With) -> list[HandlerInfo]:
        """``with contextlib.suppress(T):`` modeled as a no-reraise handler."""
        handlers: list[HandlerInfo] = []
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            name = self.program.resolve_expr(self.module, expr.func)
            if name != "contextlib.suppress":
                continue
            names: list[str] = []
            for arg in expr.args:
                resolved = self.program.resolve_expr(self.module, arg)
                if resolved is None and isinstance(arg, ast.Name):
                    resolved = arg.id
                if resolved is not None:
                    names.append(resolved)
            handlers.append(
                HandlerInfo(
                    line=expr.lineno,
                    col=expr.col_offset,
                    caught=tuple(names),
                    bare=False,
                    reraises=False,
                    guarded_calls=self._calls_in(node.body),
                    via_suppress=True,
                )
            )
        return handlers

    # -- RNG seed provenance (RPL102) ------------------------------------

    def _rng_creations(self) -> list[RngCreation]:
        creations: list[RngCreation] = []
        for sub in ast.walk(self.node):
            if not isinstance(sub, ast.Call):
                continue
            name = self.program.resolve_expr(self.module, sub.func)
            if name not in _RNG_CREATORS:
                continue
            seed = self._seed_argument(sub)
            if seed is None:
                continue  # unseeded creation is RPL001's file-local domain
            creations.append(
                RngCreation(
                    line=sub.lineno,
                    col=sub.col_offset,
                    api=name or "",
                    origin=self.classify_seed(seed),
                )
            )
        return creations

    @staticmethod
    def _seed_argument(call: ast.Call) -> ast.expr | None:
        if call.args:
            return call.args[0]
        for keyword in call.keywords:
            if keyword.arg == "seed":
                return keyword.value
        return None

    def classify_seed(self, expr: ast.expr) -> SeedOrigin:
        """Where a seed expression bottoms out, following local names."""
        expr = self._deref(expr)
        line, col = expr.lineno, expr.col_offset
        if isinstance(expr, ast.Constant):
            if expr.value is None:
                return SeedOrigin("none", "None", line, col)
            return SeedOrigin("literal", repr(expr.value), line, col)
        if isinstance(expr, ast.Name):
            if expr.id in self.fn.params:
                return SeedOrigin("param", expr.id, line, col)
            return SeedOrigin("derived", expr.id, line, col)
        if isinstance(expr, ast.Call):
            name = self.program.resolve_expr(self.module, expr.func)
            if name in _WALL_CLOCK_CALLS:
                return SeedOrigin("wallclock", name or "", line, col)
            if _is_seedseq_expr(name, expr):
                return SeedOrigin("seedseq", name or "spawn", line, col)
            site = self._resolve(expr)
            if len(site.callees) == 1:
                return SeedOrigin("call", site.callees[0], line, col)
            return SeedOrigin("derived", name or "<call>", line, col)
        return SeedOrigin("derived", type(expr).__name__, line, col)

    # -- telemetry purity (RPL104) ---------------------------------------

    def _is_telemetry_read(self, call: ast.Call) -> bool:
        func = call.func
        if not isinstance(func, ast.Attribute):
            return False
        if func.attr in _TELEMETRY_READ_ATTRS:
            return True
        if func.attr == "snapshot" and _receiver_hint(func.value):
            return True
        return False

    def _expr_reads_telemetry(self, expr: ast.expr, depth: int = 0) -> bool:
        if depth > 8:
            return False
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call) and self._is_telemetry_read(sub):
                return True
            if (
                isinstance(sub, ast.Name)
                and sub.id in self.env
                and sub is not expr
            ):
                if self._expr_reads_telemetry(
                    self.env[sub.id], depth + 1
                ):
                    return True
        if isinstance(expr, ast.Name) and expr.id in self.env:
            return self._expr_reads_telemetry(self.env[expr.id], depth + 1)
        return False

    def _feeder_calls(self, expr: ast.expr, depth: int = 0) -> list[str]:
        """Program functions whose return value feeds this expression."""
        feeders: list[str] = []
        if depth > 8:
            return feeders
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                site = self._resolve(sub)
                feeders.extend(site.callees)
            elif isinstance(sub, ast.Name) and sub.id in self.env:
                inner = self.env[sub.id]
                if inner is not expr:
                    feeders.extend(self._feeder_calls(inner, depth + 1))
        return sorted(set(feeders))

    def _condition_nodes(self) -> list[ast.expr]:
        conditions: list[ast.expr] = []
        for sub in ast.walk(self.node):
            if isinstance(sub, (ast.If, ast.While, ast.IfExp)):
                conditions.append(sub.test)
            elif isinstance(sub, ast.Assert):
                conditions.append(sub.test)
        return conditions

    def _branch_sites(self) -> list[BranchSite]:
        sites: list[BranchSite] = []
        for test in self._condition_nodes():
            params = sorted(
                {
                    sub.id
                    for sub in ast.walk(test)
                    if isinstance(sub, ast.Name) and sub.id in self.fn.params
                }
            )
            sites.append(
                BranchSite(
                    line=test.lineno,
                    col=test.col_offset,
                    reads_telemetry=self._expr_reads_telemetry(test),
                    feeder_calls=tuple(self._feeder_calls(test)),
                    params=tuple(params),
                )
            )
        return sites

    def _arg_passes(self) -> list[ArgPass]:
        passes: list[ArgPass] = []
        for sub in ast.walk(self.node):
            if not isinstance(sub, ast.Call):
                continue
            site = self._resolve(sub)
            if not site.callees:
                continue
            for position, arg in enumerate(sub.args):
                if isinstance(arg, ast.Starred):
                    continue
                if self._expr_reads_telemetry(arg):
                    passes.append(
                        ArgPass(
                            line=sub.lineno,
                            col=sub.col_offset,
                            callees=site.callees,
                            slot=position,
                            telemetry=True,
                        )
                    )
            for keyword in sub.keywords:
                if keyword.arg is None:
                    continue
                if self._expr_reads_telemetry(keyword.value):
                    passes.append(
                        ArgPass(
                            line=sub.lineno,
                            col=sub.col_offset,
                            callees=site.callees,
                            slot=keyword.arg,
                            telemetry=True,
                        )
                    )
        return passes

    def _return_exprs(self) -> list[ast.expr]:
        """Return expressions of this function only (not nested defs)."""
        returns: list[ast.expr] = []
        stack: list[ast.AST] = [self.node]
        first = True
        while stack:
            current = stack.pop()
            if (
                isinstance(
                    current,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                )
                and not first
            ):
                continue
            first = False
            if isinstance(current, ast.Return) and current.value is not None:
                returns.append(current.value)
            stack.extend(ast.iter_child_nodes(current))
        return returns

    def _returns_telemetry(self) -> bool:
        return any(
            self._expr_reads_telemetry(expr) for expr in self._return_exprs()
        )

    def _returned_calls(self) -> list[str]:
        names: list[str] = []
        for expr in self._return_exprs():
            names.extend(self._feeder_calls(expr))
        return sorted(set(names))

    def _returns_constant(self) -> bool:
        exprs = self._return_exprs()
        return bool(exprs) and all(
            isinstance(self._deref(expr), ast.Constant) for expr in exprs
        )

    # -- pool payload picklability (RPL105) ------------------------------

    def _is_generator_fn(self) -> bool:
        stack: list[ast.AST] = [self.node]
        first = True
        while stack:
            current = stack.pop()
            if (
                isinstance(
                    current,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                )
                and not first
            ):
                continue
            first = False
            if isinstance(current, (ast.Yield, ast.YieldFrom)):
                return True
            stack.extend(ast.iter_child_nodes(current))
        return False

    def _returns_unpicklable(self) -> str | None:
        """Reason this function's return value can never pickle, if any."""
        if self._is_generator_fn():
            return "a generator"
        for expr in self._return_exprs():
            reason, _deferred = self._unpicklable_expr(expr)
            if reason is not None:
                return reason
        return None

    def _unpicklable_expr(
        self, expr: ast.expr
    ) -> tuple[str | None, str | None]:
        """(direct reason, deferred program callee) for one expression."""
        expr = self._deref(expr)
        if isinstance(expr, ast.Lambda):
            return "a lambda", None
        if isinstance(expr, ast.GeneratorExp):
            return "a generator expression", None
        if isinstance(expr, ast.Name) and expr.id in self.local_defs:
            return "a nested function", None
        if isinstance(expr, ast.Call):
            name = self.program.resolve_expr(self.module, expr.func)
            if (
                isinstance(expr.func, ast.Name)
                and expr.func.id == "open"
            ) or name == "io.open":
                return "an open file handle", None
            if name in _UNPICKLABLE_CTORS:
                return _UNPICKLABLE_CTORS[name], None
            site = self._resolve(expr)
            if len(site.callees) == 1:
                return None, site.callees[0]
        return None, None

    def _payload_issues(self, expr: ast.expr) -> list[PoolPayloadIssue]:
        """Issues for the elements of a tasks payload expression."""
        expr = self._deref(expr)
        elements: list[ast.expr]
        if isinstance(expr, (ast.List, ast.Tuple, ast.Set)):
            elements = [
                e for e in expr.elts if not isinstance(e, ast.Starred)
            ]
        elif isinstance(expr, (ast.ListComp, ast.GeneratorExp)):
            elements = [expr.elt]
        else:
            elements = []
        issues: list[PoolPayloadIssue] = []
        for element in elements:
            flat = [element]
            if isinstance(element, ast.Tuple):
                flat = [
                    e
                    for e in element.elts
                    if not isinstance(e, ast.Starred)
                ]
            for part in flat:
                reason, deferred = self._unpicklable_expr(part)
                if reason is not None or deferred is not None:
                    issues.append(
                        PoolPayloadIssue(
                            line=part.lineno,
                            col=part.col_offset,
                            reason=reason or "",
                            deferred_callee=deferred,
                        )
                    )
        return issues

    def _pool_calls(self) -> list[PoolCall]:
        pool_calls: list[PoolCall] = []
        for sub in ast.walk(self.node):
            if not isinstance(sub, ast.Call):
                continue
            name = self.program.resolve_expr(self.module, sub.func)
            if name is None or name.rsplit(".", 1)[-1] != "run_supervised":
                continue
            issues: list[PoolPayloadIssue] = []
            if sub.args:
                reason, deferred = self._unpicklable_expr(sub.args[0])
                if reason is not None:
                    issues.append(
                        PoolPayloadIssue(
                            line=sub.args[0].lineno,
                            col=sub.args[0].col_offset,
                            reason=f"task function is {reason}",
                            deferred_callee=None,
                        )
                    )
                elif deferred is not None:
                    issues.append(
                        PoolPayloadIssue(
                            line=sub.args[0].lineno,
                            col=sub.args[0].col_offset,
                            reason="",
                            deferred_callee=deferred,
                        )
                    )
            if len(sub.args) >= 2:
                issues.extend(self._payload_issues(sub.args[1]))
            pool_calls.append(
                PoolCall(line=sub.lineno, col=sub.col_offset,
                         issues=tuple(issues))
            )
        return pool_calls


def sanctioned_sink_lines(module: ModuleInfo) -> frozenset[int]:
    """Lines whose suppression directives sanction a raw-write sink."""
    lines: set[int] = set()
    for suppression in module.suppressions:
        if set(suppression.rules) & _SINK_SANCTIONS:
            lines.add(suppression.target_line)
    return frozenset(lines)


def summarize_function(
    graph: CallGraph,
    qualname: str,
    duck_names: frozenset[str],
) -> FunctionSummary:
    """Extract the summary for one indexed function."""
    module = graph.fn_modules[qualname]
    fn = graph.functions[qualname]
    node = graph.fn_nodes[qualname]
    return _FunctionSummarizer(
        graph,
        module,
        fn,
        node,
        duck_names,
        sanctioned_sink_lines(module),
    ).run()
