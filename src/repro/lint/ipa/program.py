"""Whole-program module table: parsing, import and re-export resolution.

A :class:`Program` holds one parsed :class:`ModuleInfo` per ``.py`` file
under the analyzed roots, keyed by dotted module name.  Names are
resolved *canonically*: ``from repro.storage import SimulatedCrash``
(a package re-export) and ``from repro.faults.storage import
SimulatedCrash as Boom`` both canonicalize to
``repro.faults.storage.SimulatedCrash``, so every downstream analysis
compares one spelling per symbol regardless of aliasing.

Module names are derived structurally: the loader ascends from each file
while ``__init__.py`` markers continue, so ``src/repro/pipeline/parallel.py``
becomes ``repro.pipeline.parallel`` and a fixture package rooted anywhere
under ``tests/lint/fixtures/ipa/`` gets its own short dotted name.  This
keeps the analyzer runnable on self-contained fixture programs without
any knowledge of the real package layout.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable
from dataclasses import dataclass
from pathlib import Path

from repro.lint.fileset import iter_python_files
from repro.lint.findings import Finding
from repro.lint.suppress import Suppression, collect_suppressions

#: Bound on re-export chain length; longer chains are left unresolved
#: rather than risking an import-cycle loop.
_MAX_REEXPORT_HOPS = 20


def module_name_for(path: Path) -> str:
    """Dotted module name for ``path``, derived from package markers."""
    path = path.resolve()
    parts = [path.stem] if path.name != "__init__.py" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    parts.reverse()
    return ".".join(parts) if parts else path.stem


def _relative_base(module_name: str, is_package: bool, level: int) -> str:
    """The absolute package a level-``level`` relative import resolves in."""
    parts = module_name.split(".")
    if not is_package:
        parts = parts[:-1]
    drop = level - 1
    if drop >= len(parts):
        return ""
    if drop:
        parts = parts[:-drop]
    return ".".join(parts)


@dataclass(slots=True)
class ModuleInfo:
    """One parsed module: its tree, import table, and suppressions."""

    name: str
    path: Path
    tree: ast.Module
    source: str
    #: Local name → absolute dotted target (module or module.symbol).
    imports: dict[str, str]
    #: Suppression directives found in the file (shared with the engine).
    suppressions: list[Suppression]
    is_package: bool
    #: Names defined by module-level ``def``/``class``/assignments.
    toplevel_symbols: frozenset[str]


def _toplevel_symbols(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.add(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
    return frozenset(names)


def _collect_imports(
    tree: ast.Module, module_name: str, is_package: bool
) -> dict[str, str]:
    """Map local names to absolute dotted import targets.

    Unlike the file-local :mod:`repro.lint.context` table, relative
    imports are resolved here: the interprocedural analyses need
    project-internal names most of all.
    """
    imports: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    imports[alias.asname] = alias.name
                else:
                    root = alias.name.split(".", 1)[0]
                    imports[root] = root
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = _relative_base(module_name, is_package, node.level)
                target = (
                    f"{base}.{node.module}"
                    if base and node.module
                    else (node.module or base)
                )
            else:
                target = node.module
            if not target:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{target}.{alias.name}"
    return imports


class Program:
    """Every analyzed module, with canonical cross-module name resolution."""

    def __init__(self, modules: dict[str, ModuleInfo],
                 parse_failures: list[Finding]):
        self.modules = modules
        self.parse_failures = parse_failures

    @classmethod
    def load(cls, paths: Iterable[Path | str]) -> "Program":
        """Parse every ``.py`` file under ``paths`` into a program."""
        from repro.lint.engine import PARSE_ERROR

        modules: dict[str, ModuleInfo] = {}
        failures: list[Finding] = []
        for path in iter_python_files(paths):
            try:
                source = path.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(path))
            except (OSError, SyntaxError) as exc:
                failures.append(
                    Finding(
                        path=str(path),
                        line=getattr(exc, "lineno", None) or 1,
                        col=0,
                        rule=PARSE_ERROR,
                        message=f"file excluded from whole-program "
                                f"analysis: {exc}",
                    )
                )
                continue
            name = module_name_for(path)
            is_package = path.name == "__init__.py"
            modules[name] = ModuleInfo(
                name=name,
                path=path,
                tree=tree,
                source=source,
                imports=_collect_imports(tree, name, is_package),
                suppressions=collect_suppressions(source),
                is_package=is_package,
                toplevel_symbols=_toplevel_symbols(tree),
            )
        return cls(modules, failures)

    def module_prefix_of(self, dotted: str) -> str | None:
        """The longest module name that prefixes ``dotted``, if any."""
        parts = dotted.split(".")
        for length in range(len(parts), 0, -1):
            candidate = ".".join(parts[:length])
            if candidate in self.modules:
                return candidate
        return None

    def canonicalize(self, dotted: str) -> str:
        """Fold aliases and package re-exports out of a dotted name.

        Splices the import table of the longest module prefix into the
        name until it either bottoms out at a module-level definition or
        leaves the program (external names are returned unchanged).
        """
        current = dotted
        for _hop in range(_MAX_REEXPORT_HOPS):
            prefix = self.module_prefix_of(current)
            if prefix is None:
                return current
            remainder = current[len(prefix):].lstrip(".")
            if not remainder:
                return current
            head = remainder.split(".", 1)[0]
            module = self.modules[prefix]
            if head in module.toplevel_symbols:
                return current
            if head in module.imports:
                tail = remainder[len(head):]
                current = module.imports[head] + tail
                continue
            return current
        return current

    def resolve_local(self, module: ModuleInfo, name: str) -> str | None:
        """Canonical dotted target for a bare name used in ``module``."""
        if name in module.toplevel_symbols:
            return self.canonicalize(f"{module.name}.{name}")
        if name in module.imports:
            return self.canonicalize(module.imports[name])
        return None

    def resolve_expr(
        self, module: ModuleInfo, node: ast.expr
    ) -> str | None:
        """Canonical dotted name for a ``Name``/``Attribute`` chain."""
        if isinstance(node, ast.Name):
            return self.resolve_local(module, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve_expr(module, node.value)
            if base is None:
                return None
            return self.canonicalize(f"{base}.{node.attr}")
        return None
