"""Function/class index and context-insensitive call graph.

Resolution is deliberately conservative and deterministic:

* bare names resolve through the module's import table (aliases and
  package re-exports folded by :meth:`Program.canonicalize`);
* ``self.m()`` / ``cls.m()`` resolve to the enclosing class's method,
  walking program-internal base classes;
* ``module.func`` and ``Class.method`` attribute chains resolve when
  the chain bottoms out in an imported or locally defined name;
* everything else is an *attribute call on a value of unknown type*.
  For a narrow, documented set of seam methods (the ``FileSystem``
  syscall surface of crash-raising classes and the telemetry read API)
  an unresolved ``x.m(...)`` is duck-linked to every program method
  named ``m`` on an eligible class — exactly the mechanism that lets
  the analyzer see through the ``fs: FileSystem`` injection seam to
  ``FaultyFS`` without type inference.

Nested functions and lambdas are folded into their enclosing function:
their calls, sinks, and handlers are attributed to the nearest indexed
``def`` — conservative for reachability, and it keeps the graph small.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.ipa.program import ModuleInfo, Program


@dataclass(slots=True, frozen=True)
class FunctionInfo:
    """One indexed function or method."""

    qualname: str
    module: str
    cls: str | None
    name: str
    lineno: int
    col: int
    params: tuple[str, ...]
    #: ``id()`` of the defining AST node (the node itself lives in
    #: ``CallGraph.fn_nodes`` so this dataclass stays frozen/hashable).
    node_id: int

    @property
    def is_method(self) -> bool:
        return self.cls is not None


@dataclass(slots=True)
class ClassInfo:
    """One indexed class with canonically resolved base names."""

    qualname: str
    module: str
    name: str
    bases: tuple[str, ...]
    methods: dict[str, str] = field(default_factory=dict)


@dataclass(slots=True, frozen=True)
class CallSite:
    """One call expression, resolved to zero or more program callees."""

    line: int
    col: int
    #: Canonical qualnames of possible callees inside the program.
    callees: tuple[str, ...]
    #: Canonical dotted name of the call target even when external
    #: (``numpy.random.default_rng``); None when unresolvable.
    external: str | None
    #: Attribute name for unresolved attribute calls (duck-link key).
    attr: str | None


def _params_of(node: ast.FunctionDef | ast.AsyncFunctionDef) -> tuple[str, ...]:
    args = node.args
    names = [arg.arg for arg in args.posonlyargs]
    names.extend(arg.arg for arg in args.args)
    if args.vararg is not None:
        names.append(args.vararg.arg)
    names.extend(arg.arg for arg in args.kwonlyargs)
    if args.kwarg is not None:
        names.append(args.kwarg.arg)
    return tuple(names)


class CallGraph:
    """Functions, classes, and resolved call edges for one program."""

    def __init__(self, program: Program):
        self.program = program
        #: qualname → FunctionInfo, sorted insertion by module walk.
        self.functions: dict[str, FunctionInfo] = {}
        #: qualname → ClassInfo.
        self.classes: dict[str, ClassInfo] = {}
        #: function qualname → its AST node (kept out of FunctionInfo so
        #: the dataclass stays hashable/frozen).
        self.fn_nodes: dict[str, ast.FunctionDef | ast.AsyncFunctionDef] = {}
        #: function qualname → owning module.
        self.fn_modules: dict[str, ModuleInfo] = {}
        #: method simple name → sorted tuple of method qualnames.
        self.methods_by_name: dict[str, tuple[str, ...]] = {}
        #: caller qualname → call sites in source order.
        self.calls: dict[str, tuple[CallSite, ...]] = {}
        self._callers_cache: dict[str, tuple[str, ...]] | None = None
        self._index()

    # -- indexing --------------------------------------------------------

    def _index(self) -> None:
        for module_name in sorted(self.program.modules):
            module = self.program.modules[module_name]
            for node in module.tree.body:
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self._add_function(module, node, cls=None)
                elif isinstance(node, ast.ClassDef):
                    self._add_class(module, node)
        by_name: dict[str, list[str]] = {}
        for qualname, info in self.functions.items():
            if info.cls is not None:
                by_name.setdefault(info.name, []).append(qualname)
        self.methods_by_name = {
            name: tuple(sorted(quals)) for name, quals in by_name.items()
        }

    def _add_class(self, module: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{module.name}.{node.name}"
        bases = []
        for base in node.bases:
            resolved = self.program.resolve_expr(module, base)
            if resolved is None and isinstance(base, ast.Name):
                resolved = base.id  # builtin such as BaseException
            if resolved is not None:
                bases.append(resolved)
        info = ClassInfo(
            qualname=qualname,
            module=module.name,
            name=node.name,
            bases=tuple(bases),
        )
        self.classes[qualname] = info
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(module, item, cls=node.name)
                info.methods[item.name] = f"{qualname}.{item.name}"

    def _add_function(
        self,
        module: ModuleInfo,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        cls: str | None,
    ) -> None:
        qualname = (
            f"{module.name}.{cls}.{node.name}"
            if cls
            else f"{module.name}.{node.name}"
        )
        info = FunctionInfo(
            qualname=qualname,
            module=module.name,
            cls=cls,
            name=node.name,
            lineno=node.lineno,
            col=node.col_offset,
            params=_params_of(node),
            node_id=id(node),
        )
        self.functions[qualname] = info
        self.fn_nodes[qualname] = node
        self.fn_modules[qualname] = module

    # -- class hierarchy -------------------------------------------------

    def class_mro(self, qualname: str) -> list[ClassInfo]:
        """Program-internal ancestors of a class, nearest first."""
        result: list[ClassInfo] = []
        queue = [qualname]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            result.append(info)
            queue.extend(info.bases)
        return result

    def derives_from(self, qualname: str, root: str,
                     stop_at: str | None = None) -> bool:
        """True when a class's base chain reaches ``root``.

        ``stop_at`` names a base that *blocks* the derivation: a class
        reaching ``Exception`` before ``BaseException`` is an ordinary
        exception, not a crash type.
        """
        queue = [qualname]
        seen: set[str] = set()
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            tail = current.rsplit(".", 1)[-1]
            if current == root or tail == root:
                return True
            if stop_at is not None and (
                current == stop_at or tail == stop_at
            ):
                continue
            info = self.classes.get(current)
            if info is not None:
                queue.extend(info.bases)
        return False

    # -- call resolution -------------------------------------------------

    def resolve_call(
        self,
        module: ModuleInfo,
        fn: FunctionInfo | None,
        call: ast.Call,
        duck_names: frozenset[str],
    ) -> CallSite:
        """Resolve one call expression to program callees.

        ``duck_names`` is the set of method names eligible for
        duck-typed linking (built by the analyzer from seam classes).
        """
        func = call.func
        callees: list[str] = []
        external: str | None = None
        attr: str | None = None

        resolved = self.program.resolve_expr(module, func)
        if resolved is not None:
            external = resolved
            callees.extend(self._program_targets(resolved))
        elif isinstance(func, ast.Attribute):
            attr = func.attr
            receiver = func.value
            if (
                fn is not None
                and fn.cls is not None
                and isinstance(receiver, ast.Name)
                and receiver.id in ("self", "cls")
            ):
                target = self._resolve_method(module, fn.cls, func.attr)
                if target is not None:
                    callees.append(target)
            elif attr in duck_names:
                callees.extend(self.methods_by_name.get(attr, ()))
        elif isinstance(func, ast.Name):
            attr = None
        return CallSite(
            line=call.lineno,
            col=call.col_offset,
            callees=tuple(sorted(set(callees))),
            external=external,
            attr=attr,
        )

    def _program_targets(self, canonical: str) -> list[str]:
        """Program functions a canonical dotted name denotes."""
        if canonical in self.functions:
            return [canonical]
        if canonical in self.classes:
            init = self.classes[canonical].methods.get("__init__")
            return [init] if init is not None else []
        # Class.method spelled through an import of the class.
        if "." in canonical:
            prefix, method = canonical.rsplit(".", 1)
            if prefix in self.classes:
                mro_target = self._resolve_method_qual(prefix, method)
                if mro_target is not None:
                    return [mro_target]
        return []

    def _resolve_method(
        self, module: ModuleInfo, cls_name: str, method: str
    ) -> str | None:
        return self._resolve_method_qual(f"{module.name}.{cls_name}", method)

    def _resolve_method_qual(self, cls_qual: str, method: str) -> str | None:
        for ancestor in self.class_mro(cls_qual):
            target = ancestor.methods.get(method)
            if target is not None:
                return target
        return None

    # -- edge enumeration ------------------------------------------------

    def edges(self) -> list[tuple[str, str]]:
        """Sorted, de-duplicated (caller, callee) pairs."""
        pairs: set[tuple[str, str]] = set()
        for caller in self.calls:
            for site in self.calls[caller]:
                for callee in site.callees:
                    pairs.add((caller, callee))
        return sorted(pairs)

    def callers_of(self) -> dict[str, tuple[str, ...]]:
        """Reverse adjacency: callee qualname → sorted callers.

        Cached after the first call — only valid once ``calls`` is fully
        populated, which the analyzer guarantees before any dataflow.
        """
        if self._callers_cache is None:
            reverse: dict[str, set[str]] = {}
            for caller, callee in self.edges():
                reverse.setdefault(callee, set()).add(caller)
            self._callers_cache = {
                callee: tuple(sorted(callers))
                for callee, callers in sorted(reverse.items())
            }
        return self._callers_cache
