"""The ``lint-baseline.json`` ratchet.

A baseline grandfathers known findings so CI can fail on *new* findings
only: entries match on ``(rule, path, symbol)`` — never the line number,
which shifts under unrelated edits.  The workflow:

* ``repro lint --ipa`` compares findings against the committed baseline
  and exits non-zero only when an unbaselined finding appears;
* ``repro lint --ipa --write-baseline`` regenerates the file from the
  current findings (the only sanctioned way to grow it — reviewers see
  the diff);
* baseline entries that no longer fire are reported as stale so the
  ratchet only ever tightens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding
from repro.storage.atomic import atomic_write_text

#: Current baseline file schema version.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """The baseline file exists but cannot be used."""


@dataclass(frozen=True, slots=True)
class Baseline:
    """Grandfathered findings keyed by (rule, path, symbol)."""

    version: int
    entries: frozenset[tuple[str, str, str]]

    @classmethod
    def empty(cls) -> "Baseline":
        return cls(version=BASELINE_VERSION, entries=frozenset())


def _key(finding: Finding) -> tuple[str, str, str]:
    return (finding.rule, Path(finding.path).as_posix(), finding.symbol)


def load_baseline(path: Path | str) -> Baseline:
    """Read a baseline file; a missing file is an empty baseline."""
    path = Path(path)
    if not path.exists():
        return Baseline.empty()
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise BaselineError(f"baseline {path} is not a JSON object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {version!r}; "
            f"this analyzer expects {BASELINE_VERSION} — regenerate "
            "with 'repro lint --ipa --write-baseline'"
        )
    raw_entries = payload.get("findings")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path} has no findings list")
    entries: set[tuple[str, str, str]] = set()
    for entry in raw_entries:
        if not isinstance(entry, dict):
            raise BaselineError(f"baseline {path}: non-object entry")
        try:
            entries.add(
                (
                    str(entry["rule"]),
                    str(entry["path"]),
                    str(entry.get("symbol", "")),
                )
            )
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: entry missing {exc}"
            ) from exc
    return Baseline(version=BASELINE_VERSION, entries=frozenset(entries))


def split_baselined(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[tuple[str, str, str]]]:
    """Partition findings into (new, grandfathered) plus stale entries."""
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    fired: set[tuple[str, str, str]] = set()
    for finding in findings:
        key = _key(finding)
        if key in baseline.entries:
            grandfathered.append(finding)
            fired.add(key)
        else:
            new.append(finding)
    stale = sorted(baseline.entries - fired)
    return new, grandfathered, stale


def write_baseline(findings: list[Finding], path: Path | str) -> int:
    """Atomically write a baseline covering ``findings``; returns count."""
    keys = sorted({_key(finding) for finding in findings})
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "reprolint --ipa ratchet: grandfathered findings tracked by "
            "(rule, path, symbol).  Regenerate with "
            "'repro lint --ipa --write-baseline'; new findings not "
            "listed here fail CI."
        ),
        "findings": [
            {"rule": rule, "path": file_path, "symbol": symbol}
            for rule, file_path, symbol in keys
        ],
    }
    atomic_write_text(
        Path(path), json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    return len(keys)
