"""Whole-program analysis entry point.

``run_ipa(paths)`` is the interprocedural sibling of
:func:`repro.lint.engine.run_lint` and the single orchestration point:

1. parse every file into a :class:`~repro.lint.ipa.program.Program`;
2. index functions/classes into a
   :class:`~repro.lint.ipa.callgraph.CallGraph`;
3. derive the *duck seam* — method names of crash-raising classes,
   which lets call resolution see through ``fs: FileSystem``-style
   injection without type inference;
4. summarize every function and register its call sites as graph edges;
5. run the dataflow fixpoints (:func:`compute_facts`);
6. evaluate RPL101–RPL105 and apply per-file suppressions, reporting
   interprocedural-rule directives that silenced nothing.

The result carries the findings, the graph (for ``--graph`` export),
and size statistics (for the benchmark's ``static_analysis`` section).
Baseline filtering is deliberately *not* done here — the CLI owns the
ratchet so library callers (the self-clean gate, tests) always see the
unfiltered truth.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding
from repro.lint.ipa.callgraph import CallGraph
from repro.lint.ipa.dataflow import ProgramFacts, compute_facts
from repro.lint.ipa.program import ModuleInfo, Program
from repro.lint.ipa.rules import ALL_IPA_CHECKS, IPA_RULE_IDS
from repro.lint.ipa.summaries import (
    _TELEMETRY_READ_ATTRS,
    FunctionSummary,
    summarize_function,
)
from repro.lint.suppress import apply_suppressions


class UnknownIpaRuleError(ValueError):
    """A rule id was requested that no interprocedural rule provides."""


@dataclass(slots=True, frozen=True)
class IpaStats:
    """Size of the analyzed program — benchmark and report fodder."""

    modules: int
    functions: int
    classes: int
    call_edges: int
    duck_names: int


@dataclass(slots=True)
class IpaResult:
    """Everything one whole-program pass produced."""

    findings: list[Finding]
    stats: IpaStats
    graph: CallGraph
    facts: ProgramFacts


def _select_checks(rule_ids: tuple[str, ...] | None) -> tuple[object, ...]:
    if rule_ids is None:
        return ALL_IPA_CHECKS
    by_id = dict(zip(IPA_RULE_IDS, ALL_IPA_CHECKS))
    checks = []
    for rule_id in rule_ids:
        if rule_id not in by_id:
            known = ", ".join(IPA_RULE_IDS)
            raise UnknownIpaRuleError(
                f"unknown interprocedural rule {rule_id!r}; known: {known}"
            )
        checks.append(by_id[rule_id])
    return tuple(checks)


def _crash_raising_duck_names(graph: CallGraph) -> frozenset[str]:
    """Method names of classes that (directly) raise a crash class.

    This is the narrow duck-typing seam documented in
    :mod:`repro.lint.ipa.callgraph`: an unresolved ``x.open(...)`` is
    linked to ``FaultyFS.open`` because ``FaultyFS`` has a method that
    raises a ``BaseException``-derived, non-``Exception`` type.  Dunder
    names are excluded — linking every ``__enter__`` in the program to a
    fault injector would drown the graph in false edges.
    """
    from repro.lint.ipa.dataflow import compute_crash_classes

    crash_classes = compute_crash_classes(graph)
    if not crash_classes:
        return frozenset()
    names: set[str] = set()
    for cls_qual in sorted(graph.classes):
        info = graph.classes[cls_qual]
        module = graph.fn_modules.get(
            next(iter(sorted(info.methods.values())), "")
        )
        if module is None:
            continue
        raises_crash = False
        for _name, method_qual in sorted(info.methods.items()):
            node = graph.fn_nodes.get(method_qual)
            if node is None:
                continue
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Raise) or sub.exc is None:
                    continue
                exc = sub.exc
                if isinstance(exc, ast.Call):
                    exc = exc.func
                resolved = graph.program.resolve_expr(module, exc)
                if resolved in crash_classes:
                    raises_crash = True
                    break
            if raises_crash:
                break
        if raises_crash:
            names.update(
                name
                for name in info.methods
                if not name.startswith("__")
            )
    return frozenset(names)


def _duck_names(graph: CallGraph) -> frozenset[str]:
    """Crash-seam method names plus the telemetry read surface."""
    return _crash_raising_duck_names(graph) | _TELEMETRY_READ_ATTRS


def _apply_file_suppressions(
    findings: list[Finding], program: Program
) -> list[Finding]:
    """Honor per-file directives; report unused interprocedural ones."""
    modules_by_path: dict[str, ModuleInfo] = {
        str(module.path): module
        for module in program.modules.values()
    }
    by_path: dict[str, list[Finding]] = {}
    for finding in findings:
        by_path.setdefault(finding.path, []).append(finding)
    # Files with directives but no findings must still be visited so a
    # stale disable=RPL10x there is reported.
    for path, module in modules_by_path.items():
        if module.suppressions:
            by_path.setdefault(path, [])

    kept: list[Finding] = []
    ipa_only = frozenset(IPA_RULE_IDS)
    for path in sorted(by_path):
        module = modules_by_path.get(path)
        if module is None:
            kept.extend(by_path[path])
            continue
        kept.extend(
            apply_suppressions(
                by_path[path],
                module.suppressions,
                path,
                unused_only=ipa_only,
            )
        )
    return kept


def run_ipa(
    paths: list[Path | str] | tuple[Path | str, ...],
    rules: tuple[str, ...] | None = None,
) -> IpaResult:
    """Run the whole-program analysis over ``paths``.

    Returns *all* findings (suppressions applied, baseline not): the
    caller decides what the committed ratchet grandfathers.
    """
    program = Program.load(paths)
    graph = CallGraph(program)
    duck_names = _duck_names(graph)

    summaries: dict[str, FunctionSummary] = {}
    for qualname in sorted(graph.functions):
        summary = summarize_function(graph, qualname, duck_names)
        summaries[qualname] = summary
        graph.calls[qualname] = summary.calls

    facts = compute_facts(graph, summaries)
    findings: list[Finding] = list(program.parse_failures)
    for check in _select_checks(rules):
        findings.extend(check(facts))  # type: ignore[operator]
    findings = _apply_file_suppressions(findings, program)

    stats = IpaStats(
        modules=len(program.modules),
        functions=len(graph.functions),
        classes=len(graph.classes),
        call_edges=len(graph.edges()),
        duck_names=len(duck_names),
    )
    return IpaResult(
        findings=sorted(findings), stats=stats, graph=graph, facts=facts
    )
