"""Call-graph export: Graphviz DOT and JSON.

Both exports are deterministic: nodes and edges are emitted in sorted
order, so two runs over the same tree produce byte-identical output —
the analyzer holds itself to the ordering discipline it enforces.
"""

from __future__ import annotations

import json

from repro.lint.ipa.callgraph import CallGraph


def graph_to_json(graph: CallGraph) -> str:
    """JSON document: functions, classes, edges, and size stats."""
    edges = graph.edges()
    functions = [
        {
            "qualname": info.qualname,
            "module": info.module,
            "class": info.cls,
            "line": info.lineno,
        }
        for _, info in sorted(graph.functions.items())
    ]
    payload = {
        "functions": functions,
        "classes": sorted(graph.classes),
        "edges": [[caller, callee] for caller, callee in edges],
        "stats": {
            "modules": len(graph.program.modules),
            "functions": len(graph.functions),
            "classes": len(graph.classes),
            "edges": len(edges),
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def _dot_id(qualname: str) -> str:
    return '"' + qualname.replace('"', r"\"") + '"'


def graph_to_dot(graph: CallGraph) -> str:
    """Graphviz DOT rendering, one cluster-free digraph."""
    lines = [
        "digraph callgraph {",
        "  rankdir=LR;",
        '  node [shape=box, fontsize=9, fontname="monospace"];',
    ]
    for qualname in sorted(graph.functions):
        lines.append(f"  {_dot_id(qualname)};")
    for caller, callee in graph.edges():
        lines.append(f"  {_dot_id(caller)} -> {_dot_id(callee)};")
    lines.append("}")
    return "\n".join(lines) + "\n"
