"""Inline suppression comments: ``# reprolint: disable=RPL001[,RPL003]``.

A suppression silences the named rules **on its own line only** — for a
multi-line statement, place the comment on the line the finding reports
(the statement's first line).  Every suppression must earn its keep: one
that silences nothing is itself reported as :data:`UNUSED_SUPPRESSION`
so stale escapes cannot accumulate.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

#: Rule id reported for a suppression that silenced no finding.
UNUSED_SUPPRESSION = "RPL007"

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*disable=(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)


@dataclass(slots=True)
class Suppression:
    """One disable directive and the rules it has silenced so far."""

    line: int
    rules: tuple[str, ...]
    used: set[str] = field(default_factory=set)


def collect_suppressions(source: str) -> list[Suppression]:
    """Scan comment tokens for disable directives.

    Tokenizing (rather than regexing raw lines) means a directive inside a
    string literal is not mistaken for a real suppression.
    """
    suppressions: list[Suppression] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",")
            )
            suppressions.append(Suppression(line=token.start[0], rules=rules))
    except tokenize.TokenizeError:
        # The engine reports the parse failure separately (RPL900);
        # suppression scanning just yields what it saw up to the error.
        pass
    return suppressions


def apply_suppressions(
    findings: list[Finding], suppressions: list[Suppression], path: str
) -> list[Finding]:
    """Drop suppressed findings and report unused directives.

    A finding is suppressed when a directive on the same line names its
    rule.  Directives naming rules that never fired on their line yield an
    :data:`UNUSED_SUPPRESSION` finding per unused rule id.
    """
    by_line: dict[int, list[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)

    kept: list[Finding] = []
    for finding in findings:
        silenced = False
        for suppression in by_line.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
                silenced = True
        if not silenced:
            kept.append(finding)

    for suppression in suppressions:
        for rule in suppression.rules:
            if rule not in suppression.used:
                kept.append(
                    Finding(
                        path=path,
                        line=suppression.line,
                        col=0,
                        rule=UNUSED_SUPPRESSION,
                        message=(
                            f"suppression of {rule} silences nothing on "
                            "this line; remove the stale directive"
                        ),
                    )
                )
    return kept
