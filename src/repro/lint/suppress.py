"""Inline suppression comments.

Two directive forms are recognized:

* ``# reprolint: disable=RPL001[,RPL003]`` — silences the named rules
  **on its own line only**.  A directive on a decorator line covers the
  decorator line, not the decorated function; for a multi-line
  statement, place it on the line the finding reports (the statement's
  first line).
* ``# reprolint: disable-next-line=RPL001`` — silences the named rules
  on the next line that contains code (blank and comment-only lines are
  skipped), so a directive can sit on its own line above a long
  statement or a decorated ``def``.

Every suppression must earn its keep: one that silences nothing is
itself reported as :data:`UNUSED_SUPPRESSION` so stale escapes cannot
accumulate.  Because the file-local and interprocedural engines run as
separate passes over the same directives, each pass restricts its
unused-suppression reporting to the rule ids it owns (``unused_exempt``
/ ``unused_only``) — a ``disable=RPL103`` directive is not "unused"
merely because the file-local pass cannot fire RPL103.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field

from repro.lint.findings import Finding

#: Rule id reported for a suppression that silenced no finding.
UNUSED_SUPPRESSION = "RPL007"

_DIRECTIVE = re.compile(
    r"#\s*reprolint:\s*(?P<form>disable|disable-next-line)="
    r"(?P<rules>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*)"
)

#: Token types that mark a line as containing actual code.
_NON_CODE_TOKENS = frozenset(
    {
        tokenize.COMMENT,
        tokenize.NL,
        tokenize.NEWLINE,
        tokenize.INDENT,
        tokenize.DEDENT,
        tokenize.ENCODING,
        tokenize.ENDMARKER,
    }
)


@dataclass(slots=True)
class Suppression:
    """One disable directive and the rules it has silenced so far."""

    #: Line the directive comment sits on.
    line: int
    #: Line whose findings the directive silences (differs from
    #: ``line`` for the ``disable-next-line`` form).
    target_line: int
    rules: tuple[str, ...]
    used: set[str] = field(default_factory=set)


def collect_suppressions(source: str) -> list[Suppression]:
    """Scan comment tokens for disable directives.

    Tokenizing (rather than regexing raw lines) means a directive inside
    a string literal is not mistaken for a real suppression.
    """
    directives: list[tuple[int, str, tuple[str, ...]]] = []
    code_lines: set[int] = set()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for token in tokens:
            if token.type not in _NON_CODE_TOKENS:
                for covered in range(token.start[0], token.end[0] + 1):
                    code_lines.add(covered)
            if token.type != tokenize.COMMENT:
                continue
            match = _DIRECTIVE.search(token.string)
            if match is None:
                continue
            rules = tuple(
                part.strip() for part in match.group("rules").split(",")
            )
            directives.append(
                (token.start[0], match.group("form"), rules)
            )
    except tokenize.TokenizeError:
        # The engine reports the parse failure separately (RPL900);
        # suppression scanning just yields what it saw up to the error.
        pass

    suppressions: list[Suppression] = []
    for line, form, rules in directives:
        if form == "disable-next-line":
            later = sorted(code for code in code_lines if code > line)
            # A dangling directive with no code after it targets its own
            # line, where it can silence nothing and is reported stale.
            target = later[0] if later else line
        else:
            target = line
        suppressions.append(
            Suppression(line=line, target_line=target, rules=rules)
        )
    return suppressions


def apply_suppressions(
    findings: list[Finding],
    suppressions: list[Suppression],
    path: str,
    *,
    unused_exempt: frozenset[str] = frozenset(),
    unused_only: frozenset[str] | None = None,
) -> list[Finding]:
    """Drop suppressed findings and report unused directives.

    A finding is suppressed when a directive *targeting* its line names
    its rule.  Directives naming rules that never fired on their target
    line yield an :data:`UNUSED_SUPPRESSION` finding per unused rule id
    — except ids in ``unused_exempt`` (another pass owns them), or, when
    ``unused_only`` is given, ids outside it.
    """
    by_line: dict[int, list[Suppression]] = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.target_line, []).append(suppression)

    kept: list[Finding] = []
    for finding in findings:
        silenced = False
        for suppression in by_line.get(finding.line, ()):
            if finding.rule in suppression.rules:
                suppression.used.add(finding.rule)
                silenced = True
        if not silenced:
            kept.append(finding)

    for suppression in suppressions:
        for rule in suppression.rules:
            if rule in suppression.used or rule in unused_exempt:
                continue
            if unused_only is not None and rule not in unused_only:
                continue
            kept.append(
                Finding(
                    path=path,
                    line=suppression.line,
                    col=0,
                    rule=UNUSED_SUPPRESSION,
                    message=(
                        f"suppression of {rule} silences nothing on "
                        "its target line; remove the stale directive"
                    ),
                )
            )
    return kept
