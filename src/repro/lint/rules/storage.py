"""RPL008 — raw durable writes outside the storage layer.

Every byte this project persists must flow through
:mod:`repro.storage` — the atomic-durable writer (temp sibling →
fsync → rename → directory fsync) plus integrity sidecars.  A raw
``open(path, "w")``, ``Path.write_text``, or ``os.replace`` sprinkled
elsewhere reopens the exact crash windows the storage subsystem was
built to close: a kill mid-write tears the file, an unfsynced rename
silently reverts on power loss, and no manifest means bitrot is
invisible to ``repro scrub``.

The rule flags three shapes in core code:

* builtin ``open`` (or ``io.open``) whose *constant* mode string
  contains any of ``w``/``a``/``x``/``+`` — non-constant modes are not
  judged (the caller decides; the reviewer decides);
* ``.write_text(...)`` / ``.write_bytes(...)`` method calls (the
  one-shot ``pathlib`` writers have no durability story at all);
* resolved ``os.replace`` / ``os.rename`` calls (renames are only
  crash-safe inside the writer, which fsyncs the parent directory).

Tests and benchmarks are exempt — they stage scratch files and
deliberately corrupt them.  Files inside a ``storage`` package
directory are exempt by construction: that is where the raw syscalls
are supposed to live.  The rare legitimate escape hatch elsewhere
(e.g. the in-place torn-tail truncation in the incremental collector)
carries an inline ``# reprolint: disable=RPL008`` with a justification.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.lint.context import FileContext
from repro.lint.findings import Finding

#: Mode characters that make an ``open`` call a write (or writable) open.
_WRITE_MODE_CHARS = frozenset("wax+")
#: Fully qualified rename calls that bypass the atomic writer.
_RENAME_CALLS = frozenset({"os.replace", "os.rename"})
#: One-shot pathlib-style writers with no fsync/atomicity story.
_WRITE_METHODS = frozenset({"write_text", "write_bytes"})


class RawStorageWriteRule:
    rule_id = "RPL008"
    summary = "raw filesystem write outside repro/storage"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        role = ctx.role
        if role.is_test or role.is_bench:
            return
        if "storage" in ctx.path.parent.parts:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = self._classify(ctx, node)
            if reason is not None:
                yield Finding(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule_id,
                    message=(
                        f"{reason}; persisted bytes must go through "
                        "repro.storage (AtomicWriter / atomic_write_text) "
                        "so a crash can never tear or destroy them"
                    ),
                )

    def _classify(self, ctx: FileContext, node: ast.Call) -> str | None:
        func = node.func
        name = ctx.resolve(func)
        if name in _RENAME_CALLS:
            return f"{name}() renames without a parent-directory fsync"
        if isinstance(func, ast.Attribute) and func.attr in _WRITE_METHODS:
            return (
                f".{func.attr}() writes in place with no fsync or "
                "atomic replace"
            )
        is_open = (
            isinstance(func, ast.Name) and func.id == "open"
        ) or name == "io.open"
        if is_open:
            mode = self._constant_mode(node)
            if mode is not None and set(mode) & _WRITE_MODE_CHARS:
                return f"open(..., {mode!r}) opens a file for writing"
        return None

    @staticmethod
    def _constant_mode(node: ast.Call) -> str | None:
        """The call's mode argument, when it is a string constant."""
        for keyword in node.keywords:
            if keyword.arg == "mode":
                value = keyword.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value
                return None
        if len(node.args) >= 2:
            value = node.args[1]
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                return value.value
        return None
