"""RPL003 — unordered iteration flowing into ordered output.

The parallel merge produces byte-identical JSONL for any worker count
because every ordered output is built from a deterministic order.  ``set``
iteration order depends on insertion history and string hash seeding, and
``dict.keys()``/``.values()`` order depends on insertion order — which
differs between workers.  This rule flags unordered sources reaching three
ordered sinks without an enclosing ``sorted()``:

* **returned sequences** — ``return list(s)``, ``return [f(x) for x in s]``
  (returning the raw ``set`` itself is fine: the consumer decides);
* **string joins** — ``", ".join(s)`` and joins over comprehensions whose
  iteration source is unordered;
* **write loops** — ``for x in s:`` whose body calls ``.write()`` /
  ``.writelines()`` / ``json.dump`` (the JSONL emission shape).

Taint is tracked per scope for simple assignments (``names = d.keys()``
… ``"".join(names)``) so a one-variable indirection cannot hide a hazard.
The analysis is deliberately syntactic: it has no type information, so a
``.keys()``/``.values()`` call on *any* receiver counts as unordered.
"""

from __future__ import annotations

from collections.abc import Iterator

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding

#: Builtins whose output order is the input order (taint propagates).
_ORDER_PRESERVING = frozenset({"list", "tuple", "reversed", "iter"})
#: Builtins/calls that establish a deterministic order (taint cleared).
_ORDER_FIXING = frozenset({"sorted"})
#: Constructors of unordered collections.
_UNORDERED_CONSTRUCTORS = frozenset({"set", "frozenset"})
#: Methods returning dict views / set combinations with unordered order.
_UNORDERED_METHODS = frozenset(
    {"keys", "values", "union", "intersection", "difference",
     "symmetric_difference"}
)
#: Method names that mark a for-loop body as an output writer.
_WRITE_METHODS = frozenset({"write", "writelines", "dump"})


class _Scope:
    """Names currently known to hold unordered collections."""

    __slots__ = ("tainted",)

    def __init__(self) -> None:
        self.tainted: set[str] = set()


class _OrderingVisitor(ast.NodeVisitor):
    def __init__(self, ctx: FileContext) -> None:
        self.ctx = ctx
        self.findings: list[Finding] = []
        self.scopes: list[_Scope] = [_Scope()]

    # -- taint bookkeeping -------------------------------------------------

    def _is_tainted_name(self, name: str) -> bool:
        return any(name in scope.tainted for scope in reversed(self.scopes))

    def _is_unordered(self, node: ast.expr) -> bool:
        """Does this expression iterate in a nondeterministic order?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return self._is_tainted_name(node.id)
        if isinstance(node, ast.IfExp):
            return self._is_unordered(node.body) or self._is_unordered(
                node.orelse
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            # set algebra: s | t, s & t, s - t, s ^ t
            return self._is_unordered(node.left) or self._is_unordered(
                node.right
            )
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _UNORDERED_CONSTRUCTORS:
                    return True
                if func.id in _ORDER_FIXING:
                    return False
                if func.id in _ORDER_PRESERVING and node.args:
                    return self._is_unordered(node.args[0])
                return False
            if isinstance(func, ast.Attribute):
                if func.attr in _UNORDERED_METHODS and not node.args:
                    return True
                if func.attr in _UNORDERED_METHODS and node.args:
                    # s.union(t) and friends take arguments.
                    return True
                return False
        return False

    def _comprehension_unordered(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            return any(
                self._is_unordered(gen.iter) for gen in node.generators
            )
        return False

    # -- scope management --------------------------------------------------

    def _visit_in_new_scope(self, node: ast.AST) -> None:
        self.scopes.append(_Scope())
        self.generic_visit(node)
        self.scopes.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_in_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_in_new_scope(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._visit_in_new_scope(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_in_new_scope(node)

    def _record_assignment(self, target: ast.expr, value: ast.expr) -> None:
        if not isinstance(target, ast.Name):
            return
        scope = self.scopes[-1]
        if self._is_unordered(value):
            scope.tainted.add(target.id)
        else:
            scope.tainted.discard(target.id)

    def visit_Assign(self, node: ast.Assign) -> None:
        self.generic_visit(node)
        for target in node.targets:
            self._record_assignment(target, node.value)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self.generic_visit(node)
        if node.value is not None:
            self._record_assignment(node.target, node.value)

    # -- sinks -------------------------------------------------------------

    def _emit(self, node: ast.stmt | ast.expr, message: str) -> None:
        self.findings.append(
            Finding(
                path=str(self.ctx.path),
                line=node.lineno,
                col=node.col_offset,
                rule=UnorderedIterationRule.rule_id,
                message=message,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "join"
            and node.args
        ):
            arg = node.args[0]
            if self._is_unordered(arg) or self._comprehension_unordered(arg):
                self._emit(
                    node,
                    "string join over an unordered collection produces "
                    "nondeterministic output; wrap the source in sorted()",
                )
        self.generic_visit(node)

    def visit_Return(self, node: ast.Return) -> None:
        value = node.value
        if value is not None and not self._returns_collection_itself(value):
            if self._comprehension_unordered(value) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _ORDER_PRESERVING
                and value.args
                and self._is_unordered(value.args[0])
            ):
                self._emit(
                    node,
                    "returned sequence is built by iterating an unordered "
                    "collection; wrap the source in sorted() so callers "
                    "see a deterministic order",
                )
        self.generic_visit(node)

    @staticmethod
    def _returns_collection_itself(value: ast.expr) -> bool:
        """Returning a set/frozenset *as a set* is not an ordered sink."""
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        return (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _UNORDERED_CONSTRUCTORS
        )

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered(node.iter) and self._body_writes(node):
            self._emit(
                node,
                "write loop iterates an unordered collection, so records "
                "land in nondeterministic order; wrap the source in "
                "sorted()",
            )
        self.generic_visit(node)

    @staticmethod
    def _body_writes(node: ast.For) -> bool:
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Call)
                    and isinstance(sub.func, ast.Attribute)
                    and sub.func.attr in _WRITE_METHODS
                ):
                    return True
        return False


class UnorderedIterationRule:
    rule_id = "RPL003"
    summary = "unordered set/dict-view iteration feeding ordered output"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _OrderingVisitor(ctx)
        visitor.visit(ctx.tree)
        yield from visitor.findings
