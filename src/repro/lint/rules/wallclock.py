"""RPL002 — wall-clock reads in core logic.

A corpus built at 14:02 must be byte-identical to one built at 14:03.
Any ``time.time()`` / ``datetime.now()`` that leaks into collection,
clustering, or stats logic breaks replayability and makes the chaos- and
parallel-equivalence properties flaky.  Simulated time (the synthetic
world's clock) is the only clock core code may consult.

Benchmarks, the CLI, and tests are exempt: measuring elapsed wall time is
their job.
"""

from __future__ import annotations

from collections.abc import Iterator

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding

#: Fully qualified callables that read the host clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule:
    rule_id = "RPL002"
    summary = "wall-clock read outside benchmarks/CLI/tests"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        role = ctx.role
        if role.is_test or role.is_cli or role.is_bench:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name in _WALL_CLOCK_CALLS:
                yield Finding(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule_id,
                    message=(
                        f"{name}() reads the host clock; core logic must "
                        "derive all timestamps from its inputs "
                        "(simulated time) to stay replayable"
                    ),
                )
