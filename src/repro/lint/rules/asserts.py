"""RPL006 — ``assert`` used for runtime validation in non-test code.

``python -O`` strips assert statements.  An invariant guarded only by
``assert`` (``assert place is not None``) silently becomes a pass-through
under optimization, and the failure surfaces later as an unrelated
``AttributeError`` far from the broken invariant.  Non-test code must
raise explicit exceptions; tests keep ``assert`` (pytest rewrites it).
"""

from __future__ import annotations

from collections.abc import Iterator

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding


class RuntimeAssertRule:
    rule_id = "RPL006"
    summary = "assert for runtime validation (stripped under python -O)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role.is_test:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                yield Finding(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule_id,
                    message=(
                        "assert is stripped under python -O; raise an "
                        "explicit exception (ValueError/ReproError) for "
                        "runtime validation"
                    ),
                )
