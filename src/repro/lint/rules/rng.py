"""RPL001 — unseeded or implicit RNG.

Parallel-equivalence (byte-identical corpora for any worker count) holds
only because every random draw flows from an explicitly seeded
``np.random.Generator`` or ``random.Random``.  This rule flags the ways a
nondeterministic stream can sneak in:

* ``np.random.default_rng()`` with no seed argument — seeds from the OS;
* legacy module-level draws (``np.random.seed``, ``np.random.normal``, …)
  — share hidden global state across modules and processes;
* stdlib module-level draws (``random.random()``, ``random.choice``, …)
  — same hidden-global problem;
* ``random.Random()`` with no seed, and ``random.SystemRandom`` (which is
  nondeterministic by design).

Test code is exempt: tests may use whatever randomness they like.
"""

from __future__ import annotations

from collections.abc import Iterator

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding

#: Legacy draw/seed functions on the hidden numpy global RNG.
_NUMPY_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "choice",
        "shuffle",
        "permutation",
        "normal",
        "standard_normal",
        "uniform",
        "poisson",
        "binomial",
        "beta",
        "gamma",
        "exponential",
        "bytes",
    }
)

#: Module-level draw functions on the hidden stdlib global RNG.
_STDLIB_GLOBAL_DRAWS = frozenset(
    {
        "seed",
        "random",
        "randint",
        "randrange",
        "getrandbits",
        "randbytes",
        "choice",
        "choices",
        "shuffle",
        "sample",
        "uniform",
        "triangular",
        "betavariate",
        "expovariate",
        "gammavariate",
        "gauss",
        "lognormvariate",
        "normalvariate",
        "vonmisesvariate",
        "paretovariate",
        "weibullvariate",
    }
)


class ImplicitRngRule:
    rule_id = "RPL001"
    summary = "unseeded or implicit RNG (hidden global state)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve(node.func)
            if name is None:
                continue
            message = self._diagnose(name, node)
            if message is not None:
                yield Finding(
                    path=str(ctx.path),
                    line=node.lineno,
                    col=node.col_offset,
                    rule=self.rule_id,
                    message=message,
                )

    def _diagnose(self, name: str, node: ast.Call) -> str | None:
        if name == "numpy.random.default_rng":
            if not node.args and not node.keywords:
                return (
                    "np.random.default_rng() without a seed draws OS "
                    "entropy; pass an explicit seed or SeedSequence"
                )
            return None
        if name.startswith("numpy.random."):
            tail = name.rsplit(".", 1)[1]
            if tail in _NUMPY_GLOBAL_DRAWS:
                return (
                    f"np.random.{tail} uses the hidden numpy global RNG; "
                    "draw from an explicitly seeded np.random.Generator"
                )
            return None
        if name == "random.Random":
            if not node.args and not node.keywords:
                return (
                    "random.Random() without a seed draws OS entropy; "
                    "pass an explicit seed"
                )
            return None
        if name == "random.SystemRandom":
            return (
                "random.SystemRandom is nondeterministic by design and "
                "can never reproduce a run; use a seeded random.Random"
            )
        if name.startswith("random."):
            tail = name.rsplit(".", 1)[1]
            if tail in _STDLIB_GLOBAL_DRAWS:
                return (
                    f"random.{tail} uses the hidden stdlib global RNG; "
                    "draw from an explicitly seeded random.Random instance"
                )
        return None
