"""Rule registry for reprolint.

Each rule is a small object with a ``rule_id``, a one-line ``summary``
(shown by ``repro lint --list-rules``), and a ``check(ctx)`` method that
yields :class:`~repro.lint.findings.Finding` objects for one file.  Rules
never see each other's output; the engine handles suppression and merging.
"""

from __future__ import annotations

from collections.abc import Iterator
from typing import Protocol

from repro.lint.context import FileContext
from repro.lint.findings import Finding
from repro.lint.rules.asserts import RuntimeAssertRule
from repro.lint.rules.defaults import MutableDefaultRule
from repro.lint.rules.exceptions import BroadExceptRule
from repro.lint.rules.ordering import UnorderedIterationRule
from repro.lint.rules.rng import ImplicitRngRule
from repro.lint.rules.storage import RawStorageWriteRule
from repro.lint.rules.wallclock import WallClockRule


class Rule(Protocol):
    """Interface every reprolint rule implements."""

    rule_id: str
    summary: str

    def check(self, ctx: FileContext) -> Iterator[Finding]: ...


#: All rules, in id order.  The engine runs every rule on every file;
#: per-file exemptions (tests, CLI, benchmarks) live inside the rules.
ALL_RULES: tuple[Rule, ...] = (
    ImplicitRngRule(),
    WallClockRule(),
    UnorderedIterationRule(),
    BroadExceptRule(),
    MutableDefaultRule(),
    RuntimeAssertRule(),
    RawStorageWriteRule(),
)

RULES_BY_ID: dict[str, Rule] = {rule.rule_id: rule for rule in ALL_RULES}

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "Rule",
    "BroadExceptRule",
    "ImplicitRngRule",
    "MutableDefaultRule",
    "RawStorageWriteRule",
    "RuntimeAssertRule",
    "UnorderedIterationRule",
    "WallClockRule",
]
