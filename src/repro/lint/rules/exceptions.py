"""RPL004 — over-broad exception handlers that can swallow injected faults.

The chaos harness (``repro.twitter.faults``) proves resilience by
injecting disconnects, torn frames, and HTTP errors and asserting the
corpus is still byte-identical.  A bare ``except:`` (or ``except
Exception``/``BaseException``) between the fault source and the resilient
client can silently absorb an injected fault, turning a real bug into a
passed test.  Handlers that re-raise (contain any ``raise``) are allowed:
they observe, they do not swallow.

Test code is exempt.
"""

from __future__ import annotations

from collections.abc import Iterator

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding

_BROAD_NAMES = frozenset({"Exception", "BaseException"})


def _broad_name(node: ast.expr | None) -> str | None:
    """The broad class caught by this handler clause, if any."""
    if node is None:
        return "bare except"
    if isinstance(node, ast.Name) and node.id in _BROAD_NAMES:
        return node.id
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            found = _broad_name(element)
            if found is not None:
                return found
    return None


class BroadExceptRule:
    rule_id = "RPL004"
    summary = "bare/over-broad except that can swallow injected faults"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.role.is_test:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = _broad_name(node.type)
            if caught is None:
                continue
            if any(isinstance(sub, ast.Raise) for sub in ast.walk(node)):
                continue
            yield Finding(
                path=str(ctx.path),
                line=node.lineno,
                col=node.col_offset,
                rule=self.rule_id,
                message=(
                    f"{caught} swallows every error, including injected "
                    "chaos faults; catch the specific exceptions you can "
                    "handle, or re-raise"
                ),
            )
