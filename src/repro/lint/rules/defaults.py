"""RPL005 — mutable default arguments.

A mutable default is evaluated once at definition time and shared across
every call.  In a pipeline that reuses stage objects across shards, state
leaking through a shared ``[]``/``{}`` default silently couples workers —
exactly the cross-shard coupling the parallel-equivalence property
forbids.  Use ``None`` and construct inside the body.
"""

from __future__ import annotations

from collections.abc import Iterator

import ast

from repro.lint.context import FileContext
from repro.lint.findings import Finding

_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "Counter", "deque"}
)


def _is_mutable(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id in _MUTABLE_CONSTRUCTORS
    return False


class MutableDefaultRule:
    rule_id = "RPL005"
    summary = "mutable default argument (shared across calls)"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            defaults: list[ast.expr] = list(node.args.defaults)
            defaults.extend(
                default
                for default in node.args.kw_defaults
                if default is not None
            )
            for default in defaults:
                if _is_mutable(default):
                    yield Finding(
                        path=str(ctx.path),
                        line=default.lineno,
                        col=default.col_offset,
                        rule=self.rule_id,
                        message=(
                            "mutable default is created once and shared "
                            "by every call; default to None and build "
                            "the value inside the function"
                        ),
                    )
