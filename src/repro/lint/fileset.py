"""File discovery shared by the file-local and interprocedural engines.

Lives in its own leaf module so :mod:`repro.lint.engine` (file-local)
and :mod:`repro.lint.ipa.program` (whole-program) can both import it
without creating a cycle between the two engines.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path


def iter_python_files(paths: Iterable[Path | str]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated file list."""
    seen: set[Path] = set()
    for entry in paths:
        path = Path(entry)
        if path.is_dir():
            seen.update(path.rglob("*.py"))
        else:
            seen.add(path)
    return sorted(seen)
