"""The :class:`Finding` record emitted by every reprolint rule.

A finding pins one rule violation to one source location.  Findings sort
by ``(path, line, col, rule)`` so reports are deterministic regardless of
rule execution order — the analyzer holds itself to the same ordering
discipline it enforces (RPL003).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


@dataclass(frozen=True, slots=True, order=True)
class Finding:
    """One rule violation at one source location.

    Attributes:
        path: File the finding is in, as given to the engine.
        line: 1-based line of the offending node.
        col: 0-based column of the offending node.
        rule: Rule identifier, e.g. ``"RPL001"``.
        message: Human-readable explanation with the suggested fix.
        symbol: Qualified name of the owning function/method for
            interprocedural findings (empty for file-local rules).
            The baseline ratchet keys on it instead of the line number.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    symbol: str = ""

    def render(self) -> str:
        """``path:line:col: RPLxxx message`` — the text report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form for ``repro lint --format json``."""
        payload: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }
        if self.symbol:
            payload["symbol"] = self.symbol
        return payload
