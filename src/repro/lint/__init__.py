"""reprolint — AST-based determinism & reliability analyzer.

The repo's headline guarantees (byte-identical corpora and cluster
assignments for any worker count, under chaos injection) rest on coding
conventions no generic linter checks.  This package enforces them as
named rules over the whole ``src/repro`` tree:

======  ==============================================================
RPL001  unseeded or implicit RNG (hidden global state)
RPL002  wall-clock read outside benchmarks/CLI/tests
RPL003  unordered set/dict-view iteration feeding ordered output
RPL004  bare/over-broad except that can swallow injected faults
RPL005  mutable default argument (shared across calls)
RPL006  assert for runtime validation (stripped under ``python -O``)
RPL007  unused ``# reprolint: disable=`` suppression
RPL008  raw filesystem write outside ``repro/storage``
RPL900  file does not parse
======  ==============================================================

Use :func:`run_lint` as a library, ``repro lint`` from the shell, and
``tests/lint/test_self_clean.py`` as the CI gate that keeps the repo
clean against its own analyzer.  Silence a deliberate violation inline
with ``# reprolint: disable=RPL00x`` on the reported line.
"""

from __future__ import annotations

from repro.lint.engine import (
    PARSE_ERROR,
    UnknownRuleError,
    iter_python_files,
    lint_source,
    run_lint,
    select_rules,
)
from repro.lint.findings import Finding
from repro.lint.rules import ALL_RULES, RULES_BY_ID, Rule
from repro.lint.suppress import UNUSED_SUPPRESSION

__all__ = [
    "ALL_RULES",
    "RULES_BY_ID",
    "PARSE_ERROR",
    "UNUSED_SUPPRESSION",
    "Finding",
    "Rule",
    "UnknownRuleError",
    "iter_python_files",
    "lint_source",
    "run_lint",
    "select_rules",
]
