"""reprolint engine: file discovery, rule execution, suppression.

``run_lint(paths)`` is the library entry point the CLI and the self-clean
pytest gate share.  The engine is deterministic end to end: files are
visited in sorted order, and findings are sorted by location before being
returned.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

import ast

from repro.lint.context import FileContext
from repro.lint.fileset import iter_python_files
from repro.lint.findings import Finding
from repro.lint.ipa.rules import IPA_RULE_IDS
from repro.lint.rules import ALL_RULES, RULES_BY_ID, Rule
from repro.lint.suppress import apply_suppressions, collect_suppressions

__all__ = [
    "PARSE_ERROR",
    "UnknownRuleError",
    "select_rules",
    "iter_python_files",
    "lint_source",
    "run_lint",
]

#: Rule id reported when a file cannot be parsed at all.
PARSE_ERROR = "RPL900"


class UnknownRuleError(ValueError):
    """A rule id was requested that no rule provides."""


def select_rules(rule_ids: Sequence[str] | None) -> tuple[Rule, ...]:
    """Resolve ``--rules`` ids to rule objects; ``None`` means all."""
    if rule_ids is None:
        return ALL_RULES
    rules = []
    for rule_id in rule_ids:
        if rule_id not in RULES_BY_ID:
            known = ", ".join(sorted(RULES_BY_ID))
            raise UnknownRuleError(
                f"unknown rule {rule_id!r}; known rules: {known}"
            )
        rules.append(RULES_BY_ID[rule_id])
    return tuple(rules)


def lint_source(
    source: str,
    path: Path | str,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint one file's source under a (possibly virtual) path.

    The path decides role exemptions (tests/CLI/benchmarks), so fixture
    tests can lint snippets as if they lived anywhere in the tree.
    """
    path = Path(path)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Finding(
                path=str(path),
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                rule=PARSE_ERROR,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    ctx = FileContext.build(path, source, tree)
    findings: list[Finding] = []
    for rule in rules if rules is not None else ALL_RULES:
        findings.extend(rule.check(ctx))
    # Suppressions naming interprocedural rules are this pass's business
    # to honor but not to police: the --ipa pass reports them if unused.
    findings = apply_suppressions(
        findings,
        collect_suppressions(source),
        str(path),
        unused_exempt=frozenset(IPA_RULE_IDS),
    )
    return sorted(findings)


def run_lint(
    paths: Iterable[Path | str],
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths``; return sorted findings."""
    findings: list[Finding] = []
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except OSError as exc:
            findings.append(
                Finding(
                    path=str(path),
                    line=1,
                    col=0,
                    rule=PARSE_ERROR,
                    message=f"file could not be read: {exc}",
                )
            )
            continue
        findings.extend(lint_source(source, path, rules=rules))
    return sorted(findings)
