"""Fault-injection plans for the compute and storage layers.

The transport-level fault taxonomy lives in :mod:`repro.twitter.faults`;
this package carries its siblings one and two layers down:
:class:`repro.faults.compute.WorkerFaultPlan` injects worker crashes,
hangs, exception storms, and slow tasks into the supervised process pool
(:mod:`repro.supervise`), and
:class:`repro.faults.storage.StorageFaultPlan` injects EIO/ENOSPC, torn
writes, crash windows, fsync lies, and bitrot into the durable storage
layer (:mod:`repro.storage`), so chaos-equivalence can be asserted all
the way down to the disk.
"""

from repro.faults.compute import (
    InjectedComputeError,
    WorkerFault,
    WorkerFaultPlan,
)
from repro.faults.storage import (
    InjectedStorageFaults,
    SimulatedCrash,
    StorageFaultPlan,
    flip_bits,
)

__all__ = [
    "InjectedComputeError",
    "InjectedStorageFaults",
    "SimulatedCrash",
    "StorageFaultPlan",
    "WorkerFault",
    "WorkerFaultPlan",
    "flip_bits",
]
