"""Fault-injection plans for the compute layer.

The transport-level fault taxonomy lives in :mod:`repro.twitter.faults`;
this package carries its compute-layer sibling:
:class:`repro.faults.compute.WorkerFaultPlan` injects worker crashes,
hangs, exception storms, and slow tasks into the supervised process pool
(:mod:`repro.supervise`), so chaos-equivalence can be asserted one layer
down from the stream.
"""

from repro.faults.compute import (
    InjectedComputeError,
    WorkerFault,
    WorkerFaultPlan,
)

__all__ = ["InjectedComputeError", "WorkerFault", "WorkerFaultPlan"]
