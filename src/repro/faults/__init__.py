"""Fault-injection plans for the compute, storage, and serving layers.

The transport-level fault taxonomy lives in :mod:`repro.twitter.faults`;
this package carries its siblings across the other layers:
:class:`repro.faults.compute.WorkerFaultPlan` injects worker crashes,
hangs, exception storms, and slow tasks into the supervised process pool
(:mod:`repro.supervise`);
:class:`repro.faults.storage.StorageFaultPlan` injects EIO/ENOSPC, torn
writes, crash windows, fsync lies, and bitrot into the durable storage
layer (:mod:`repro.storage`); and
:class:`repro.faults.load.LoadFaultPlan` injects client storms, slow and
failing artifact loads, and poison queries into the overload-robust
query service (:mod:`repro.serve`) — so chaos-equivalence can be
asserted from the request stream all the way down to the disk.
"""

from repro.faults.compute import (
    InjectedComputeError,
    WorkerFault,
    WorkerFaultPlan,
)
from repro.faults.load import (
    InjectedQueryError,
    LoadFault,
    LoadFaultPlan,
    StormClone,
)
from repro.faults.storage import (
    InjectedStorageFaults,
    SimulatedCrash,
    StorageFaultPlan,
    flip_bits,
)

__all__ = [
    "InjectedComputeError",
    "InjectedQueryError",
    "InjectedStorageFaults",
    "LoadFault",
    "LoadFaultPlan",
    "SimulatedCrash",
    "StorageFaultPlan",
    "StormClone",
    "WorkerFault",
    "WorkerFaultPlan",
    "flip_bits",
]
