"""Deterministic worker-fault injection for the supervised process pool.

Mirror of :class:`repro.twitter.faults.FaultPlan`, one layer down: where
that plan makes the *stream* able to fail the way the real Streaming API
does, this plan makes the *compute pool* able to fail the way production
clusters do — a worker segfaults or is OOM-killed mid-shard, a worker
wedges on a lock and never returns, a flaky dependency throws for a
while, a task lands on an overloaded machine and merely runs slow.

Injected failure taxonomy (applied inside the worker, per task attempt):

* **Crash** — the worker calls ``os._exit`` before touching the task,
  modeling a segfault/OOM kill; the supervisor sees a dead process with
  no result and a non-zero exit code.
* **Hang** — the worker sleeps far past the supervisor's per-task
  deadline; only deadline detection can recover it.
* **Exception storm** — the task raises
  :class:`InjectedComputeError`; the traceback travels back to the
  supervisor like any real task bug.
* **Slow task** — the task is delayed but completes; recovery must not
  mistake slowness for death when the delay fits the deadline.

Every decision is a pure function of ``(seed, task_index, attempt)`` —
never of which worker runs the task or when — so a fault schedule
replays exactly, on any machine, for any worker count.  By default a
task is only faulted on its first ``max_faulted_attempts`` attempts, so
bounded retries always converge; ``poison_tasks`` marks tasks that crash
on *every* attempt, exercising the quarantine path.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.errors import ConfigError

_RATE_FIELDS = ("crash_rate", "hang_rate", "exception_rate", "slow_rate")


class InjectedComputeError(RuntimeError):
    """The exception an injected exception-storm fault raises in a worker.

    Deliberately *not* a :class:`repro.errors.ReproError`: an injected
    worker bug models arbitrary third-party failure, and nothing in the
    supervisor may special-case it.
    """


class WorkerFault(enum.Enum):
    """One injected compute-fault class."""

    CRASH = "crash"
    HANG = "hang"
    EXCEPTION = "exception"
    SLOW = "slow"


@dataclass(frozen=True, slots=True)
class WorkerFaultPlan:
    """Per-class worker-fault rates and shapes for one chaos run.

    Rates are per-(task, attempt) probabilities, drawn in a fixed class
    order (crash, hang, exception, slow) from an RNG seeded by
    ``(seed, task_index, attempt)``; at most one fault fires per attempt.

    Attributes:
        seed: base seed; the whole fault schedule derives from it.
        crash_rate: probability the worker dies (``os._exit``) before
            running the task.
        hang_rate: probability the worker wedges for ``hang_seconds``.
        exception_rate: probability the task raises
            :class:`InjectedComputeError`.
        slow_rate: probability the task is delayed by ``slow_seconds``
            but still completes.
        crash_exit_code: exit code of injected crashes (distinguishable
            from clean exits in dead-letter records).
        hang_seconds: how long a hung worker sleeps; must exceed the
            supervisor's task deadline for the hang to be a hang.
        slow_seconds: delay of a slow task; must fit inside the deadline
            or slowness becomes indistinguishable from death.
        max_faulted_attempts: attempts (per task) that may draw a fault;
            later attempts run clean, so retries are guaranteed to
            converge for non-poison tasks.
        poison_tasks: task indices that crash on *every* attempt — the
            quarantine path's test vector.
    """

    seed: int = 0
    crash_rate: float = 0.0
    hang_rate: float = 0.0
    exception_rate: float = 0.0
    slow_rate: float = 0.0
    crash_exit_code: int = 23
    hang_seconds: float = 30.0
    slow_seconds: float = 0.01
    max_faulted_attempts: int = 1
    poison_tasks: tuple[int, ...] = ()

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if not 1 <= self.crash_exit_code <= 255:
            raise ConfigError(
                f"crash_exit_code must be in [1, 255], got {self.crash_exit_code}"
            )
        if self.hang_seconds <= 0.0:
            raise ConfigError(
                f"hang_seconds must be > 0, got {self.hang_seconds}"
            )
        if self.slow_seconds < 0.0:
            raise ConfigError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )
        if self.max_faulted_attempts < 0:
            raise ConfigError(
                "max_faulted_attempts must be >= 0, got "
                f"{self.max_faulted_attempts}"
            )
        for index in self.poison_tasks:
            if index < 0:
                raise ConfigError(
                    f"poison task indices must be >= 0, got {index}"
                )

    @property
    def any_faults(self) -> bool:
        return bool(self.poison_tasks) or any(
            getattr(self, name) > 0.0 for name in _RATE_FIELDS
        )

    @classmethod
    def none(cls, seed: int = 0) -> "WorkerFaultPlan":
        """A perfectly reliable compute plan (no faults)."""
        return cls(seed=seed)

    @classmethod
    def chaos(cls, seed: int = 0) -> "WorkerFaultPlan":
        """Crashes, exception storms, and slow tasks at moderate rates —
        the default for ``--worker-chaos``.

        Hangs stay off by default because recovering one costs a full
        task deadline of wall time; enable ``hang_rate`` explicitly when
        a deadline is configured.
        """
        return cls(
            seed=seed,
            crash_rate=0.25,
            exception_rate=0.2,
            slow_rate=0.2,
        )

    def fault_for(self, task_index: int, attempt: int) -> WorkerFault | None:
        """The fault (if any) injected into this (task, attempt).

        Pure and deterministic: the same triple always yields the same
        fault, regardless of worker identity, scheduling, or host.
        """
        if task_index < 0:
            raise ConfigError(f"task_index must be >= 0, got {task_index}")
        if attempt < 0:
            raise ConfigError(f"attempt must be >= 0, got {attempt}")
        if task_index in self.poison_tasks:
            return WorkerFault.CRASH
        if attempt >= self.max_faulted_attempts:
            return None
        rng = random.Random(f"{self.seed}:{task_index}:{attempt}")
        for rate_name, fault in (
            ("crash_rate", WorkerFault.CRASH),
            ("hang_rate", WorkerFault.HANG),
            ("exception_rate", WorkerFault.EXCEPTION),
            ("slow_rate", WorkerFault.SLOW),
        ):
            rate = getattr(self, rate_name)
            if rate and rng.random() < rate:
                return fault
        return None

    def describe(self) -> str:
        active = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        )
        if self.poison_tasks:
            poison = f"poison_tasks={self.poison_tasks}"
            active = f"{active}, {poison}" if active else poison
        return f"WorkerFaultPlan(seed={self.seed}, {active or 'no faults'})"
