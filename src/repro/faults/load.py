"""Deterministic load-fault injection for the overload-robust query service.

Mirror of :class:`repro.faults.compute.WorkerFaultPlan` and
:class:`repro.faults.storage.StorageFaultPlan`, one layer up: where those
plans make the *compute pool* and the *disk* fail the way production
infrastructure does, this plan makes the *request stream and the
dependency behind it* fail the way production traffic does — a client
retry loop turns one query into a storm, arrivals burst with a heavy
tail instead of trickling uniformly, the artifact store suddenly takes
ten times longer to answer, a malformed query crashes its handler.

Injected failure taxonomy (applied by :class:`repro.serve.service.QueryService`):

* **Client storm** — a base request spawns a burst of clones arriving
  just after it, modeling a misbehaving client (or a thundering herd)
  hammering the same query.  Burst sizes are drawn from a heavy-tailed
  (Pareto) distribution, so most storms are small and a few are huge —
  the arrival pattern that actually melts services.
* **Slow artifact** — an artifact load takes ``slow_load_seconds``
  longer than budgeted, exercising the deadline path.
* **Failed artifact** — an artifact load raises, exercising the circuit
  breaker around the loading seam.
* **Poison query** — a storm clone is marked poison and its handler
  raises :class:`InjectedQueryError`; the service must dead-letter it,
  never crash or silently drop it.

Every decision is a pure function of ``(seed, request index)`` or
``(seed, artifact, load index)`` — never of wall clock or scheduling —
so a load-chaos schedule replays exactly.  Artifact faults only fire on
the first ``max_faulted_loads`` loads of each artifact, so a breaker's
probe schedule always finds a working dependency eventually and the
simulation is guaranteed to drain.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass

from repro.errors import ConfigError

_RATE_FIELDS = ("storm_rate", "poison_rate", "slow_load_rate", "load_error_rate")


class InjectedQueryError(RuntimeError):
    """The exception a poison query raises inside its handler.

    Deliberately *not* a :class:`repro.errors.ReproError`: a poison query
    models an arbitrary handler bug, and nothing in the service may
    special-case it — it must travel the generic dead-letter path.
    """


class LoadFault(enum.Enum):
    """One injected artifact-load fault class."""

    SLOW = "slow"
    ERROR = "error"


@dataclass(frozen=True, slots=True)
class StormClone:
    """One storm-injected request, scheduled relative to its trigger.

    Attributes:
        offset: arrival delay after the triggering request, in simulated
            seconds.
        poison: whether the clone is a poison query (its handler raises).
    """

    offset: float
    poison: bool


@dataclass(frozen=True, slots=True)
class LoadFaultPlan:
    """Per-class load-fault rates and shapes for one chaos run.

    Attributes:
        seed: base seed; the whole fault schedule derives from it.
        storm_rate: probability a base request triggers a client storm.
        storm_burst_cap: upper bound on clones per storm (the Pareto draw
            is truncated here).
        storm_spread: simulated seconds over which a storm's clones
            arrive after their trigger.
        poison_rate: probability a storm clone is a poison query.
        slow_load_rate: per-artifact-load probability of injected
            latency.
        slow_load_seconds: extra simulated seconds a slow load takes.
        load_error_rate: per-artifact-load probability the load fails
            (the breaker's trigger).
        max_faulted_loads: loads (per artifact) that may draw a fault;
            later loads run clean, so breaker probes are guaranteed to
            converge.
    """

    seed: int = 0
    storm_rate: float = 0.0
    storm_burst_cap: int = 16
    storm_spread: float = 0.2
    poison_rate: float = 0.0
    slow_load_rate: float = 0.0
    slow_load_seconds: float = 1.0
    load_error_rate: float = 0.0
    max_faulted_loads: int = 4

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.storm_burst_cap < 1:
            raise ConfigError(
                f"storm_burst_cap must be >= 1, got {self.storm_burst_cap}"
            )
        if self.storm_spread <= 0.0:
            raise ConfigError(
                f"storm_spread must be > 0, got {self.storm_spread}"
            )
        if self.slow_load_seconds < 0.0:
            raise ConfigError(
                "slow_load_seconds must be >= 0, got "
                f"{self.slow_load_seconds}"
            )
        if self.max_faulted_loads < 0:
            raise ConfigError(
                f"max_faulted_loads must be >= 0, got {self.max_faulted_loads}"
            )

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def none(cls, seed: int = 0) -> "LoadFaultPlan":
        """A perfectly polite load plan (no faults)."""
        return cls(seed=seed)

    @classmethod
    def chaos(cls, seed: int = 0) -> "LoadFaultPlan":
        """Storms, slow and failing artifact loads, and poison queries at
        moderate rates — the default for ``--load-chaos``."""
        return cls(
            seed=seed,
            storm_rate=0.15,
            poison_rate=0.1,
            slow_load_rate=0.25,
            load_error_rate=0.3,
        )

    def storm_for(self, request_index: int) -> tuple[StormClone, ...]:
        """The storm (possibly empty) injected after one base request.

        Pure and deterministic: the same ``(seed, request_index)`` always
        yields the same clones, offsets, and poison flags.
        """
        if request_index < 0:
            raise ConfigError(
                f"request_index must be >= 0, got {request_index}"
            )
        if self.storm_rate <= 0.0:
            return ()
        rng = random.Random(f"{self.seed}:storm:{request_index}")
        if rng.random() >= self.storm_rate:
            return ()
        # Heavy-tailed burst size: most storms are a handful of clones,
        # the occasional one saturates the cap.
        size = min(self.storm_burst_cap, int(rng.paretovariate(1.2)))
        clones = []
        for __ in range(size):
            clones.append(
                StormClone(
                    offset=rng.random() * self.storm_spread,
                    poison=(
                        self.poison_rate > 0.0
                        and rng.random() < self.poison_rate
                    ),
                )
            )
        return tuple(clones)

    def fault_for_load(
        self, artifact: str, load_index: int
    ) -> LoadFault | None:
        """The fault (if any) injected into one artifact-load attempt.

        ``load_index`` counts loads of this artifact (0-based); attempts
        past ``max_faulted_loads`` always run clean so the breaker's
        probes converge.
        """
        if load_index < 0:
            raise ConfigError(f"load_index must be >= 0, got {load_index}")
        if load_index >= self.max_faulted_loads:
            return None
        rng = random.Random(f"{self.seed}:load:{artifact}:{load_index}")
        if self.load_error_rate and rng.random() < self.load_error_rate:
            return LoadFault.ERROR
        if self.slow_load_rate and rng.random() < self.slow_load_rate:
            return LoadFault.SLOW
        return None

    def describe(self) -> str:
        active = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        )
        return f"LoadFaultPlan(seed={self.seed}, {active or 'no faults'})"
