"""Deterministic disk-fault injection for the durable storage layer.

Mirror of :class:`repro.faults.compute.WorkerFaultPlan`, one layer down
again: where that plan makes the *compute pool* fail the way production
clusters do, this plan makes the *disk* fail the way real disks do — a
write returns EIO once and then succeeds, the volume fills mid-replace,
the machine loses power half-way through a ``write`` syscall, the drive
acknowledges an fsync it never performed, a block quietly rots months
after the write "succeeded".

Injected failure taxonomy (applied inside :class:`repro.storage.fs.FaultyFS`,
per mutating syscall):

* **Transient EIO** — a write/fsync/replace raises ``OSError(EIO)`` and
  leaves no bytes behind; bounded per path so retry loops converge.
* **ENOSPC** — a write raises ``OSError(ENOSPC)``; never retried, the
  caller must degrade explicitly.
* **Torn write** — only a seeded prefix of one write reaches the file,
  then the machine dies.
* **Crash window** — the process dies at an exact syscall index; only
  fsynced bytes and fsync-dir'ed renames survive, everything else is
  rolled back to its durable state.
* **Fsync lie** — fsync returns success but durability does not advance,
  so a later crash loses writes the caller believed safe.
* **Bitrot** — :func:`flip_bits` flips seeded bits in an at-rest file,
  modeling silent corruption that only a scrub can detect.

Every decision is a pure function of ``(seed, operation, syscall index)``
— never of wall clock or process identity — so a fault schedule replays
exactly, on any machine, for any worker count.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.errors import ConfigError
from repro.health import rows_to_lines

_RATE_FIELDS = ("eio_rate", "fsync_lie_rate")


class SimulatedCrash(BaseException):
    """Power loss injected by :class:`repro.storage.fs.FaultyFS`.

    Deliberately a :class:`BaseException`, not an :class:`Exception`: a
    machine losing power cannot be caught and absorbed by application
    error handling, so no ``except Exception`` recovery path in the code
    under test may swallow it either.
    """


@dataclass(slots=True)
class InjectedStorageFaults:
    """Counters for what a :class:`~repro.storage.fs.FaultyFS` injected.

    Attributes:
        eio: transient I/O errors raised.
        enospc: out-of-space errors raised.
        torn_writes: writes that persisted only a prefix before a crash.
        fsync_lies: fsyncs acknowledged without advancing durability.
        crashes: simulated power losses.
    """

    eio: int = 0
    enospc: int = 0
    torn_writes: int = 0
    fsync_lies: int = 0
    crashes: int = 0

    def as_rows(self) -> list[tuple[str, str]]:
        return [
            ("transient EIO injected", str(self.eio)),
            ("ENOSPC injected", str(self.enospc)),
            ("torn writes injected", str(self.torn_writes)),
            ("fsync lies injected", str(self.fsync_lies)),
            ("crashes injected", str(self.crashes)),
        ]

    def summary_lines(self) -> list[str]:
        return rows_to_lines(self.as_rows())


@dataclass(frozen=True, slots=True)
class StorageFaultPlan:
    """Per-class disk-fault rates and trigger points for one chaos run.

    Rate faults (EIO, fsync lies) are drawn from an RNG seeded by
    ``(seed, operation, syscall index)``; point faults (ENOSPC, torn
    write, crash) fire at an exact syscall index, chosen by the caller
    from a recorded syscall trace.

    Attributes:
        seed: base seed; the whole fault schedule derives from it.
        eio_rate: per-syscall probability of a transient ``EIO``.
        max_eio_per_path: EIO budget per file path; keeps any retry loop
            with ``retries >= max_eio_per_path`` convergent.
        fsync_lie_rate: per-fsync probability the sync is acknowledged
            but durability does not advance.
        enospc_at: syscall index at which a write raises ``ENOSPC``
            (None = never).
        torn_write_at: syscall index whose write persists only a seeded
            prefix before the machine dies (None = never).
        crash_at: syscall index at which the machine loses power
            (None = never); the syscall itself never executes.
        bitrot_flips: bit flips :func:`flip_bits` applies per file when a
            chaos harness corrupts at-rest data (0 = none).
    """

    seed: int = 0
    eio_rate: float = 0.0
    max_eio_per_path: int = 2
    fsync_lie_rate: float = 0.0
    enospc_at: int | None = None
    torn_write_at: int | None = None
    crash_at: int | None = None
    bitrot_flips: int = 0

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.max_eio_per_path < 0:
            raise ConfigError(
                f"max_eio_per_path must be >= 0, got {self.max_eio_per_path}"
            )
        for name in ("enospc_at", "torn_write_at", "crash_at"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")
        if self.bitrot_flips < 0:
            raise ConfigError(
                f"bitrot_flips must be >= 0, got {self.bitrot_flips}"
            )

    @property
    def any_faults(self) -> bool:
        return (
            any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)
            or self.enospc_at is not None
            or self.torn_write_at is not None
            or self.crash_at is not None
            or self.bitrot_flips > 0
        )

    @classmethod
    def none(cls, seed: int = 0) -> "StorageFaultPlan":
        """A perfectly reliable disk (no faults) — still counts syscalls,
        which is how crash-matrix tests enumerate kill points."""
        return cls(seed=seed)

    @classmethod
    def chaos(cls, seed: int = 0) -> "StorageFaultPlan":
        """Transient EIO and fsync lies at moderate rates — the default
        for ``--disk-chaos``.

        Point faults (ENOSPC, torn writes, crash windows) stay off: they
        need a syscall trace to aim at, which belongs to the targeted
        property tests, not a background chaos mode.  The two rate
        faults must be *invisible* in the output: EIO is absorbed by the
        atomic writer's bounded retry, and an fsync lie only matters if
        a crash follows it.
        """
        return cls(seed=seed, eio_rate=0.15, fsync_lie_rate=0.1)

    def transient_eio(self, operation: str, index: int) -> bool:
        """Whether syscall ``index`` of kind ``operation`` draws an EIO.

        Pure and deterministic: the same (seed, operation, index) triple
        always yields the same answer.
        """
        if index < 0:
            raise ConfigError(f"index must be >= 0, got {index}")
        if self.eio_rate <= 0.0:
            return False
        rng = random.Random(f"{self.seed}:eio:{operation}:{index}")
        return rng.random() < self.eio_rate

    def fsync_lie(self, index: int) -> bool:
        """Whether the fsync at syscall ``index`` lies about durability."""
        if index < 0:
            raise ConfigError(f"index must be >= 0, got {index}")
        if self.fsync_lie_rate <= 0.0:
            return False
        rng = random.Random(f"{self.seed}:lie:{index}")
        return rng.random() < self.fsync_lie_rate

    def torn_length(self, index: int, length: int) -> int:
        """How much of a torn write survives: a seeded strict prefix."""
        if length <= 0:
            return 0
        rng = random.Random(f"{self.seed}:torn:{index}")
        return rng.randrange(length)

    def describe(self) -> str:
        parts = [
            f"{name}={getattr(self, name)}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        ]
        parts.extend(
            f"{name}={getattr(self, name)}"
            for name in ("enospc_at", "torn_write_at", "crash_at")
            if getattr(self, name) is not None
        )
        if self.bitrot_flips:
            parts.append(f"bitrot_flips={self.bitrot_flips}")
        active = ", ".join(parts)
        return f"StorageFaultPlan(seed={self.seed}, {active or 'no faults'})"


def flip_bits(path: str, seed: int, flips: int) -> tuple[int, ...]:
    """Flip ``flips`` seeded bits in an at-rest file, modeling bitrot.

    Newline bytes are never created or destroyed, so JSONL record framing
    survives and corruption lands *inside* records — the case a CRC
    manifest must catch and a line count cannot.  Returns the affected
    byte offsets (sorted); fewer than ``flips`` when the file is too
    small to host that many distinct non-framing flips.
    """
    if flips < 0:
        raise ConfigError(f"flips must be >= 0, got {flips}")
    rng = random.Random(f"{seed}:bitrot")
    # The injector must corrupt bytes in place, below the durable layer
    # it exists to test.
    with open(path, "rb+") as handle:  # reprolint: disable=RPL008
        data = bytearray(handle.read())
        offsets: set[int] = set()
        attempts = 0
        while data and len(offsets) < flips and attempts < 100 * flips:
            attempts += 1
            offset = rng.randrange(len(data))
            flipped = data[offset] ^ (1 << rng.randrange(8))
            if offset in offsets or data[offset] == 0x0A or flipped == 0x0A:
                continue
            data[offset] = flipped
            offsets.add(offset)
        handle.seek(0)
        handle.write(data)
    return tuple(sorted(offsets))
