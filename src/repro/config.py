"""Frozen configuration objects for collection and analysis.

All tunables are plain frozen dataclasses so experiment definitions are
hashable, comparable, and printable in provenance logs.  Validation happens
eagerly in ``__post_init__`` — a bad configuration fails at construction,
not deep inside a pipeline run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.nlp.keywords import CONTEXT_TERMS, SUBJECT_TERMS


@dataclass(frozen=True, slots=True)
class CollectionConfig:
    """Configuration for the three-step collection pipeline (§III-A).

    Attributes:
        context_terms: organ-donation Context vocabulary (Fig. 1, rows).
        subject_terms: organ Subject vocabulary (Fig. 1, columns).
        prefer_geotag: resolve location from the tweet geo-tag before the
            profile string, as the paper does (GPS is more precise but
            ~1.4% coverage).
        min_confidence: geocoder confidence below which a location
            resolution is treated as unresolved.
    """

    context_terms: tuple[str, ...] = CONTEXT_TERMS
    subject_terms: tuple[str, ...] = SUBJECT_TERMS
    prefer_geotag: bool = True
    min_confidence: float = 0.5

    def __post_init__(self) -> None:
        if not self.context_terms:
            raise ConfigError("context_terms must not be empty")
        if not self.subject_terms:
            raise ConfigError("subject_terms must not be empty")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )


@dataclass(frozen=True, slots=True)
class RelativeRiskConfig:
    """Configuration for highlighted-organ detection (Eq. 4, §IV-B1).

    Attributes:
        alpha: significance level; the paper uses 0.05 (z = 1.96).
        min_users: states with fewer located users than this are reported
            as "insufficient data" rather than tested.
    """

    alpha: float = 0.05
    min_users: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.min_users < 1:
            raise ConfigError(f"min_users must be >= 1, got {self.min_users}")


@dataclass(frozen=True, slots=True)
class UserClusteringConfig:
    """Configuration for the K-Means user characterization (§IV-C).

    Attributes:
        k: number of clusters; the paper selects 12.
        n_init: k-means++ restarts; the best inertia wins.
        max_iter: Lloyd iteration cap per restart.
        tol: relative center-shift convergence tolerance.
        seed: RNG seed for reproducible clustering.
    """

    k: int = 12
    n_init: int = 8
    max_iter: int = 200
    tol: float = 1e-6
    seed: int = 0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.n_init < 1:
            raise ConfigError(f"n_init must be >= 1, got {self.n_init}")
        if self.max_iter < 1:
            raise ConfigError(f"max_iter must be >= 1, got {self.max_iter}")


@dataclass(frozen=True, slots=True)
class StateClusteringConfig:
    """Configuration for the hierarchical state clustering (§IV-B2).

    Attributes:
        linkage: agglomerative linkage rule.
        affinity: distance between state attention distributions; the paper
            uses Bhattacharyya distance (Kailath 1967).
    """

    linkage: str = "average"
    affinity: str = "bhattacharyya"

    _LINKAGES = ("single", "complete", "average")
    _AFFINITIES = ("bhattacharyya", "hellinger", "euclidean")

    def __post_init__(self) -> None:
        if self.linkage not in self._LINKAGES:
            raise ConfigError(
                f"linkage must be one of {self._LINKAGES}, got {self.linkage!r}"
            )
        if self.affinity not in self._AFFINITIES:
            raise ConfigError(
                f"affinity must be one of {self._AFFINITIES}, got {self.affinity!r}"
            )


@dataclass(frozen=True, slots=True)
class AnalysisConfig:
    """Top-level analysis configuration bundling all §IV experiments."""

    relative_risk: RelativeRiskConfig = field(default_factory=RelativeRiskConfig)
    user_clustering: UserClusteringConfig = field(default_factory=UserClusteringConfig)
    state_clustering: StateClusteringConfig = field(
        default_factory=StateClusteringConfig
    )
