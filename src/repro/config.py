"""Frozen configuration objects for collection and analysis.

All tunables are plain frozen dataclasses so experiment definitions are
hashable, comparable, and printable in provenance logs.  Validation happens
eagerly in ``__post_init__`` — a bad configuration fails at construction,
not deep inside a pipeline run.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.nlp.keywords import CONTEXT_TERMS, SUBJECT_TERMS


@dataclass(frozen=True, slots=True)
class CollectionConfig:
    """Configuration for the three-step collection pipeline (§III-A).

    Attributes:
        context_terms: organ-donation Context vocabulary (Fig. 1, rows).
        subject_terms: organ Subject vocabulary (Fig. 1, columns).
        prefer_geotag: resolve location from the tweet geo-tag before the
            profile string, as the paper does (GPS is more precise but
            ~1.4% coverage).
        min_confidence: geocoder confidence below which a location
            resolution is treated as unresolved.
    """

    context_terms: tuple[str, ...] = CONTEXT_TERMS
    subject_terms: tuple[str, ...] = SUBJECT_TERMS
    prefer_geotag: bool = True
    min_confidence: float = 0.5

    def __post_init__(self) -> None:
        if not self.context_terms:
            raise ConfigError("context_terms must not be empty")
        if not self.subject_terms:
            raise ConfigError("subject_terms must not be empty")
        if not 0.0 <= self.min_confidence <= 1.0:
            raise ConfigError(
                f"min_confidence must be in [0, 1], got {self.min_confidence}"
            )


@dataclass(frozen=True, slots=True)
class ResiliencePolicy:
    """Reconnect, dedup, and reorder policy for resilient collection.

    The backoff shape follows Twitter's documented Streaming API
    reconnect guidance: *linear* backoff for network-level errors
    (starting at 250 ms, capped at 16 s), *exponential* backoff for HTTP
    errors (starting at 5 s, doubling, capped at 320 s), and exponential
    backoff starting at a full minute for HTTP 420 rate limiting.  A
    deterministic seeded jitter decorrelates reconnect storms without
    breaking reproducibility.

    Attributes:
        network_backoff_step: linear increment per consecutive network
            failure, in (simulated) seconds.
        network_backoff_cap: ceiling for network backoff.
        http_backoff_initial: first exponential delay for HTTP errors.
        http_backoff_cap: ceiling for HTTP-error backoff.
        rate_limit_backoff_initial: first delay after an HTTP 420.
        rate_limit_backoff_cap: ceiling for rate-limit backoff.
        backoff_factor: exponential growth factor for HTTP/420 backoff.
        jitter: max extra delay as a fraction of the base delay, drawn
            deterministically from ``seed``; 0 disables jitter.
        stall_timeout_ticks: consecutive keep-alive frames after which
            the connection is declared stalled and torn down (the analog
            of Twitter's 90-second stall timeout).
        dedup_window: recent tweet ids remembered for suppressing
            backfill duplicates; must cover the deepest backfill overlap.
        reorder_window: size of the id-ordered reordering buffer; restores
            exact stream order whenever out-of-order displacement is
            bounded by it.
        seed: RNG seed for the jitter schedule.
    """

    network_backoff_step: float = 0.25
    network_backoff_cap: float = 16.0
    http_backoff_initial: float = 5.0
    http_backoff_cap: float = 320.0
    rate_limit_backoff_initial: float = 60.0
    rate_limit_backoff_cap: float = 960.0
    backoff_factor: float = 2.0
    jitter: float = 0.1
    stall_timeout_ticks: int = 6
    dedup_window: int = 4096
    reorder_window: int = 64
    seed: int = 0

    def __post_init__(self) -> None:
        positive = (
            "network_backoff_step",
            "network_backoff_cap",
            "http_backoff_initial",
            "http_backoff_cap",
            "rate_limit_backoff_initial",
            "rate_limit_backoff_cap",
        )
        for name in positive:
            if getattr(self, name) <= 0.0:
                raise ConfigError(
                    f"{name} must be > 0, got {getattr(self, name)}"
                )
        if self.backoff_factor < 1.0:
            raise ConfigError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.stall_timeout_ticks < 1:
            raise ConfigError(
                "stall_timeout_ticks must be >= 1, got "
                f"{self.stall_timeout_ticks}"
            )
        if self.dedup_window < 1:
            raise ConfigError(
                f"dedup_window must be >= 1, got {self.dedup_window}"
            )
        if self.reorder_window < 1:
            raise ConfigError(
                f"reorder_window must be >= 1, got {self.reorder_window}"
            )


@dataclass(frozen=True, slots=True)
class RelativeRiskConfig:
    """Configuration for highlighted-organ detection (Eq. 4, §IV-B1).

    Attributes:
        alpha: significance level; the paper uses 0.05 (z = 1.96).
        min_users: states with fewer located users than this are reported
            as "insufficient data" rather than tested.
    """

    alpha: float = 0.05
    min_users: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ConfigError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.min_users < 1:
            raise ConfigError(f"min_users must be >= 1, got {self.min_users}")


@dataclass(frozen=True, slots=True)
class UserClusteringConfig:
    """Configuration for the K-Means user characterization (§IV-C).

    Attributes:
        k: number of clusters; the paper selects 12.
        n_init: k-means++ restarts; the best inertia wins.
        max_iter: Lloyd iteration cap per restart.
        tol: relative center-shift convergence tolerance.
        seed: RNG seed for reproducible clustering.
        workers: processes to fan K-Means restarts (and model-selection
            sweeps) across; results are identical for any value.
        silhouette_memory_mb: memory budget for chunked silhouette
            evaluation — bounds the distance-block working set instead of
            materializing the full m×m matrix.
    """

    k: int = 12
    n_init: int = 8
    max_iter: int = 200
    tol: float = 1e-6
    seed: int = 0
    workers: int = 1
    silhouette_memory_mb: float = 256.0

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigError(f"k must be >= 1, got {self.k}")
        if self.n_init < 1:
            raise ConfigError(f"n_init must be >= 1, got {self.n_init}")
        if self.max_iter < 1:
            raise ConfigError(f"max_iter must be >= 1, got {self.max_iter}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.silhouette_memory_mb <= 0:
            raise ConfigError(
                "silhouette_memory_mb must be > 0, got "
                f"{self.silhouette_memory_mb}"
            )


@dataclass(frozen=True, slots=True)
class StateClusteringConfig:
    """Configuration for the hierarchical state clustering (§IV-B2).

    Attributes:
        linkage: agglomerative linkage rule.
        affinity: distance between state attention distributions; the paper
            uses Bhattacharyya distance (Kailath 1967).
    """

    linkage: str = "average"
    affinity: str = "bhattacharyya"

    _LINKAGES = ("single", "complete", "average")
    _AFFINITIES = ("bhattacharyya", "hellinger", "euclidean")

    def __post_init__(self) -> None:
        if self.linkage not in self._LINKAGES:
            raise ConfigError(
                f"linkage must be one of {self._LINKAGES}, got {self.linkage!r}"
            )
        if self.affinity not in self._AFFINITIES:
            raise ConfigError(
                f"affinity must be one of {self._AFFINITIES}, got {self.affinity!r}"
            )


@dataclass(frozen=True, slots=True)
class AnalysisConfig:
    """Top-level analysis configuration bundling all §IV experiments."""

    relative_risk: RelativeRiskConfig = field(default_factory=RelativeRiskConfig)
    user_clustering: UserClusteringConfig = field(default_factory=UserClusteringConfig)
    state_clustering: StateClusteringConfig = field(
        default_factory=StateClusteringConfig
    )
