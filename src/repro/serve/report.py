"""Overload accounting: the serving layer's health report.

Third implementor of the :class:`repro.health.HealthReport` protocol,
after the transport layer's ``ReliabilityReport`` and the compute pool's
``RunHealth``.  Where those count faults survived, this one proves the
**no-silent-loss invariant**: every request submitted to the service is
accounted for exactly once as completed, rejected, deadline-expired, or
dead-lettered — :meth:`OverloadReport.accounted` is the machine-checkable
form, asserted by the property suite for every chaos seed.

The report also records *how* the service bent instead of breaking:
degraded (browned-out) answers, the maximum brownout level reached, and
every circuit-breaker transition.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.health import rows_to_lines
from repro.serve.breaker import BreakerTransition


@dataclass(slots=True)
class OverloadReport:
    """Counters for one ``repro serve`` run.

    Attributes:
        submitted: requests offered to the service (file requests plus
            storm clones plus malformed lines).
        admitted: requests that passed admission control.
        completed: requests answered with a payload (fresh or coarse).
        shed: requests rejected at admission (``shed_queue_full`` +
            ``shed_rate_limited``).
        expired: requests that ran out of deadline budget.
        dead_lettered: poison, malformed, or handler-failing requests.
        degraded: completed requests answered from coarse summaries.
        max_brownout_level: highest brownout level the ladder reached.
        breaker_opens: times the artifact breaker tripped open.
        breaker_transitions: full breaker state-change history.
        artifact_loads: paid artifact-store loads during the run — with
            the generation cache healthy this stays far below the
            request count (one load per artifact, amortized).
    """

    submitted: int = 0
    admitted: int = 0
    completed: int = 0
    shed: int = 0
    shed_queue_full: int = 0
    shed_rate_limited: int = 0
    expired: int = 0
    dead_lettered: int = 0
    degraded: int = 0
    max_brownout_level: int = 0
    breaker_opens: int = 0
    artifact_loads: int = 0
    breaker_transitions: list[BreakerTransition] = field(default_factory=list)

    @property
    def accounted(self) -> bool:
        """The no-silent-loss invariant: every request counted once."""
        return (
            self.completed + self.shed + self.expired + self.dead_lettered
            == self.submitted
        )

    def as_rows(self) -> list[tuple[str, str]]:
        """(label, value) rows for the shared health-report surface."""
        return [
            ("requests submitted", str(self.submitted)),
            ("requests admitted", str(self.admitted)),
            ("requests completed", str(self.completed)),
            (
                "requests shed",
                f"{self.shed} (queue_full={self.shed_queue_full}, "
                f"rate_limited={self.shed_rate_limited})",
            ),
            ("requests expired", str(self.expired)),
            ("requests dead-lettered", str(self.dead_lettered)),
            ("degraded answers", str(self.degraded)),
            ("max brownout level", str(self.max_brownout_level)),
            ("breaker opens", str(self.breaker_opens)),
            ("artifact loads", str(self.artifact_loads)),
            ("accounting", "exact" if self.accounted else "BROKEN"),
        ]

    def summary_lines(self) -> list[str]:
        return rows_to_lines(self.as_rows())

    def to_dict(self) -> dict[str, object]:
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "completed": self.completed,
            "shed": self.shed,
            "shed_queue_full": self.shed_queue_full,
            "shed_rate_limited": self.shed_rate_limited,
            "expired": self.expired,
            "dead_lettered": self.dead_lettered,
            "degraded": self.degraded,
            "max_brownout_level": self.max_brownout_level,
            "breaker_opens": self.breaker_opens,
            "artifact_loads": self.artifact_loads,
            "breaker_transitions": [
                transition.to_dict() for transition in self.breaker_transitions
            ],
            "accounted": self.accounted,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "OverloadReport":
        return cls(
            submitted=int(data["submitted"]),
            admitted=int(data["admitted"]),
            completed=int(data["completed"]),
            shed=int(data["shed"]),
            shed_queue_full=int(data["shed_queue_full"]),
            shed_rate_limited=int(data["shed_rate_limited"]),
            expired=int(data["expired"]),
            dead_lettered=int(data["dead_lettered"]),
            degraded=int(data["degraded"]),
            max_brownout_level=int(data["max_brownout_level"]),
            breaker_opens=int(data["breaker_opens"]),
            # Default for reports serialized before the artifact cache.
            artifact_loads=int(data.get("artifact_loads", 0)),
            breaker_transitions=[
                BreakerTransition.from_dict(item)
                for item in data.get("breaker_transitions", [])
            ],
        )
