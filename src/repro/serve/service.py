"""The overload-robust query service over a completed run directory.

``repro serve`` answers analysis queries — state organ signatures,
relative-risk highlights, user-cluster profiles, health probes — from
the artifacts of a finished ``repro run``.  The interesting part is not
the answers but what happens when too many questions arrive at once.
The service stacks four defenses, consulted in a fixed order for every
request:

1. **Admission** (:mod:`repro.serve.admission`) — token bucket plus
   bounded queue; overload is refused explicitly at the front door.
2. **Deadlines** (:mod:`repro.serve.deadline`) — a budget fixed at
   arrival and spent by every stage; expiry yields an ``expired``
   response, never a partial payload.
3. **Circuit breaking** (:mod:`repro.serve.breaker`) — repeated
   artifact-load failures trip to fail-fast, so a dead dependency costs
   microseconds of budget, not all of it.
4. **Brownout** (:mod:`repro.serve.degrade`) — sustained queue pressure
   moves handlers onto precomputed coarse summaries *before* any fresh
   computation is shed.

The whole service runs on a simulated clock
(:class:`repro.obs.clock.ManualClock`): handler stages *advance* the
clock by declared costs instead of sleeping, so a serve run is a
discrete-event simulation — wall-clock-free, seedable, and
byte-identical for a fixed ``(seed, request file)`` pair.  The governing
invariant, proved by ``tests/properties/test_props_serve_chaos.py``:
every submitted request is accounted for exactly once as completed,
rejected, expired, or dead-lettered.
"""

from __future__ import annotations

import enum
import json
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, cast

from repro.core.attention import build_attention_matrix
from repro.core.characterize import RegionCharacterization, characterize_regions
from repro.core.relative_risk import highlighted_organs
from repro.core.user_clusters import UserClustering, cluster_users
from repro.config import UserClusteringConfig
from repro.dataset.corpus import TweetCorpus
from repro.dataset.io import read_jsonl
from repro.errors import ConfigError, ReproError
from repro.faults.load import InjectedQueryError, LoadFault, LoadFaultPlan
from repro.obs.clock import ManualClock
from repro.obs.telemetry import current
from repro.organs import Organ
from repro.serve.admission import AdmissionPolicy, AdmissionQueue, RequestClass
from repro.serve.artifacts import ArtifactCache, corpus_generation
from repro.serve.breaker import BreakerOpenError, BreakerPolicy, CircuitBreaker
from repro.serve.deadline import Deadline, DeadlineExceeded
from repro.serve.degrade import BrownoutLadder, BrownoutPolicy, CoarseSummaries
from repro.serve.report import OverloadReport
from repro.storage.atomic import AtomicWriter
from repro.storage.manifest import Manifest, record_crc, write_manifest

#: Query kinds the stock service answers.
QUERY_KINDS = ("state_signature", "relative_risk", "cluster_profile", "health")

#: k-means restarts for the serving-side clustering artifact — enough
#: for stability on serving-scale corpora without dominating load cost.
_CLUSTER_N_INIT = 2


class QueryError(ReproError):
    """A request the service cannot act on (bad params, bad kind)."""


class Outcome(enum.Enum):
    """The four — and only four — terminal fates of a request."""

    COMPLETED = "completed"
    REJECTED = "rejected"
    EXPIRED = "expired"
    DEAD_LETTERED = "dead_lettered"


@dataclass(frozen=True, slots=True)
class QueryRequest:
    """One query offered to the service.

    Attributes:
        request_id: client-chosen id echoed on the response.
        kind: one of :data:`QUERY_KINDS` (unknown kinds dead-letter).
        arrival: simulated arrival time, seconds from epoch 0.
        params: query parameters as sorted (key, value) pairs — a
            hashable stand-in for a dict, so requests stay frozen.
        deadline: per-request budget in seconds; ``None`` uses the
            service default.
        poison: marks an injected poison query (dead-letters on
            dequeue); set by the load-chaos plan, never by clients.
    """

    request_id: str
    kind: str
    arrival: float
    params: tuple[tuple[str, str], ...] = ()
    deadline: float | None = None
    poison: bool = False

    def param(self, key: str) -> str | None:
        for name, value in self.params:
            if name == key:
                return value
        return None

    @property
    def request_class(self) -> RequestClass:
        """Health probes are critical; everything else is normal."""
        if self.kind == "health":
            return RequestClass.CRITICAL
        return RequestClass.NORMAL


@dataclass(frozen=True, slots=True)
class Response:
    """One terminal answer; exactly one per submitted request.

    Attributes:
        request_id: echo of the request (or ``line-N`` for malformed
            input lines).
        outcome: the request's terminal fate.
        status: detail under the outcome (``ok``, ``degraded``,
            ``queue_full``, ``poison_query``, ...).
        payload: the answer, for completed requests only — partial
            payloads never escape.
        brownout_level: ladder level the request was served at.
        finished_at: simulated time the response was produced.
    """

    request_id: str
    outcome: Outcome
    status: str
    payload: dict[str, object] | None = None
    brownout_level: int = 0
    finished_at: float = 0.0

    def to_dict(self) -> dict[str, object]:
        return {
            "request_id": self.request_id,
            "outcome": self.outcome.value,
            "status": self.status,
            "payload": self.payload,
            "brownout_level": self.brownout_level,
            "finished_at": round(self.finished_at, 9),
        }


@dataclass(frozen=True, slots=True)
class ServicePolicy:
    """Costs and sub-policies for one service instance.

    The ``*_cost`` fields are the simulated seconds each handler stage
    advances the clock by — the service's model of its own latency.

    Attributes:
        health_cost: cost of a health probe.
        coarse_cost: cost of answering from coarse summaries.
        state_signature_cost: fresh §IV-B signature computation.
        relative_risk_cost: fresh Fig. 5 RR computation.
        cluster_profile_cost: fresh Fig. 7 profile computation.
        artifact_load_cost: one artifact load through the store.
        default_deadline: budget for requests that name none.
        cluster_k: k for the serving-side user clustering.
        admission / breaker / brownout: the defense sub-policies.
    """

    health_cost: float = 0.001
    coarse_cost: float = 0.005
    state_signature_cost: float = 0.02
    relative_risk_cost: float = 0.05
    cluster_profile_cost: float = 0.10
    artifact_load_cost: float = 0.25
    default_deadline: float = 2.0
    cluster_k: int = 6
    admission: AdmissionPolicy = field(default_factory=AdmissionPolicy)
    breaker: BreakerPolicy = field(default_factory=BreakerPolicy)
    brownout: BrownoutPolicy = field(default_factory=BrownoutPolicy)

    def __post_init__(self) -> None:
        for name in (
            "health_cost",
            "coarse_cost",
            "state_signature_cost",
            "relative_risk_cost",
            "cluster_profile_cost",
            "artifact_load_cost",
            "default_deadline",
        ):
            value = getattr(self, name)
            if value <= 0.0:
                raise ConfigError(f"{name} must be > 0, got {value}")
        if self.cluster_k < 1:
            raise ConfigError(f"cluster_k must be >= 1, got {self.cluster_k}")


class ArtifactStore:
    """Lazy, cached, breaker-guarded loads of run analysis artifacts.

    Every cache miss passes through the circuit breaker and the load
    fault plan, and advances the simulated clock by the load cost (plus
    injected slowness).  A hit is free — the dangerous seam is the load,
    not the lookup.

    The builder work behind each load is memoized in a generation-keyed
    :class:`~repro.serve.artifacts.ArtifactCache`: the store still pays
    the simulated load cost and reports to the breaker on every *store*
    miss, but the expensive JSONL parse / clustering runs at most once
    per corpus generation across every store sharing the cache.

    Args:
        run_dir: completed run directory holding ``corpus.jsonl``.
        policy: service policy (costs, cluster k).
        plan: load-chaos plan; faults draw per (artifact, load index).
        clock: the service's simulated clock.
        breaker: the breaker guarding this store.
        cache: the shared builder cache.
        generation: this run directory's corpus generation key.
    """

    def __init__(
        self,
        run_dir: Path,
        policy: ServicePolicy,
        plan: LoadFaultPlan,
        clock: ManualClock,
        breaker: CircuitBreaker,
        cache: ArtifactCache,
        generation: str,
    ):
        self._policy = policy
        self._plan = plan
        self._clock = clock
        self._breaker = breaker
        self._shared = cache
        self._generation = generation
        self._run_dir = run_dir
        self._cache: dict[str, object] = {}
        self._load_counts: dict[str, int] = {}
        # Each loader resolves its *dependencies* through the paid store
        # path first (so nested load costs, fault draws, and breaker
        # reports are identical whether the shared cache is cold or
        # warm), and only the pure builder work is generation-memoized.
        self._loaders: dict[str, Callable[[], object]] = {
            "corpus": self._build_corpus,
            "regions": self._build_regions,
            "risks": self._build_risks,
            "clustering": self._build_clustering,
        }

    def _corpus(self) -> TweetCorpus:
        return cast(TweetCorpus, self.load("corpus"))

    def _build_corpus(self) -> object:
        run_dir = self._run_dir
        return self._shared.get(
            (self._generation, "corpus"),
            lambda: TweetCorpus(read_jsonl(run_dir / "corpus.jsonl")),
        )

    def _build_regions(self) -> object:
        corpus = self._corpus()
        return self._shared.get(
            (self._generation, "regions"),
            lambda: characterize_regions(corpus),
        )

    def _build_risks(self) -> object:
        corpus = self._corpus()
        return self._shared.get(
            (self._generation, "risks"),
            lambda: highlighted_organs(corpus),
        )

    def _build_clustering(self) -> object:
        corpus = self._corpus()
        policy = self._policy
        return self._shared.get(
            (
                self._generation,
                "clustering",
                policy.cluster_k,
                _CLUSTER_N_INIT,
            ),
            lambda: cluster_users(
                build_attention_matrix(corpus),
                UserClusteringConfig(
                    k=policy.cluster_k, n_init=_CLUSTER_N_INIT, workers=1
                ),
            ),
        )

    @property
    def loads(self) -> int:
        """Total store misses that went through the paid load path."""
        return sum(self._load_counts.values())

    def load(self, name: str) -> object:
        """Return the named artifact, loading (and paying) on a miss.

        Raises:
            BreakerOpenError: the breaker is open; refused instantly,
                without spending any deadline budget.
            InjectedQueryError: the load-chaos plan failed this load.
            ConfigError: unknown artifact name.
        """
        if name not in self._loaders:
            raise ConfigError(f"unknown artifact {name!r}")
        if name in self._cache:
            return self._cache[name]
        now = self._clock.now()
        if not self._breaker.allow(now):
            raise BreakerOpenError(
                f"artifact store breaker open; refusing load of {name!r}"
            )
        index = self._load_counts.get(name, 0)
        self._load_counts[name] = index + 1
        fault = (
            self._plan.fault_for_load(name, index)
            if self._plan.any_faults
            else None
        )
        cost = self._policy.artifact_load_cost
        if fault is LoadFault.SLOW:
            cost += self._plan.slow_load_seconds
        self._clock.advance(cost)
        if fault is LoadFault.ERROR:
            self._breaker.record_failure(self._clock.now())
            raise InjectedQueryError(
                f"injected load failure for {name!r} (load {index})"
            )
        try:
            value = self._loaders[name]()
        except (BreakerOpenError, InjectedQueryError):
            # A nested load already recorded its own breaker outcome.
            raise
        except ReproError:
            self._breaker.record_failure(self._clock.now())
            raise
        self._breaker.record_success(self._clock.now())
        self._cache[name] = value
        return value


@dataclass(frozen=True, slots=True)
class ServeResult:
    """Everything one serve run produced.

    Attributes:
        responses: one terminal response per submitted request, in
            completion order.
        report: the overload accounting.
    """

    responses: tuple[Response, ...]
    report: OverloadReport


Handler = Callable[[QueryRequest, Deadline, int], tuple[dict[str, object], bool]]


class QueryService:
    """Discrete-event query service with the full overload stack.

    Args:
        run_dir: completed run directory (``corpus.jsonl`` required).
        policy: costs and defense sub-policies.
        plan: load-chaos plan (storms, poison, slow/failing loads).
        cache: generation-keyed artifact cache to share across services;
            ``None`` (default) gives this service a private cache, which
            preserves full isolation between service instances — chaos
            suites rely on that.
    """

    def __init__(
        self,
        run_dir: str | Path,
        policy: ServicePolicy | None = None,
        plan: LoadFaultPlan | None = None,
        cache: ArtifactCache | None = None,
    ):
        self.run_dir = Path(run_dir)
        self.policy = policy or ServicePolicy()
        self.plan = plan or LoadFaultPlan.none()
        self.clock = ManualClock(0.0)
        self.breaker = CircuitBreaker(self.policy.breaker)
        self.cache = cache if cache is not None else ArtifactCache()
        self.generation = corpus_generation(self.run_dir)
        self.store = ArtifactStore(
            self.run_dir,
            self.policy,
            self.plan,
            self.clock,
            self.breaker,
            self.cache,
            self.generation,
        )
        # Coarse summaries are the brownout floor: built once at startup,
        # straight from disk, deliberately outside the breaker's blast
        # radius (this models offline precomputation at deploy time).
        # Both the corpus parse and the summary build go through the
        # generation cache, so a second service on an unchanged run
        # directory starts without touching the corpus file.
        self.coarse = cast(
            CoarseSummaries,
            self.cache.get(
                (self.generation, "coarse"),
                lambda: CoarseSummaries.from_corpus(
                    cast(
                        TweetCorpus,
                        self.cache.get(
                            (self.generation, "corpus"),
                            lambda: TweetCorpus(
                                read_jsonl(self.run_dir / "corpus.jsonl")
                            ),
                        ),
                    )
                ),
            ),
        )
        self._ladder = BrownoutLadder(self.policy.brownout)
        self._queue: AdmissionQueue[QueryRequest] = AdmissionQueue(
            self.policy.admission, now=0.0
        )
        self._handlers: dict[str, Handler] = {}
        self.register("health", self._handle_health)
        self.register("state_signature", self._handle_state_signature)
        self.register("relative_risk", self._handle_relative_risk)
        self.register("cluster_profile", self._handle_cluster_profile)

    def register(self, kind: str, handler: Handler) -> None:
        """Install (or replace) the handler for one query kind."""
        self._handlers[kind] = handler

    # -- the event loop -------------------------------------------------

    def serve(
        self,
        requests: list[QueryRequest],
        malformed: tuple[tuple[str, str], ...] = (),
    ) -> ServeResult:
        """Run every request to a terminal response.

        Args:
            requests: parsed requests, any order.
            malformed: (request_id, reason) pairs for input lines that
                never parsed — dead-lettered at time 0 so they still
                count against the accounting invariant.
        """
        telemetry = current()
        report = OverloadReport()
        responses: list[Response] = []

        for request_id, reason in malformed:
            report.submitted += 1
            report.dead_lettered += 1
            telemetry.inc("serve.dead_lettered", reason="malformed")
            responses.append(
                Response(
                    request_id=request_id,
                    outcome=Outcome.DEAD_LETTERED,
                    status=reason,
                )
            )

        schedule = self._materialize(requests)
        report.submitted += len(schedule)
        pending = deque(schedule)

        while pending or self._queue.depth:
            # Admit (or shed) everything that has arrived by now, at its
            # own arrival time — the front-door decision is independent
            # of when the busy service gets around to noticing it.
            while pending and pending[0].arrival <= self.clock.now():
                request = pending.popleft()
                self._admit(request, report, responses)
            if self._queue.depth == 0:
                if pending:
                    self.clock.advance(pending[0].arrival - self.clock.now())
                continue
            request = self._queue.pop()
            if request is None:  # pragma: no cover - depth checked above
                continue
            level = self._ladder.observe(self._queue.depth)
            responses.append(self._dispatch(request, level, report))

        report.max_brownout_level = self._ladder.max_level_seen
        report.breaker_opens = self.breaker.opens
        report.breaker_transitions = list(self.breaker.transitions)
        report.artifact_loads = self.store.loads
        return ServeResult(responses=tuple(responses), report=report)

    def _materialize(self, requests: list[QueryRequest]) -> list[QueryRequest]:
        """Expand the schedule with storm clones, sorted by arrival."""
        expanded: list[QueryRequest] = []
        for index, base in enumerate(requests):
            expanded.append(base)
            if not self.plan.any_faults:
                continue
            for clone_index, clone in enumerate(self.plan.storm_for(index)):
                expanded.append(
                    QueryRequest(
                        request_id=f"{base.request_id}~storm{clone_index}",
                        kind=base.kind,
                        arrival=base.arrival + clone.offset,
                        params=base.params,
                        deadline=base.deadline,
                        poison=clone.poison or base.poison,
                    )
                )
        return [
            request
            for _, request in sorted(
                enumerate(expanded), key=lambda pair: (pair[1].arrival, pair[0])
            )
        ]

    def _admit(
        self,
        request: QueryRequest,
        report: OverloadReport,
        responses: list[Response],
    ) -> None:
        rejected = self._queue.offer(
            request, request.request_class, now=request.arrival
        )
        if rejected is None:
            report.admitted += 1
            current().inc("serve.admitted", kind=request.kind)
            return
        report.shed += 1
        if rejected.reason == "queue_full":
            report.shed_queue_full += 1
        else:
            report.shed_rate_limited += 1
        current().inc("serve.shed", reason=rejected.reason)
        responses.append(
            Response(
                request_id=request.request_id,
                outcome=Outcome.REJECTED,
                status=rejected.reason,
                finished_at=request.arrival,
            )
        )

    def _dispatch(
        self, request: QueryRequest, level: int, report: OverloadReport
    ) -> Response:
        deadline = Deadline.from_budget(
            request.arrival, request.deadline or self.policy.default_deadline
        )
        now = self.clock.now()
        if deadline.expired(now):
            report.expired += 1
            current().inc("serve.expired", where="queue")
            return Response(
                request_id=request.request_id,
                outcome=Outcome.EXPIRED,
                status="expired_in_queue",
                brownout_level=level,
                finished_at=now,
            )
        if request.poison:
            report.dead_lettered += 1
            current().inc("serve.dead_lettered", reason="poison")
            return Response(
                request_id=request.request_id,
                outcome=Outcome.DEAD_LETTERED,
                status="poison_query",
                brownout_level=level,
                finished_at=now,
            )
        handler = self._handlers.get(request.kind)
        if handler is None:
            report.dead_lettered += 1
            current().inc("serve.dead_lettered", reason="unknown_kind")
            return Response(
                request_id=request.request_id,
                outcome=Outcome.DEAD_LETTERED,
                status="unknown_kind",
                brownout_level=level,
                finished_at=now,
            )
        try:
            payload, degraded = handler(request, deadline, level)
        except DeadlineExceeded:
            report.expired += 1
            current().inc("serve.expired", where="handler")
            return Response(
                request_id=request.request_id,
                outcome=Outcome.EXPIRED,
                status="deadline_exceeded",
                brownout_level=level,
                finished_at=self.clock.now(),
            )
        except ReproError as exc:
            # The handler ran out of fallbacks (e.g. the coarse path
            # itself raised) — a terminal dead letter, never a hang.
            report.dead_lettered += 1
            current().inc("serve.dead_lettered", reason="handler_error")
            return Response(
                request_id=request.request_id,
                outcome=Outcome.DEAD_LETTERED,
                status=f"handler_error:{type(exc).__name__}",
                brownout_level=level,
                finished_at=self.clock.now(),
            )
        report.completed += 1
        if degraded:
            report.degraded += 1
            current().inc("serve.degraded", kind=request.kind)
        current().inc("serve.completed", kind=request.kind)
        return Response(
            request_id=request.request_id,
            outcome=Outcome.COMPLETED,
            status="degraded" if degraded else "ok",
            payload=payload,
            brownout_level=level,
            finished_at=self.clock.now(),
        )

    # -- handlers -------------------------------------------------------

    def _spend(self, cost: float, deadline: Deadline) -> None:
        """Advance the clock by one stage's cost, then check the budget."""
        self.clock.advance(cost)
        deadline.check(self.clock.now())

    def _require_param(self, request: QueryRequest, key: str) -> str:
        value = request.param(key)
        if value is None:
            raise QueryError(f"{request.kind} requires param {key!r}")
        return value

    def _handle_health(
        self, request: QueryRequest, deadline: Deadline, level: int
    ) -> tuple[dict[str, object], bool]:
        self._spend(self.policy.health_cost, deadline)
        return (
            {
                "status": "ok",
                "queue_depth": self._queue.depth,
                "brownout_level": level,
                "breaker_state": self.breaker.state.value,
            },
            False,
        )

    def _handle_state_signature(
        self, request: QueryRequest, deadline: Deadline, level: int
    ) -> tuple[dict[str, object], bool]:
        state = self._require_param(request, "state")
        if level == 0:
            try:
                regions = cast(
                    RegionCharacterization, self.store.load("regions")
                )
                deadline.check(self.clock.now())
                self._spend(self.policy.state_signature_cost, deadline)
                if state not in regions.states:
                    return {"state": state, "found": False}, False
                signature = regions.signature(state)
                return (
                    {
                        "state": state,
                        "found": True,
                        "signature": [
                            [organ.value, round(float(weight), 9)]
                            for organ, weight in signature
                        ],
                    },
                    False,
                )
            except (BreakerOpenError, InjectedQueryError):
                pass  # fall back to the coarse answer below
        self._spend(self.policy.coarse_cost, deadline)
        return self.coarse.state_signature(state, level), True

    def _handle_relative_risk(
        self, request: QueryRequest, deadline: Deadline, level: int
    ) -> tuple[dict[str, object], bool]:
        state = self._require_param(request, "state")
        if level == 0:
            try:
                risks = cast(
                    "dict[str, tuple[Organ, ...]]", self.store.load("risks")
                )
                deadline.check(self.clock.now())
                self._spend(self.policy.relative_risk_cost, deadline)
                highlighted = risks.get(state)
                if highlighted is None:
                    return {"state": state, "found": False}, False
                return (
                    {
                        "state": state,
                        "found": True,
                        "highlighted": [organ.value for organ in highlighted],
                    },
                    False,
                )
            except (BreakerOpenError, InjectedQueryError):
                pass
        self._spend(self.policy.coarse_cost, deadline)
        return self.coarse.relative_risk(state, level), True

    def _handle_cluster_profile(
        self, request: QueryRequest, deadline: Deadline, level: int
    ) -> tuple[dict[str, object], bool]:
        cluster_raw = request.param("cluster") or "0"
        try:
            cluster = int(cluster_raw)
        except ValueError as exc:
            raise QueryError(f"cluster must be an integer, got {cluster_raw!r}") from exc
        if level == 0:
            try:
                clustering = cast(
                    UserClustering, self.store.load("clustering")
                )
                deadline.check(self.clock.now())
                self._spend(self.policy.cluster_profile_cost, deadline)
                profile = clustering.cluster_profile(cluster)
                sizes = clustering.relative_sizes()
                return (
                    {
                        "cluster": cluster,
                        "k": clustering.k,
                        "relative_size": round(float(sizes[cluster]), 9),
                        "profile": [
                            [organ.value, round(float(weight), 9)]
                            for organ, weight in profile
                        ],
                    },
                    False,
                )
            except (BreakerOpenError, InjectedQueryError):
                pass
        self._spend(self.policy.coarse_cost, deadline)
        return self.coarse.cluster_profile(level), True


# -- request/response JSONL IO ------------------------------------------


def read_requests_jsonl(
    path: str | Path,
) -> tuple[list[QueryRequest], tuple[tuple[str, str], ...]]:
    """Parse a request file; malformed lines become dead-letter stubs.

    Returns ``(requests, malformed)`` where each malformed entry is a
    ``(request_id, reason)`` pair with ids like ``line-3`` — malformed
    input is *submitted* work and must be accounted for, so it flows
    into :meth:`QueryService.serve` rather than being dropped here.
    """
    requests: list[QueryRequest] = []
    malformed: list[tuple[str, str]] = []
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            if not line.strip():
                continue
            stub = f"line-{line_number}"
            try:
                data = json.loads(line)
            except json.JSONDecodeError:
                malformed.append((stub, "malformed_json"))
                continue
            try:
                requests.append(_request_from_dict(data))
            except (QueryError, KeyError, TypeError, ValueError):
                malformed.append((stub, "malformed_request"))
    return requests, tuple(malformed)


def _request_from_dict(data: dict[str, object]) -> QueryRequest:
    if not isinstance(data, dict):
        raise QueryError("request line must be a JSON object")
    request_id = data["id"]
    kind = data["kind"]
    arrival = data.get("arrival", 0.0)
    if not isinstance(request_id, str) or not request_id:
        raise QueryError("id must be a non-empty string")
    if not isinstance(kind, str) or not kind:
        raise QueryError("kind must be a non-empty string")
    if not isinstance(arrival, (int, float)) or isinstance(arrival, bool):
        raise QueryError("arrival must be a number")
    if arrival < 0:
        raise QueryError("arrival must be >= 0")
    params_raw = data.get("params", {})
    if not isinstance(params_raw, dict):
        raise QueryError("params must be an object")
    params = tuple(
        (str(key), str(value)) for key, value in sorted(params_raw.items())
    )
    deadline_raw = data.get("deadline")
    deadline: float | None = None
    if deadline_raw is not None:
        if (
            not isinstance(deadline_raw, (int, float))
            or isinstance(deadline_raw, bool)
            or deadline_raw <= 0
        ):
            raise QueryError("deadline must be a positive number")
        deadline = float(deadline_raw)
    return QueryRequest(
        request_id=request_id,
        kind=kind,
        arrival=float(arrival),
        params=params,
        deadline=deadline,
    )


def write_responses_jsonl(
    responses: tuple[Response, ...] | list[Response], path: str | Path
) -> int:
    """Atomically write the response stream with its manifest sidecar.

    Keys are sorted so the byte stream is a pure function of the
    response values — the property suite fingerprints this file.
    """
    crcs: list[int] = []
    with AtomicWriter(path) as writer:
        for response in responses:
            line = json.dumps(
                response.to_dict(), sort_keys=True, ensure_ascii=False
            )
            writer.write(line)
            writer.write("\n")
            crcs.append(record_crc(line))
    write_manifest(
        path,
        Manifest(
            file=Path(path).name,
            sha256=writer.sha256_hex,
            size_bytes=writer.bytes_written,
            record_crcs=tuple(crcs),
        ),
    )
    return len(crcs)
