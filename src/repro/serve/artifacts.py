"""Read-through artifact cache keyed by corpus generation.

Every :class:`~repro.serve.service.QueryService` used to rebuild its
world from disk at construction time: one full ``corpus.jsonl`` parse
for the coarse-summary floor, another for the first ``corpus`` artifact
load, and a fresh clustering per service even when the run directory had
not changed.  This module gives the serving layer one read-through cache
for those *builders*, keyed by the corpus **generation** — the sha256
recorded in the corpus's manifest sidecar (falling back to hashing the
file bytes for legacy directories without one).  When the run artifacts
are regenerated the manifest hash changes, the old generation's entries
simply stop being hit, and the first service on the new generation
rebuilds from disk.

The cache deliberately sits *below* the overload machinery.  An
:class:`~repro.serve.service.ArtifactStore` still charges the simulated
load cost, consults the load-chaos plan, and reports to the circuit
breaker for every one of its own misses — the cache only makes the
builder work (JSONL parse, clustering) free when another service on the
same generation already did it.  Simulated-clock behaviour is therefore
byte-identical for a fixed ``(seed, requests)`` pair whether the cache
is cold, warm, shared, or private; chaos property tests run services
with private caches and observe nothing new.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Any, Callable

from repro.storage.manifest import load_manifest


def corpus_generation(run_dir: str | Path) -> str:
    """The generation key of ``run_dir``'s corpus.

    Prefers the manifest sidecar's recorded sha256 (no data-file read at
    all); hashes the corpus bytes when no sidecar exists.

    Raises:
        FileNotFoundError: when the run directory has no corpus.
        repro.errors.StorageError: when a sidecar exists but is
            unreadable (corruption evidence, never ignored).
    """
    corpus_path = Path(run_dir) / "corpus.jsonl"
    manifest = load_manifest(corpus_path)
    if manifest is not None:
        return manifest.sha256
    digest = hashlib.sha256()
    with open(corpus_path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


class ArtifactCache:
    """Generation-keyed memo for serving-side artifact builders.

    Entries are keyed ``(generation, artifact name, *params)`` so two run
    directories — or two *versions* of one run directory — can never
    alias, and parameterized artifacts (clustering at different ``k``)
    coexist.  Unbounded by design: a serving process touches a handful
    of generations, and each entry is one already-built object.
    """

    __slots__ = ("_entries", "_hits", "_misses")

    def __init__(self) -> None:
        self._entries: dict[tuple[object, ...], Any] = {}
        self._hits = 0
        self._misses = 0

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self, key: tuple[object, ...], builder: Callable[[], Any]
    ) -> Any:
        """Return the cached value for ``key``, building it on first use.

        A builder that raises caches nothing — the next caller retries,
        which is exactly what the store's breaker path expects.
        """
        entries = self._entries
        if key in entries:
            self._hits += 1
            return entries[key]
        value = builder()
        self._misses += 1
        entries[key] = value
        return value

    def evict_generation(self, generation: str) -> int:
        """Drop every entry of one generation; returns how many."""
        stale = [
            key for key in self._entries if key and key[0] == generation
        ]
        for key in stale:
            del self._entries[key]
        return len(stale)
