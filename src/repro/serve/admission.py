"""Admission control: bounded queue, token-bucket rate limit, priorities.

The first overload defense is refusing work *explicitly at the front
door* instead of accepting everything and collapsing later.  Two gates
run at arrival time, in order:

1. **Token bucket** — sustained offered load above
   ``refill_per_second`` drains the bucket and arrivals are shed with
   ``rate_limited``; short bursts up to ``bucket_capacity`` pass.
2. **Bounded queue** — a full queue sheds with ``queue_full``; an
   unbounded queue is how a service converts overload into unbounded
   latency and then a silent hang.

Every shed is an explicit :class:`Rejected` with a reason — a request is
never dropped without a response.  Requests carry a class:
``CRITICAL`` requests (health probes) bypass both gates and are drained
before any ``NORMAL`` work, so operators can always see into an
overloaded service — the one query class that is *never* shed.

The queue is generic over the queued item so this module stays
import-free of the request model (the service queues its own request
type).  All timing is simulated-clock time passed in by the caller;
nothing here reads any clock.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Generic, TypeVar

from repro.errors import ConfigError

T = TypeVar("T")


class RequestClass(enum.Enum):
    """Admission priority class of a request."""

    CRITICAL = "critical"
    NORMAL = "normal"


@dataclass(frozen=True, slots=True)
class AdmissionPolicy:
    """Front-door limits for one service instance.

    Attributes:
        queue_limit: maximum queued ``NORMAL`` requests; arrivals beyond
            it are shed with ``queue_full``.
        bucket_capacity: token-bucket burst size, in requests.
        refill_per_second: sustained admission rate, in requests per
            simulated second.
    """

    queue_limit: int = 64
    bucket_capacity: float = 32.0
    refill_per_second: float = 200.0

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ConfigError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if self.bucket_capacity <= 0.0:
            raise ConfigError(
                f"bucket_capacity must be > 0, got {self.bucket_capacity}"
            )
        if self.refill_per_second <= 0.0:
            raise ConfigError(
                "refill_per_second must be > 0, got "
                f"{self.refill_per_second}"
            )


@dataclass(frozen=True, slots=True)
class Rejected:
    """An explicit shed decision.

    Attributes:
        reason: ``"queue_full"`` or ``"rate_limited"``.
    """

    reason: str


class TokenBucket:
    """A deterministic token bucket on the simulated clock.

    Args:
        capacity: maximum (and initial) token count.
        refill_per_second: tokens added per simulated second.
        now: simulated time of construction.
    """

    __slots__ = ("_capacity", "_refill", "_tokens", "_last")

    def __init__(self, capacity: float, refill_per_second: float, now: float = 0.0):
        if capacity <= 0.0:
            raise ConfigError(f"capacity must be > 0, got {capacity}")
        if refill_per_second <= 0.0:
            raise ConfigError(
                f"refill_per_second must be > 0, got {refill_per_second}"
            )
        self._capacity = capacity
        self._refill = refill_per_second
        self._tokens = capacity
        self._last = now

    def tokens(self, now: float) -> float:
        """Token count after refilling up to ``now`` (read-only)."""
        elapsed = max(0.0, now - self._last)
        return min(self._capacity, self._tokens + elapsed * self._refill)

    def try_take(self, now: float) -> bool:
        """Take one token if available; refills lazily up to ``now``."""
        self._tokens = self.tokens(now)
        self._last = max(self._last, now)
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False


class AdmissionQueue(Generic[T]):
    """Bounded, class-prioritized admission queue with explicit shedding.

    Args:
        policy: front-door limits.
        now: simulated time of construction (bucket origin).
    """

    def __init__(self, policy: AdmissionPolicy, now: float = 0.0):
        self.policy = policy
        self._bucket = TokenBucket(
            policy.bucket_capacity, policy.refill_per_second, now=now
        )
        self._critical: deque[T] = deque()
        self._normal: deque[T] = deque()

    @property
    def depth(self) -> int:
        """Queued requests across both classes."""
        return len(self._critical) + len(self._normal)

    def __len__(self) -> int:
        return self.depth

    def offer(
        self, item: T, request_class: RequestClass, now: float
    ) -> Rejected | None:
        """Admit ``item`` or return an explicit :class:`Rejected`.

        ``CRITICAL`` items bypass the bucket and the bound — the health
        class is never shed, whatever the load.
        """
        if request_class is RequestClass.CRITICAL:
            self._critical.append(item)
            return None
        if not self._bucket.try_take(now):
            return Rejected(reason="rate_limited")
        if len(self._normal) >= self.policy.queue_limit:
            return Rejected(reason="queue_full")
        self._normal.append(item)
        return None

    def pop(self) -> T | None:
        """Next request to serve: critical first, FIFO within a class."""
        if self._critical:
            return self._critical.popleft()
        if self._normal:
            return self._normal.popleft()
        return None
