"""Circuit breaker around the artifact-loading seam.

A slow or failing dependency is more dangerous than a dead one: every
request that touches it burns its whole deadline discovering the outage
again.  The breaker converts repeated load failures into *fail-fast*
behaviour with a deterministic recovery schedule:

* **closed** — loads pass through; consecutive failures are counted and
  ``failure_threshold`` of them trip the breaker open.
* **open** — loads are refused instantly (:meth:`CircuitBreaker.allow`
  returns ``False``), so a request behind an open breaker spends
  essentially none of its deadline on the dead dependency and can fall
  back to a coarse summary instead.  A probe time is scheduled at
  ``cooldown_seconds`` plus deterministic seeded jitter.
* **half-open** — once the probe time passes, loads are admitted again
  as probes; ``probe_successes`` consecutive successes close the
  breaker, any failure re-opens it (with the next seeded probe delay).

Every transition is recorded as a :class:`BreakerTransition` for the
:class:`repro.serve.report.OverloadReport`.  All timing is the service's
simulated clock; the jitter RNG is seeded from the policy, so the entire
open/probe/close schedule replays byte-identically for a fixed seed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Any

from repro.errors import ConfigError, ReproError


class BreakerOpenError(ReproError):
    """An artifact load was refused because the breaker is open."""


class BreakerState(enum.Enum):
    """The classic three-state breaker automaton."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True, slots=True)
class BreakerPolicy:
    """Trip, cooldown, and probe policy for one breaker.

    Attributes:
        failure_threshold: consecutive closed-state failures that trip
            the breaker open.
        cooldown_seconds: base delay before an open breaker schedules a
            half-open probe.
        probe_successes: consecutive half-open successes required to
            close.
        probe_jitter: max extra cooldown as a fraction of the base,
            drawn deterministically from ``seed``; 0 disables jitter.
        seed: RNG seed for the probe-jitter schedule.
    """

    failure_threshold: int = 3
    cooldown_seconds: float = 5.0
    probe_successes: int = 2
    probe_jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds <= 0.0:
            raise ConfigError(
                f"cooldown_seconds must be > 0, got {self.cooldown_seconds}"
            )
        if self.probe_successes < 1:
            raise ConfigError(
                f"probe_successes must be >= 1, got {self.probe_successes}"
            )
        if not 0.0 <= self.probe_jitter < 1.0:
            raise ConfigError(
                f"probe_jitter must be in [0, 1), got {self.probe_jitter}"
            )


@dataclass(frozen=True, slots=True)
class BreakerTransition:
    """One recorded state change.

    Attributes:
        at: simulated time of the transition.
        from_state / to_state: :class:`BreakerState` values.
        reason: what forced the change (e.g. ``"failure_threshold"``).
    """

    at: float
    from_state: str
    to_state: str
    reason: str

    def to_dict(self) -> dict[str, object]:
        return {
            "at": self.at,
            "from_state": self.from_state,
            "to_state": self.to_state,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BreakerTransition":
        return cls(
            at=float(data["at"]),
            from_state=str(data["from_state"]),
            to_state=str(data["to_state"]),
            reason=str(data["reason"]),
        )


class CircuitBreaker:
    """Deterministic closed/open/half-open breaker on a simulated clock.

    Args:
        policy: trip/cooldown/probe configuration.
    """

    def __init__(self, policy: BreakerPolicy | None = None):
        self.policy = policy or BreakerPolicy()
        self._state = BreakerState.CLOSED
        self._failures = 0
        self._probe_wins = 0
        self._probe_at = 0.0
        # Deterministic jitter schedule derived from the policy seed.
        self._rng = random.Random(self.policy.seed)
        self.transitions: list[BreakerTransition] = []

    @property
    def state(self) -> BreakerState:
        return self._state

    @property
    def opens(self) -> int:
        """How many times the breaker has tripped open."""
        return sum(
            1
            for transition in self.transitions
            if transition.to_state == BreakerState.OPEN.value
        )

    def allow(self, now: float) -> bool:
        """Whether a load may pass right now (open → instant refusal)."""
        if self._state is BreakerState.OPEN and now >= self._probe_at:
            self._shift(now, BreakerState.HALF_OPEN, "cooldown_elapsed")
            self._probe_wins = 0
        return self._state is not BreakerState.OPEN

    def record_success(self, now: float) -> None:
        """A load behind the breaker succeeded."""
        if self._state is BreakerState.HALF_OPEN:
            self._probe_wins += 1
            if self._probe_wins >= self.policy.probe_successes:
                self._shift(now, BreakerState.CLOSED, "probe_successes")
                self._failures = 0
        else:
            self._failures = 0

    def record_failure(self, now: float) -> None:
        """A load behind the breaker failed."""
        if self._state is BreakerState.HALF_OPEN:
            self._open(now, "probe_failure")
            return
        self._failures += 1
        if (
            self._state is BreakerState.CLOSED
            and self._failures >= self.policy.failure_threshold
        ):
            self._open(now, "failure_threshold")

    # -- internals ------------------------------------------------------

    def _open(self, now: float, reason: str) -> None:
        self._shift(now, BreakerState.OPEN, reason)
        self._failures = 0
        jitter = self.policy.probe_jitter * self._rng.random()
        self._probe_at = now + self.policy.cooldown_seconds * (1.0 + jitter)

    def _shift(self, now: float, to_state: BreakerState, reason: str) -> None:
        self.transitions.append(
            BreakerTransition(
                at=now,
                from_state=self._state.value,
                to_state=to_state.value,
                reason=reason,
            )
        )
        self._state = to_state
