"""Per-request deadline budgets, propagated into handler stages.

A request's deadline is fixed at *arrival* (arrival time plus its budget)
and carried through every stage a handler runs — queue wait, artifact
load, computation, rendering all consume the same budget.  Stages call
:meth:`Deadline.check` between units of work; an expired budget raises
:class:`DeadlineExceeded`, the service converts that into an explicit
``expired`` response, and **no partial payload ever leaves a handler** —
a stage either finishes inside the budget or its output is discarded
wholesale.

Deadlines run on the service's simulated clock
(:class:`repro.obs.clock.ManualClock`), so nothing here ever reads a
wall clock and every expiry is exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigError, ReproError


class DeadlineExceeded(ReproError):
    """A request's deadline budget ran out before its handler finished."""


@dataclass(frozen=True, slots=True)
class Deadline:
    """One request's immutable expiry point on the simulated clock.

    Attributes:
        expires_at: simulated time at which the request is dead.
    """

    expires_at: float

    @classmethod
    def from_budget(cls, arrival: float, budget: float) -> "Deadline":
        """Fix a deadline at ``arrival + budget``.

        Raises:
            ConfigError: on a non-positive budget (a request that can
                never be served is a configuration bug, not overload).
        """
        if budget <= 0.0:
            raise ConfigError(f"deadline budget must be > 0, got {budget}")
        return cls(expires_at=arrival + budget)

    def remaining(self, now: float) -> float:
        """Budget left at ``now`` (negative once expired)."""
        return self.expires_at - now

    def expired(self, now: float) -> bool:
        return now >= self.expires_at

    def check(self, now: float) -> None:
        """Raise if the budget is spent — called between handler stages.

        Raises:
            DeadlineExceeded: when ``now`` is at or past the expiry.
        """
        if self.expired(now):
            raise DeadlineExceeded(
                f"deadline expired {now - self.expires_at:.3f}s ago "
                f"(at {self.expires_at:.3f}s)"
            )
