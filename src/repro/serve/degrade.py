"""Brownout ladder: degrade gracefully before shedding fresh work.

Between "serve everything fresh" and "shed requests" there is a middle
rung the overload literature calls *brownout*: keep answering every
query, but answer from cheaper, coarser material.  The ladder has three
levels:

* **0 — fresh**: handlers load run artifacts and compute full answers.
* **1 — coarse**: handlers answer from :class:`CoarseSummaries`,
  precomputed once at service startup — ranked organ counts instead of
  aggregated attention distributions.
* **2 — minimal**: handlers answer with bare counts only.

The ladder steps *up* when the admission queue stays at or above a
depth threshold for ``sustain_ticks`` consecutive dequeues (a single
burst should not brown the service out) and steps *down* one level at a
time after ``recover_ticks`` consecutive calm dequeues — asymmetric on
purpose, the classic anti-flapping shape.  Levels are consulted by
handlers at dequeue time; shedding only ever happens at admission, so
the ordering invariant holds: **a fresh computation is degraded before
any request is shed beyond the front-door limits.**

Everything is a pure function of the observed queue-depth sequence, so
brownout behaviour replays exactly for a fixed request schedule.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dataset.corpus import TweetCorpus
from repro.errors import ConfigError
from repro.organs import ORGANS

#: Number of brownout levels above fresh (levels are 0, 1, 2).
MAX_BROWNOUT_LEVEL = 2


@dataclass(frozen=True, slots=True)
class BrownoutPolicy:
    """When to step the ladder up and down.

    Attributes:
        level1_depth: queue depth at which sustained load enters level 1.
        level2_depth: queue depth at which sustained load enters level 2.
        sustain_ticks: consecutive overloaded dequeues before stepping up.
        recover_ticks: consecutive calm dequeues before stepping down.
    """

    level1_depth: int = 8
    level2_depth: int = 24
    sustain_ticks: int = 3
    recover_ticks: int = 6

    def __post_init__(self) -> None:
        if self.level1_depth < 1:
            raise ConfigError(
                f"level1_depth must be >= 1, got {self.level1_depth}"
            )
        if self.level2_depth <= self.level1_depth:
            raise ConfigError(
                f"level2_depth must be > level1_depth, got "
                f"{self.level2_depth} <= {self.level1_depth}"
            )
        if self.sustain_ticks < 1:
            raise ConfigError(
                f"sustain_ticks must be >= 1, got {self.sustain_ticks}"
            )
        if self.recover_ticks < 1:
            raise ConfigError(
                f"recover_ticks must be >= 1, got {self.recover_ticks}"
            )


class BrownoutLadder:
    """Tracks the current brownout level from queue-depth observations.

    Args:
        policy: step-up/step-down thresholds.
    """

    def __init__(self, policy: BrownoutPolicy | None = None):
        self.policy = policy or BrownoutPolicy()
        self._level = 0
        self._hot_ticks = 0
        self._calm_ticks = 0
        self.max_level_seen = 0

    @property
    def level(self) -> int:
        return self._level

    def observe(self, queue_depth: int) -> int:
        """Feed one dequeue-time queue depth; returns the level to serve at."""
        if queue_depth < 0:
            raise ConfigError(f"queue_depth must be >= 0, got {queue_depth}")
        target = 0
        if queue_depth >= self.policy.level2_depth:
            target = 2
        elif queue_depth >= self.policy.level1_depth:
            target = 1
        if target > self._level:
            self._hot_ticks += 1
            self._calm_ticks = 0
            if self._hot_ticks >= self.policy.sustain_ticks:
                self._level += 1
                self._hot_ticks = 0
        elif target < self._level:
            self._calm_ticks += 1
            self._hot_ticks = 0
            if self._calm_ticks >= self.policy.recover_ticks:
                self._level -= 1
                self._calm_ticks = 0
        else:
            self._hot_ticks = 0
            self._calm_ticks = 0
        self.max_level_seen = max(self.max_level_seen, self._level)
        return self._level


@dataclass(frozen=True, slots=True)
class CoarseSummaries:
    """Precomputed coarse material the brownout levels serve from.

    Built once at service startup from the run's corpus — the serving
    analog of a cache warmed at deploy time — and deliberately *not*
    routed through the breaker-protected artifact store: its whole point
    is to stay answerable when the store is slow, failing, or browned
    out.

    Attributes:
        total_users: located users in the corpus.
        states: distinct states, sorted.
        users_by_state: state → located-user count.
        organ_users_by_state: state → (organ value → distinct users
            mentioning it), canonical organ order.
        top_organs_by_state: state → organ values ranked by user count
            (canonical organ order breaks ties).
    """

    total_users: int
    states: tuple[str, ...]
    users_by_state: dict[str, int]
    organ_users_by_state: dict[str, dict[str, int]]
    top_organs_by_state: dict[str, tuple[str, ...]]

    @classmethod
    def from_corpus(cls, corpus: TweetCorpus) -> "CoarseSummaries":
        """Precompute every coarse answer in one corpus pass."""
        users_by_state: Counter[str] = Counter()
        organ_users: dict[str, Counter[str]] = {}
        total = 0
        for user in corpus.user_slices():
            if user.state is None:
                continue
            total += 1
            users_by_state[user.state] += 1
            per_state = organ_users.setdefault(user.state, Counter())
            for organ in sorted(user.distinct_organs, key=lambda o: o.index):
                per_state[organ.value] += 1
        states = tuple(sorted(users_by_state))
        organ_users_by_state = {
            state: {
                organ.value: organ_users[state][organ.value]
                for organ in ORGANS
            }
            for state in states
        }
        top_organs_by_state = {
            state: tuple(
                organ.value
                for organ in sorted(
                    ORGANS,
                    key=lambda o: (-organ_users_by_state[state][o.value], o.index),
                )
                if organ_users_by_state[state][organ.value] > 0
            )
            for state in states
        }
        return cls(
            total_users=total,
            states=states,
            users_by_state=dict(users_by_state),
            organ_users_by_state=organ_users_by_state,
            top_organs_by_state=top_organs_by_state,
        )

    # -- per-kind coarse payloads ---------------------------------------

    def state_signature(self, state: str, level: int) -> dict[str, object]:
        """Coarse organ signature: ranked user counts, no aggregation."""
        if state not in self.users_by_state:
            return {"state": state, "found": False}
        if level >= 2:
            return {
                "state": state,
                "found": True,
                "n_users": self.users_by_state[state],
            }
        return {
            "state": state,
            "found": True,
            "n_users": self.users_by_state[state],
            "organ_users": [
                [organ, self.organ_users_by_state[state][organ]]
                for organ in self.top_organs_by_state[state]
            ],
        }

    def relative_risk(self, state: str, level: int) -> dict[str, object]:
        """Coarse stand-in for RR: top organs by user count, no testing."""
        if state not in self.users_by_state:
            return {"state": state, "found": False}
        if level >= 2:
            return {"state": state, "found": True}
        return {
            "state": state,
            "found": True,
            "top_organs": list(self.top_organs_by_state[state][:2]),
        }

    def cluster_profile(self, level: int) -> dict[str, object]:
        """Coarse stand-in for clustering: population counts only."""
        if level >= 2:
            return {"n_users": self.total_users}
        return {
            "n_users": self.total_users,
            "n_states": len(self.states),
        }
