"""Overload-robust query service over a completed run directory.

``repro serve`` turns the analysis pipeline's outputs into a queryable
surface with the full single-host overload stack: admission control
(:mod:`repro.serve.admission`), per-request deadlines
(:mod:`repro.serve.deadline`), a circuit breaker on the artifact-loading
seam (:mod:`repro.serve.breaker`), and a brownout ladder that degrades
answers before shedding work (:mod:`repro.serve.degrade`).  The event
loop (:mod:`repro.serve.service`) runs entirely on a simulated clock,
and :class:`repro.serve.report.OverloadReport` proves the accounting
invariant that no request is ever silently lost.
"""

from repro.serve.admission import (
    AdmissionPolicy,
    AdmissionQueue,
    Rejected,
    RequestClass,
    TokenBucket,
)
from repro.serve.artifacts import ArtifactCache, corpus_generation
from repro.serve.breaker import (
    BreakerOpenError,
    BreakerPolicy,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.serve.deadline import Deadline, DeadlineExceeded
from repro.serve.degrade import (
    MAX_BROWNOUT_LEVEL,
    BrownoutLadder,
    BrownoutPolicy,
    CoarseSummaries,
)
from repro.serve.report import OverloadReport
from repro.serve.service import (
    QUERY_KINDS,
    ArtifactStore,
    Outcome,
    QueryError,
    QueryRequest,
    QueryService,
    Response,
    ServeResult,
    ServicePolicy,
    read_requests_jsonl,
    write_responses_jsonl,
)

__all__ = [
    "AdmissionPolicy",
    "AdmissionQueue",
    "ArtifactCache",
    "ArtifactStore",
    "BreakerOpenError",
    "BreakerPolicy",
    "BreakerState",
    "BreakerTransition",
    "BrownoutLadder",
    "BrownoutPolicy",
    "CircuitBreaker",
    "CoarseSummaries",
    "Deadline",
    "DeadlineExceeded",
    "MAX_BROWNOUT_LEVEL",
    "Outcome",
    "OverloadReport",
    "QUERY_KINDS",
    "QueryError",
    "QueryRequest",
    "QueryService",
    "Rejected",
    "RequestClass",
    "Response",
    "ServeResult",
    "ServicePolicy",
    "TokenBucket",
    "corpus_generation",
    "read_requests_jsonl",
    "write_responses_jsonl",
]
