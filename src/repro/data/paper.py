"""The paper's reported numbers, used as reproduction targets.

EXPERIMENTS.md compares every regenerated table/figure against these.  The
reproduction criterion is *shape* (orders, signs, anomaly identities), not
absolute counts — see DESIGN.md §4.
"""

from __future__ import annotations

from repro.organs import Organ

#: Table I of the paper.
PAPER_DATASET_STATS: dict[str, float | int | str] = {
    "start": "2015-04-22",
    "finish": "2016-05-11",
    "days": 385,
    "tweets_collected": 134_986,
    "tweets_raw": 975_021,  # footnote: 134,986 of 975,021 identified as US
    "users": 71_947,
    "avg_tweets_per_day": 350,
    "avg_tweets_per_user": 1.88,
    "organs_per_tweet": 1.03,
    "organs_per_user": 1.13,
}

#: Fig. 2a: Twitter popularity order (heart most mentioned, intestine least,
#: heart inverted vs transplant volume) and the reported correlation.
PAPER_TWITTER_POPULARITY_ORDER: tuple[Organ, ...] = (
    Organ.HEART,
    Organ.KIDNEY,
    Organ.LIVER,
    Organ.LUNG,
    Organ.PANCREAS,
    Organ.INTESTINE,
)
PAPER_SPEARMAN_R: float = 0.84

#: Fig. 5 / §IV-B1: highlighted organs the text explicitly reports per state.
PAPER_HIGHLIGHTED_ORGANS: dict[str, tuple[Organ, ...]] = {
    "KS": (Organ.KIDNEY,),  # the only Midwest state with excess kidney talk
    "LA": (Organ.KIDNEY,),
    "MA": (Organ.KIDNEY, Organ.LUNG),
}

#: Fig. 6 / §IV-B2: states the text names inside organ-conversation zones.
PAPER_CLUSTER_ZONE_EXAMPLES: dict[str, tuple[str, ...]] = {
    "liver": ("DE", "RI", "CO"),
    "lung": ("OR", "GA", "VA"),
}

#: Fig. 7: K-Means model reported by the paper.
PAPER_KMEANS: dict[str, float | int] = {
    "k": 12,
    "silhouette": 0.953,
    "avg_cluster_size": 31697.42,
    "inertia": 2512.27,
}

#: Fig. 3 / §IV-A: reported top co-attended organs, by focal organ.
PAPER_ORGAN_CO_ATTENTION: dict[Organ, Organ] = {
    Organ.HEART: Organ.KIDNEY,     # kidney most important for heart
    Organ.LIVER: Organ.KIDNEY,     # and for liver
    Organ.PANCREAS: Organ.KIDNEY,  # and for pancreas
    Organ.INTESTINE: Organ.HEART,  # heart most important for intestine
    Organ.KIDNEY: Organ.HEART,     # and for kidney
    Organ.LUNG: Organ.HEART,       # and for lung
}
