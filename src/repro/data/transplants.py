"""US transplant statistics (OPTN/SRTR 2012 annual data report).

The paper correlates Twitter organ popularity against the number of
transplants performed in the USA (its reference [1], the OPTN/SRTR 2012
report) and finds Spearman r = .84: the orders agree except heart, which is
first in Twitter popularity but only third in transplant volume.

The counts below are the published 2012 national totals by organ.  They are
reference data, not measurements of this reproduction.
"""

from __future__ import annotations

import numpy as np

from repro.organs import ORGANS, Organ

#: 2012 US transplants per organ (OPTN/SRTR 2012 annual data report).
TRANSPLANTS_2012: dict[Organ, int] = {
    Organ.KIDNEY: 16487,
    Organ.LIVER: 6256,
    Organ.HEART: 2378,
    Organ.LUNG: 1754,
    Organ.PANCREAS: 1043,
    Organ.INTESTINE: 106,
}

#: Common dual-organ transplants the paper cites (§IV-A) when reading the
#: organ co-attention profiles: heart–kidney, liver–kidney, kidney–pancreas.
COMMON_DUAL_TRANSPLANTS: tuple[frozenset[Organ], ...] = (
    frozenset({Organ.HEART, Organ.KIDNEY}),
    frozenset({Organ.LIVER, Organ.KIDNEY}),
    frozenset({Organ.KIDNEY, Organ.PANCREAS}),
)


def transplant_counts_vector() -> np.ndarray:
    """2012 transplant counts in canonical organ column order."""
    return np.array([TRANSPLANTS_2012[organ] for organ in ORGANS], dtype=float)


def transplant_rank() -> list[Organ]:
    """Organs by descending 2012 transplant volume (kidney first)."""
    return sorted(ORGANS, key=lambda organ: -TRANSPLANTS_2012[organ])
