"""Reference data: published transplant statistics and paper-reported findings."""

from repro.data.transplants import (
    TRANSPLANTS_2012,
    transplant_counts_vector,
    transplant_rank,
)
from repro.data.paper import (
    PAPER_DATASET_STATS,
    PAPER_HIGHLIGHTED_ORGANS,
    PAPER_KMEANS,
    PAPER_SPEARMAN_R,
)

__all__ = [
    "PAPER_DATASET_STATS",
    "PAPER_HIGHLIGHTED_ORGANS",
    "PAPER_KMEANS",
    "PAPER_SPEARMAN_R",
    "TRANSPLANTS_2012",
    "transplant_counts_vector",
    "transplant_rank",
]
