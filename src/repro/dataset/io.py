"""JSONL persistence for tweets and collected records.

One JSON object per line; append-friendly and streamable, matching how
tweet datasets are stored in practice.  Two record kinds are supported:
raw :class:`~repro.twitter.models.Tweet` firehoses
(:func:`write_tweets_jsonl` / :func:`read_tweets_jsonl`) and
pipeline-surviving :class:`~repro.dataset.records.CollectedTweet` corpora
(:func:`write_jsonl` / :func:`read_jsonl`).  Reading is strict: a
malformed line raises :class:`repro.errors.SerializationError` with the
line number.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import TYPE_CHECKING

from repro.dataset.records import CollectedTweet
from repro.errors import SerializationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.twitter.models import Tweet


def write_jsonl(records: Iterable[CollectedTweet], path: str | Path) -> int:
    """Write records to a JSONL file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def write_tweets_jsonl(tweets: Iterable["Tweet"], path: str | Path) -> int:
    """Write raw tweets (a firehose) to JSONL; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for tweet in tweets:
            handle.write(json.dumps(tweet.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_tweets_jsonl(path: str | Path) -> Iterator["Tweet"]:
    """Stream raw tweets from a JSONL firehose file.

    Raises:
        SerializationError: on the first malformed line, with its 1-based
            line number.
    """
    from repro.twitter.models import Tweet

    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            try:
                yield Tweet.from_dict(data)
            except SerializationError as exc:
                raise SerializationError(f"{path}:{line_number}: {exc}") from exc


def read_jsonl(path: str | Path) -> Iterator[CollectedTweet]:
    """Stream records from a JSONL file.

    Raises:
        SerializationError: on the first malformed line, reporting its
            1-based line number.
    """
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            try:
                yield CollectedTweet.from_dict(data)
            except SerializationError as exc:
                raise SerializationError(f"{path}:{line_number}: {exc}") from exc
