"""JSONL persistence for tweets and collected records.

One JSON object per line; append-friendly and streamable, matching how
tweet datasets are stored in practice.  Two record kinds are supported:
raw :class:`~repro.twitter.models.Tweet` firehoses
(:func:`write_tweets_jsonl` / :func:`read_tweets_jsonl`) and
pipeline-surviving :class:`~repro.dataset.records.CollectedTweet` corpora
(:func:`write_jsonl` / :func:`read_jsonl`).  Reading is strict: a
malformed line raises :class:`repro.errors.SerializationError` with the
line number.

Writing goes through :class:`repro.storage.atomic.AtomicWriter`: the
new file is streamed to a temp sibling, fsynced, and renamed over the
destination — a crash mid-write can never destroy an existing corpus.
Each write also leaves a :mod:`repro.storage.manifest` integrity
sidecar (whole-file SHA-256 + per-record CRC32), built in the same
streaming pass, so ``repro scrub`` can detect bitrot later.
"""

from __future__ import annotations

import json
import warnings
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import IO, TYPE_CHECKING

from repro.dataset.records import CollectedTweet
from repro.errors import SerializationError
from repro.storage.atomic import AtomicWriter
from repro.storage.fs import FileSystem
from repro.storage.manifest import Manifest, record_crc, write_manifest

#: Chunk size for the torn-tail probe: large enough to cross any
#: plausible run of trailing whitespace in one or two reads, small
#: enough never to slurp a multi-GB remainder.
_TAIL_PROBE_BYTES = 64 * 1024


def _is_torn_tail(handle: IO[str]) -> bool:
    """True when only whitespace follows the handle's position.

    Called after a malformed line: if nothing but whitespace follows,
    the failure is a torn trailing line (a crash mid-append), not
    corpus-wide corruption.  Reads in bounded chunks so a malformed
    line early in a huge corpus does not pull the whole remainder into
    memory just to learn it is mid-file.
    """
    while True:
        chunk = handle.read(_TAIL_PROBE_BYTES)
        if not chunk:
            return True
        if chunk.strip():
            return False

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.twitter.models import Tweet


def _write_records_jsonl(
    dicts: Iterable[dict[str, object]],
    path: str | Path,
    *,
    fs: FileSystem | None,
    manifest: bool,
) -> int:
    """Stream dicts as JSONL through one atomic write; returns the count.

    Hashes and CRCs are accumulated during the same single iteration
    (sources may be one-shot generators), so the sidecar costs no
    second pass over the data.
    """
    count = 0
    crcs: list[int] = []
    with AtomicWriter(path, fs=fs) as writer:
        for data in dicts:
            line = json.dumps(data, ensure_ascii=False)
            writer.write(line)
            writer.write("\n")
            if manifest:
                crcs.append(record_crc(line))
            count += 1
    if manifest:
        write_manifest(
            path,
            Manifest(
                file=Path(path).name,
                sha256=writer.sha256_hex,
                size_bytes=writer.bytes_written,
                record_crcs=tuple(crcs),
            ),
            fs=fs,
        )
    return count


def write_jsonl(
    records: Iterable[CollectedTweet],
    path: str | Path,
    *,
    fs: FileSystem | None = None,
    manifest: bool = True,
) -> int:
    """Atomically write records to a JSONL file; returns the number written.

    An existing file at ``path`` survives any crash mid-write: the old
    content is only replaced once the new content is fully on disk.
    """
    return _write_records_jsonl(
        (record.to_dict() for record in records), path, fs=fs, manifest=manifest
    )


def write_tweets_jsonl(
    tweets: Iterable["Tweet"],
    path: str | Path,
    *,
    fs: FileSystem | None = None,
    manifest: bool = True,
) -> int:
    """Atomically write raw tweets (a firehose) to JSONL; returns the count."""
    return _write_records_jsonl(
        (tweet.to_dict() for tweet in tweets), path, fs=fs, manifest=manifest
    )


def read_objects_jsonl(
    path: str | Path, tolerate_torn_tail: bool = False
) -> Iterator[tuple[int, dict[str, object]]]:
    """Stream ``(line_number, parsed object)`` pairs from a JSONL file.

    The generic reader under every typed JSONL loader in the tree —
    tweets, corpora, and telemetry traces all share its torn-tail
    policy: with ``tolerate_torn_tail``, a malformed *final* line (the
    signature of a crash mid-append) is skipped with a warning instead
    of failing the whole file, while a malformed line with records
    after it still raises — that is corruption, not a torn tail.  The
    tail probe reads bounded chunks, so a malformed line early in a
    huge file never slurps the remainder into memory.

    Raises:
        SerializationError: on the first malformed line, with its
            1-based line number.
    """
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if tolerate_torn_tail and _is_torn_tail(handle):
                    warnings.warn(
                        f"{path}:{line_number}: torn trailing record "
                        "(crash mid-write?); rewound to the last complete "
                        "line",
                        stacklevel=2,
                    )
                    return
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            if not isinstance(data, dict):
                raise SerializationError(
                    f"{path}:{line_number}: expected a JSON object, got "
                    f"{type(data).__name__}"
                )
            yield line_number, data


def read_tweets_jsonl(
    path: str | Path, tolerate_torn_tail: bool = False
) -> Iterator["Tweet"]:
    """Stream raw tweets from a JSONL firehose file.

    Args:
        path: the JSONL file to read.
        tolerate_torn_tail: when True, a malformed *final* line — the
            signature of a crash mid-append — is skipped with a warning
            instead of failing the whole firehose.

    Raises:
        SerializationError: on the first malformed line, with its 1-based
            line number.
    """
    from repro.twitter.models import Tweet

    for line_number, data in read_objects_jsonl(
        path, tolerate_torn_tail=tolerate_torn_tail
    ):
        try:
            yield Tweet.from_dict(data)
        except SerializationError as exc:
            raise SerializationError(f"{path}:{line_number}: {exc}") from exc


def read_jsonl(
    path: str | Path, tolerate_torn_tail: bool = False
) -> Iterator[CollectedTweet]:
    """Stream records from a JSONL file.

    Args:
        path: the JSONL file to read.
        tolerate_torn_tail: when True, a malformed *final* line — the
            signature of a crash mid-append — is skipped with a warning
            instead of failing the whole corpus.  Malformed lines with
            records after them still raise: that is corruption, not a
            torn tail.

    Raises:
        SerializationError: on the first malformed line, reporting its
            1-based line number.
    """
    for line_number, data in read_objects_jsonl(
        path, tolerate_torn_tail=tolerate_torn_tail
    ):
        try:
            yield CollectedTweet.from_dict(data)
        except SerializationError as exc:
            raise SerializationError(f"{path}:{line_number}: {exc}") from exc
