"""JSONL persistence for tweets and collected records.

One JSON object per line; append-friendly and streamable, matching how
tweet datasets are stored in practice.  Two record kinds are supported:
raw :class:`~repro.twitter.models.Tweet` firehoses
(:func:`write_tweets_jsonl` / :func:`read_tweets_jsonl`) and
pipeline-surviving :class:`~repro.dataset.records.CollectedTweet` corpora
(:func:`write_jsonl` / :func:`read_jsonl`).  Reading is strict: a
malformed line raises :class:`repro.errors.SerializationError` with the
line number.
"""

from __future__ import annotations

import json
import warnings
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import IO, TYPE_CHECKING

from repro.dataset.records import CollectedTweet
from repro.errors import SerializationError


def _is_torn_tail(handle: IO[str]) -> bool:
    """True when the handle is positioned at end-of-file.

    Called after a malformed line: if nothing but whitespace follows, the
    failure is a torn trailing line (a crash mid-append), not corpus-wide
    corruption.
    """
    return handle.read().strip() == ""

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.twitter.models import Tweet


def write_jsonl(records: Iterable[CollectedTweet], path: str | Path) -> int:
    """Write records to a JSONL file; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def write_tweets_jsonl(tweets: Iterable["Tweet"], path: str | Path) -> int:
    """Write raw tweets (a firehose) to JSONL; returns the count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for tweet in tweets:
            handle.write(json.dumps(tweet.to_dict(), ensure_ascii=False))
            handle.write("\n")
            count += 1
    return count


def read_tweets_jsonl(path: str | Path) -> Iterator["Tweet"]:
    """Stream raw tweets from a JSONL firehose file.

    Raises:
        SerializationError: on the first malformed line, with its 1-based
            line number.
    """
    from repro.twitter.models import Tweet

    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            try:
                yield Tweet.from_dict(data)
            except SerializationError as exc:
                raise SerializationError(f"{path}:{line_number}: {exc}") from exc


def read_jsonl(
    path: str | Path, tolerate_torn_tail: bool = False
) -> Iterator[CollectedTweet]:
    """Stream records from a JSONL file.

    Args:
        path: the JSONL file to read.
        tolerate_torn_tail: when True, a malformed *final* line — the
            signature of a crash mid-append — is skipped with a warning
            instead of failing the whole corpus.  Malformed lines with
            records after them still raise: that is corruption, not a
            torn tail.

    Raises:
        SerializationError: on the first malformed line, reporting its
            1-based line number.
    """
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                if tolerate_torn_tail and _is_torn_tail(handle):
                    warnings.warn(
                        f"{path}:{line_number}: torn trailing record "
                        "(crash mid-write?); rewound to the last complete "
                        "line",
                        stacklevel=2,
                    )
                    return
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            try:
                yield CollectedTweet.from_dict(data)
            except SerializationError as exc:
                raise SerializationError(f"{path}:{line_number}: {exc}") from exc
