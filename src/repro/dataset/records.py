"""The unit record of the analysis dataset.

A :class:`CollectedTweet` is a tweet that survived the full pipeline:
keyword-matched, located to a US state, with its organ mentions already
extracted.  Mentions are stored on the record because every analysis in
§III–IV consumes mention counts, never raw text again.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import SerializationError
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet


@dataclass(frozen=True, slots=True)
class CollectedTweet:
    """A pipeline-surviving tweet with resolved location and mentions.

    Attributes:
        tweet: the original tweet record.
        location: resolved location (always a US state post-filter).
        mentions: organ → mention count within this tweet's text.
    """

    tweet: Tweet
    location: GeoMatch
    mentions: dict[Organ, int]

    @property
    def user_id(self) -> int:
        return self.tweet.user.user_id

    @property
    def state(self) -> str | None:
        return self.location.state

    @property
    def distinct_organs(self) -> frozenset[Organ]:
        return frozenset(
            organ for organ, count in self.mentions.items() if count > 0
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "tweet": self.tweet.to_dict(),
            "location": {
                "country": self.location.country,
                "state": self.location.state,
                "confidence": self.location.confidence,
                "source": self.location.source,
            },
            # Sorted so serialization is byte-stable across processes
            # (mention dicts are built from frozensets, whose iteration
            # order follows per-process enum hashes).
            "mentions": {
                organ.value: count
                for organ, count in sorted(
                    self.mentions.items(), key=lambda item: item[0].value
                )
            },
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CollectedTweet":
        try:
            location = data["location"]
            return cls(
                tweet=Tweet.from_dict(data["tweet"]),
                location=GeoMatch(
                    country=location["country"],
                    state=location["state"],
                    confidence=float(location["confidence"]),
                    source=location["source"],
                ),
                mentions={
                    Organ.from_name(name): int(count)
                    for name, count in data["mentions"].items()
                },
            )
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed collected record: {exc}") from exc
