"""Dataset container and persistence for collected tweets."""

from repro.dataset.corpus import TweetCorpus, UserSlice
from repro.dataset.io import read_jsonl, write_jsonl
from repro.dataset.records import CollectedTweet
from repro.dataset.stats import (
    DatasetStats,
    compute_stats,
    organ_mention_histogram,
    users_per_organ,
)

__all__ = [
    "CollectedTweet",
    "DatasetStats",
    "TweetCorpus",
    "UserSlice",
    "compute_stats",
    "organ_mention_histogram",
    "read_jsonl",
    "users_per_organ",
    "write_jsonl",
]
