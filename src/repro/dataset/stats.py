"""Dataset descriptive statistics (Table I and Fig. 2 of the paper).

All statistics follow the paper's definitions:

* *Organs mentioned / Tweet* — mean number of **distinct** organs per tweet
  (1.03 in the paper: multi-organ tweets are rare).
* *Organs mentioned / User* — mean number of distinct organs across each
  user's aggregated tweets (1.13: aggregation by user surfaces more
  multi-organ behaviour, the paper's argument for user-level modelling).
* Fig. 2a — number of users mentioning each organ (organ "popularity").
* Fig. 2b — number of tweets vs number of users mentioning exactly
  ``k`` organs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.corpus import TweetCorpus
from repro.organs import N_ORGANS, ORGANS, Organ


@dataclass(frozen=True, slots=True)
class DatasetStats:
    """Table I of the paper for one corpus.

    Attributes mirror Table I rows; ``start``/``finish`` are ISO dates.
    """

    start: str
    finish: str
    days: int
    tweets_collected: int
    n_users: int
    avg_tweets_per_day: float
    avg_tweets_per_user: float
    organs_per_tweet: float
    organs_per_user: float

    def as_rows(self) -> list[tuple[str, str]]:
        """(label, value) rows in Table I order, formatted for display."""
        return [
            ("Start Data Collection", self.start),
            ("Finish Data Collection", self.finish),
            ("Number of Days", str(self.days)),
            ("Tweets collected", f"{self.tweets_collected:,}"),
            ("Number of Users", f"{self.n_users:,}"),
            ("Avg. Tweets / Day", f"{self.avg_tweets_per_day:.0f}"),
            ("Avg. Tweets / User", f"{self.avg_tweets_per_user:.2f}"),
            ("Organs mentioned / Tweet", f"{self.organs_per_tweet:.2f}"),
            ("Organs mentioned / User", f"{self.organs_per_user:.2f}"),
        ]


def compute_stats(corpus: TweetCorpus) -> DatasetStats:
    """Compute Table I for a corpus."""
    start, finish = corpus.time_span()
    days = max(1, (finish.date() - start.date()).days + 1)
    n_tweets = len(corpus)
    n_users = corpus.n_users
    organs_per_tweet = float(
        np.mean([len(record.distinct_organs) for record in corpus])
    )
    organs_per_user = float(
        np.mean([len(user.distinct_organs) for user in corpus.user_slices()])
    )
    return DatasetStats(
        start=start.date().isoformat(),
        finish=finish.date().isoformat(),
        days=days,
        tweets_collected=n_tweets,
        n_users=n_users,
        avg_tweets_per_day=n_tweets / days,
        avg_tweets_per_user=n_tweets / n_users,
        organs_per_tweet=organs_per_tweet,
        organs_per_user=organs_per_user,
    )


def users_per_organ(corpus: TweetCorpus) -> dict[Organ, int]:
    """Fig. 2a: number of users mentioning each organ at least once."""
    counts = dict.fromkeys(ORGANS, 0)
    for user in corpus.user_slices():
        for organ in user.distinct_organs:
            counts[organ] += 1
    return counts


def organ_mention_histogram(corpus: TweetCorpus) -> dict[int, tuple[int, int]]:
    """Fig. 2b: ``k -> (n_tweets, n_users)`` mentioning exactly k organs.

    Keys run 1..N_ORGANS; zero-mention records cannot exist post-filter
    (collection guarantees at least one Subject term), but a 0 key is
    included if malformed data sneaks in, so anomalies stay visible.
    """
    tweet_counts = dict.fromkeys(range(N_ORGANS + 1), 0)
    user_counts = dict.fromkeys(range(N_ORGANS + 1), 0)
    for record in corpus:
        tweet_counts[len(record.distinct_organs)] += 1
    for user in corpus.user_slices():
        user_counts[len(user.distinct_organs)] += 1
    return {
        k: (tweet_counts[k], user_counts[k]) for k in range(N_ORGANS + 1)
    }
