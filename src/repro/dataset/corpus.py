"""The analysis corpus: an indexed collection of collected tweets.

Provides the two groupings every paper experiment needs — per user and per
state — plus time-window slicing for streaming/rolling analyses.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from datetime import datetime

from repro.dataset.records import CollectedTweet
from repro.errors import DatasetError
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class UserSlice:
    """All of one user's tweets, with aggregated mention counts.

    Attributes:
        user_id: the user.
        state: modal resolved state across the user's tweets.
        mention_counts: organ → total mentions across all tweets.
        n_tweets: number of collected tweets by this user.
    """

    user_id: int
    state: str | None
    mention_counts: Counter[Organ]
    n_tweets: int

    @property
    def distinct_organs(self) -> frozenset[Organ]:
        return frozenset(
            organ for organ, count in self.mention_counts.items() if count > 0
        )


class TweetCorpus:
    """Immutable container over collected tweets with per-user indexing.

    Args:
        records: collected tweets, any order.

    Raises:
        DatasetError: if constructed empty — every downstream matrix would
            be degenerate, so fail at the boundary.
    """

    def __init__(self, records: Iterable[CollectedTweet]):
        self._records: tuple[CollectedTweet, ...] = tuple(records)
        if not self._records:
            raise DatasetError("corpus must contain at least one record")
        by_user: dict[int, list[CollectedTweet]] = defaultdict(list)
        for record in self._records:
            by_user[record.user_id].append(record)
        self._users: dict[int, UserSlice] = {
            user_id: _build_slice(user_id, tweets)
            for user_id, tweets in by_user.items()
        }

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[CollectedTweet]:
        return iter(self._records)

    @property
    def records(self) -> tuple[CollectedTweet, ...]:
        return self._records

    @property
    def n_users(self) -> int:
        return len(self._users)

    def user_ids(self) -> list[int]:
        """User ids in deterministic (sorted) order — the row order of Û."""
        return sorted(self._users)

    def user_slice(self, user_id: int) -> UserSlice:
        """One user's aggregated view.

        Raises:
            DatasetError: if the user has no tweets in this corpus.
        """
        user = self._users.get(user_id)
        if user is None:
            raise DatasetError(f"user {user_id} not in corpus")
        return user

    def user_slices(self) -> list[UserSlice]:
        """All user slices, ordered by :meth:`user_ids`."""
        return [self._users[user_id] for user_id in self.user_ids()]

    def states(self) -> list[str]:
        """Distinct states present, sorted."""
        return sorted(
            {user.state for user in self._users.values() if user.state is not None}
        )

    def filter(self, predicate) -> "TweetCorpus":
        """A new corpus with only records matching ``predicate``.

        Raises:
            DatasetError: if nothing matches.
        """
        return TweetCorpus(record for record in self._records if predicate(record))

    def in_window(self, start: datetime, end: datetime) -> "TweetCorpus":
        """Records with ``start <= created_at < end``."""
        return self.filter(
            lambda record: start <= record.tweet.created_at < end
        )

    def time_span(self) -> tuple[datetime, datetime]:
        """(earliest, latest) tweet timestamps."""
        times = [record.tweet.created_at for record in self._records]
        return min(times), max(times)


def _build_slice(user_id: int, tweets: list[CollectedTweet]) -> UserSlice:
    counts: Counter[Organ] = Counter()
    state_votes: Counter[str] = Counter()
    for record in tweets:
        counts.update(record.mentions)
        if record.state is not None:
            state_votes[record.state] += 1
    state = state_votes.most_common(1)[0][0] if state_votes else None
    return UserSlice(
        user_id=user_id,
        state=state,
        mention_counts=counts,
        n_tweets=len(tweets),
    )
