"""repro — reproduction of *Characterizing Organ Donation Awareness from
Social Media* (Pacheco, Pinheiro, Cadeiras, Menezes; ICDE 2017).

Quickstart::

    from repro import (
        CollectionPipeline, ExperimentSuite, SyntheticWorld, paper2016_scenario,
    )

    world = SyntheticWorld(paper2016_scenario(scale=0.02, seed=7))
    corpus, report = CollectionPipeline().run(world.firehose())
    suite = ExperimentSuite(corpus, report)
    print(suite.run_table1().render())
    print(suite.run_fig5().render())

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured comparison of every table and figure.
"""

from repro.config import (
    AnalysisConfig,
    CollectionConfig,
    RelativeRiskConfig,
    StateClusteringConfig,
    UserClusteringConfig,
)
from repro.core import (
    AttentionMatrix,
    OrganCharacterization,
    RegionCharacterization,
    StateClustering,
    UserClustering,
    build_attention_matrix,
    characterize_organs,
    characterize_regions,
    cluster_states,
    cluster_users,
    highlighted_organs,
)
from repro.dataset import TweetCorpus, compute_stats, read_jsonl, write_jsonl
from repro.errors import ReproError
from repro.organs import ORGANS, Organ
from repro.pipeline import CollectionPipeline, PipelineReport
from repro.report.experiments import ExperimentSuite
from repro.sensor import AwarenessSnapshot, RollingAwarenessSensor
from repro.synth import SyntheticWorld, null_uniform_scenario, paper2016_scenario
from repro.synth.calibration import check_calibration

__version__ = "1.0.0"

__all__ = [
    "AnalysisConfig",
    "AttentionMatrix",
    "AwarenessSnapshot",
    "CollectionConfig",
    "CollectionPipeline",
    "ExperimentSuite",
    "ORGANS",
    "Organ",
    "OrganCharacterization",
    "PipelineReport",
    "RegionCharacterization",
    "RelativeRiskConfig",
    "ReproError",
    "RollingAwarenessSensor",
    "StateClustering",
    "StateClusteringConfig",
    "SyntheticWorld",
    "TweetCorpus",
    "UserClustering",
    "UserClusteringConfig",
    "build_attention_matrix",
    "characterize_organs",
    "characterize_regions",
    "check_calibration",
    "cluster_states",
    "cluster_users",
    "compute_stats",
    "highlighted_organs",
    "null_uniform_scenario",
    "paper2016_scenario",
    "read_jsonl",
    "write_jsonl",
    "__version__",
]
