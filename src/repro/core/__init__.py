"""The paper's characterization method (§III-B) and analyses (§IV).

The method characterizes *entities* (users) by the attention they give to
a set of *targets* (organs), then aggregates:

1. :mod:`repro.core.attention` — the row-normalized user contingency
   matrix Û, where row i is user i's attention distribution over organs.
2. :mod:`repro.core.membership` — membership-indicator matrices L: by
   most-cited organ (Eq. 1) or by region of residence (Eq. 2).
3. :mod:`repro.core.aggregation` — the aggregation K = (LᵀL)⁻¹LᵀÛ
   (Eq. 3): each row of K is a group's mean attention distribution.
4. :mod:`repro.core.relative_risk` — highlighted organs per state via
   relative risk of organ-conversation prevalence (Eq. 4).
5. :mod:`repro.core.state_clusters` / :mod:`repro.core.user_clusters` —
   the Fig. 6 hierarchical state clustering and Fig. 7 K-Means user
   clustering.

:mod:`repro.core.characterize` wraps 1–3 into the two facades most callers
want: :class:`~repro.core.characterize.OrganCharacterization` and
:class:`~repro.core.characterize.RegionCharacterization`.
"""

from repro.core.attention import AttentionMatrix, build_attention_matrix
from repro.core.aggregation import aggregate, ranked_profile
from repro.core.characterize import (
    OrganCharacterization,
    RegionCharacterization,
    characterize_organs,
    characterize_regions,
)
from repro.core.membership import (
    Membership,
    by_most_cited_organ,
    by_region,
)
from repro.core.relative_risk import (
    StateOrganRisk,
    highlighted_organs,
    state_organ_risks,
)
from repro.core.state_clusters import StateClustering, cluster_states
from repro.core.user_clusters import (
    KSelectionSweep,
    UserClustering,
    cluster_users,
    sweep_k,
)

__all__ = [
    "AttentionMatrix",
    "KSelectionSweep",
    "Membership",
    "OrganCharacterization",
    "RegionCharacterization",
    "StateClustering",
    "StateOrganRisk",
    "UserClustering",
    "aggregate",
    "build_attention_matrix",
    "by_most_cited_organ",
    "by_region",
    "characterize_organs",
    "characterize_regions",
    "cluster_states",
    "cluster_users",
    "highlighted_organs",
    "ranked_profile",
    "state_organ_risks",
    "sweep_k",
]
