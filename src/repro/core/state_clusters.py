"""Hierarchical clustering of states (Fig. 6, §IV-B2).

States (rows of K) are clustered by the similarity of their organ-attention
distributions using agglomerative clustering with the Bhattacharyya
distance — "more suitable for discrete probability distributions … than
other metrics, such as Euclidean distance" (Kailath 1967).

The deliverables of Fig. 6 are all exposed: the similarity (distance)
matrix, the dendrogram, the left-to-right leaf ordering the paper reads
zones from, and flat cuts at any cluster count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.agglomerative import AgglomerativeClustering, Dendrogram
from repro.cluster.distances import pairwise_distances
from repro.config import StateClusteringConfig
from repro.core.characterize import RegionCharacterization


@dataclass(frozen=True, slots=True)
class StateClustering:
    """Fig. 6 artifacts.

    Attributes:
        states: row labels, aligned with ``distance_matrix``.
        distance_matrix: (r, r) pairwise affinity (lower = more similar).
        dendrogram: the full merge tree.
        config: the clustering configuration used.
    """

    states: tuple[str, ...]
    distance_matrix: np.ndarray
    dendrogram: Dendrogram
    config: StateClusteringConfig

    def leaf_order(self) -> list[str]:
        """States in dendrogram left-to-right order (the Fig. 6 axis)."""
        return [self.states[index] for index in self.dendrogram.leaf_order()]

    def cut(self, n_clusters: int) -> dict[str, int]:
        """State → cluster label for a flat cut of the tree."""
        labels = self.dendrogram.cut(n_clusters)
        return {state: int(label) for state, label in zip(self.states, labels)}

    def clusters(self, n_clusters: int) -> list[tuple[str, ...]]:
        """Flat clusters as tuples of states, ordered by first appearance."""
        assignment = self.cut(n_clusters)
        groups: dict[int, list[str]] = {}
        for state in self.leaf_order():
            groups.setdefault(assignment[state], []).append(state)
        # groups is inserted in leaf order, so .values() iteration is
        # deterministic here (insertion-ordered by construction).
        return [tuple(members) for members in groups.values()]  # reprolint: disable=RPL003


def cluster_states(
    characterization: RegionCharacterization,
    config: StateClusteringConfig | None = None,
) -> StateClustering:
    """Run the Fig. 6 analysis on a region characterization."""
    config = config or StateClusteringConfig()
    matrix = characterization.matrix_k()
    distances = pairwise_distances(matrix, metric=config.affinity)
    dendrogram = AgglomerativeClustering(linkage=config.linkage).fit(distances)
    return StateClustering(
        states=characterization.states,
        distance_matrix=distances,
        dendrogram=dendrogram,
        config=config,
    )
