"""The user attention matrix Û (§III-B).

Users are represented by the *attention* they give to organs, measured as
frequencies of mention in the donation context.  Formally, m users and n
organs form a normalized contingency matrix Û = [û_ij] with rows summing
to 1 — each row fully represents one user.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.corpus import TweetCorpus
from repro.errors import CharacterizationError
from repro.organs import N_ORGANS, ORGANS, Organ


@dataclass(frozen=True, slots=True)
class AttentionMatrix:
    """Û plus its row/column index metadata.

    Attributes:
        user_ids: row labels — user id per row, in sorted order.
        states: resolved state per row (aligned with ``user_ids``).
        counts: (m, n) raw mention counts U.
        normalized: (m, n) row-normalized Û; every row sums to 1.
    """

    user_ids: tuple[int, ...]
    states: tuple[str | None, ...]
    counts: np.ndarray
    normalized: np.ndarray

    @property
    def n_users(self) -> int:
        return len(self.user_ids)

    @property
    def n_organs(self) -> int:
        return self.counts.shape[1]

    def row_for_user(self, user_id: int) -> np.ndarray:
        """One user's attention distribution.

        Raises:
            CharacterizationError: if the user is not a row of Û.
        """
        try:
            index = self.user_ids.index(user_id)
        except ValueError:
            raise CharacterizationError(
                f"user {user_id} is not in the attention matrix"
            ) from None
        return self.normalized[index]

    def most_cited(self) -> np.ndarray:
        """(m,) argmax organ index per user, with symmetric tie-breaking.

        Ties are common here: most users have very few tweets, so exact
        attention ties (e.g. one heart and one kidney mention) occur often.
        Breaking ties toward a fixed column would systematically transfer
        co-attention mass toward low-index organs, distorting every
        aggregation; instead ties break by a deterministic hash of the
        user id, which is reproducible and unbiased across organs.  (The
        paper's Eq. 1 leaves tie handling unspecified.)
        """
        normalized = self.normalized
        best = normalized.max(axis=1, keepdims=True)
        is_tied_max = normalized >= best - 1e-12
        choice = np.argmax(is_tied_max, axis=1)
        tie_rows = np.flatnonzero(is_tied_max.sum(axis=1) > 1)
        for row in tie_rows:
            candidates = np.flatnonzero(is_tied_max[row])
            hashed = (self.user_ids[row] * 2654435761) % (2**32)
            choice[row] = candidates[hashed % candidates.size]
        return choice.astype(np.int64)

    def most_cited_organ(self, user_id: int) -> Organ:
        try:
            index = self.user_ids.index(user_id)
        except ValueError:
            raise CharacterizationError(
                f"user {user_id} is not in the attention matrix"
            ) from None
        return ORGANS[int(self.most_cited()[index])]


def build_attention_matrix(corpus: TweetCorpus) -> AttentionMatrix:
    """Build U and Û from a corpus, one row per user.

    Every collected tweet carries at least one organ mention (pipeline
    invariant), so no row can be all-zero; an all-zero row would indicate
    corpus corruption and raises.
    """
    slices = corpus.user_slices()
    m = len(slices)
    counts = np.zeros((m, N_ORGANS), dtype=float)
    user_ids: list[int] = []
    states: list[str | None] = []
    for row, user in enumerate(slices):
        user_ids.append(user.user_id)
        states.append(user.state)
        for organ, count in user.mention_counts.items():
            counts[row, organ.index] = float(count)
    row_sums = counts.sum(axis=1)
    if np.any(row_sums <= 0):
        bad = [user_ids[i] for i in np.flatnonzero(row_sums <= 0)[:5]]
        raise CharacterizationError(
            f"users with zero organ mentions cannot be characterized: {bad}"
        )
    normalized = counts / row_sums[:, None]
    return AttentionMatrix(
        user_ids=tuple(user_ids),
        states=tuple(states),
        counts=counts,
        normalized=normalized,
    )
