"""Highlighted organs per state via relative risk (Eq. 4, §IV-B1).

A winner-takes-all reading of state signatures picks heart everywhere,
because some organs are simply more prevalent.  The paper instead computes
the relative risk of each organ's conversation *prevalence* inside vs
outside each state, and highlights an organ in a state when the lower
limit of the 95% CI of log(RR) exceeds zero.

Prevalence is user-level: the fraction of a state's users who mention the
organ at least once, matching the paper's user-based characterization.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.config import RelativeRiskConfig
from repro.dataset.corpus import TweetCorpus
from repro.organs import ORGANS, Organ
from repro.stats.proportions import RelativeRiskResult, relative_risk


@dataclass(frozen=True, slots=True)
class StateOrganRisk:
    """Relative risk of one organ's conversation in one state.

    Attributes:
        state: USPS state code.
        organ: the organ tested.
        result: RR point estimate and CI.
        n_state_users: located users in the state.
        n_outside_users: located users outside the state.
        insufficient_data: True when the state had fewer users than the
            configured minimum; such states are never flagged.
    """

    state: str
    organ: Organ
    result: RelativeRiskResult
    n_state_users: int
    n_outside_users: int
    insufficient_data: bool

    @property
    def highlighted(self) -> bool:
        """The paper's criterion: significant excess, with enough data."""
        return not self.insufficient_data and self.result.significant_excess


def state_organ_risks(
    corpus: TweetCorpus, config: RelativeRiskConfig | None = None
) -> list[StateOrganRisk]:
    """Compute RR for every (state, organ) pair in the corpus.

    Results are ordered by state then canonical organ order.  Every state
    seen in the corpus yields a row per organ: a single-state corpus has
    no outside population to compare against, so its rows carry an
    undefined RR and ``insufficient_data=True`` instead of being silently
    omitted.
    """
    config = config or RelativeRiskConfig()
    users_by_state: dict[str, int] = Counter()
    mentions_by_state: dict[str, Counter[Organ]] = defaultdict(Counter)
    total_mentions: Counter[Organ] = Counter()
    total_users = 0

    for user in corpus.user_slices():
        if user.state is None:
            continue
        total_users += 1
        users_by_state[user.state] += 1
        for organ in user.distinct_organs:
            mentions_by_state[user.state][organ] += 1
            total_mentions[organ] += 1

    risks: list[StateOrganRisk] = []
    for state in sorted(users_by_state):
        n_state = users_by_state[state]
        n_outside = total_users - n_state
        insufficient = n_state < config.min_users or n_outside <= 0
        for organ in ORGANS:
            inside = mentions_by_state[state][organ]
            outside = total_mentions[organ] - inside
            if n_outside <= 0:
                # Single-state corpus: RR's denominator population is
                # empty, so the estimate is undefined — report the pair
                # rather than dropping the state from the output.
                result = _undefined_rr(config.alpha)
            else:
                result = relative_risk(
                    events_exposed=inside,
                    n_exposed=n_state,
                    events_control=outside,
                    n_control=n_outside,
                    alpha=config.alpha,
                )
            risks.append(
                StateOrganRisk(
                    state=state,
                    organ=organ,
                    result=result,
                    n_state_users=n_state,
                    n_outside_users=n_outside,
                    insufficient_data=insufficient,
                )
            )
    return risks


def _undefined_rr(alpha: float) -> RelativeRiskResult:
    """The degenerate RR for a comparison with no control population."""
    return RelativeRiskResult(
        rr=math.nan,
        log_rr=math.nan,
        se_log_rr=math.inf,
        ci_low=0.0,
        ci_high=math.inf,
        alpha=alpha,
    )


def highlighted_organs(
    corpus: TweetCorpus, config: RelativeRiskConfig | None = None
) -> dict[str, tuple[Organ, ...]]:
    """Fig. 5: state → organs with significant conversation excess.

    States with no highlighted organ map to an empty tuple, mirroring the
    paper's "for some states there are no significant excess for any
    organ" observation.
    """
    by_state: dict[str, list[Organ]] = defaultdict(list)
    states_seen: set[str] = set()
    for risk in state_organ_risks(corpus, config):
        states_seen.add(risk.state)
        if risk.highlighted:
            by_state[risk.state].append(risk.organ)
    return {state: tuple(by_state.get(state, ())) for state in sorted(states_seen)}
