"""Entity-agnostic characterization — the method behind the paper.

The paper adapts a characterization originally built for football
supporters (Pacheco et al. 2016, its ref [12]) to organs.  Nothing in the
math is organ-specific: entities (users) are characterized by attention
over any target set, then aggregated through a membership matrix.  This
module exposes that generic form, so downstream users can characterize
*their* target sets (teams, brands, diseases…) with the same pipeline:

    attention = GenericAttention.from_counts(ids, labels, counts)
    profile = aggregate_by_top_target(attention)

The organ-specific :mod:`repro.core.attention` is a thin specialization of
this machinery with the six-organ column set baked in.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.membership import Membership
from repro.errors import CharacterizationError, EmptyGroupError


@dataclass(frozen=True, slots=True)
class GenericAttention:
    """A row-normalized attention matrix over arbitrary targets.

    Attributes:
        entity_ids: row labels (hashable entity identifiers).
        target_labels: column labels (the target vocabulary).
        normalized: (m, n) matrix; every row sums to 1.
    """

    entity_ids: tuple
    target_labels: tuple[str, ...]
    normalized: np.ndarray

    @classmethod
    def from_counts(
        cls,
        entity_ids: list,
        target_labels: list[str],
        counts: np.ndarray,
    ) -> "GenericAttention":
        """Build from a raw (m, n) count matrix.

        Raises:
            CharacterizationError: on shape mismatch, duplicate labels, or
                any all-zero row (an entity with no attention is
                uncharacterizable).
        """
        matrix = np.asarray(counts, dtype=float)
        if matrix.ndim != 2:
            raise CharacterizationError(
                f"counts must be 2-D, got shape {matrix.shape}"
            )
        if matrix.shape != (len(entity_ids), len(target_labels)):
            raise CharacterizationError(
                f"counts shape {matrix.shape} does not match "
                f"{len(entity_ids)} entities × {len(target_labels)} targets"
            )
        if len(set(target_labels)) != len(target_labels):
            raise CharacterizationError("target labels must be unique")
        if np.any(matrix < 0):
            raise CharacterizationError("counts must be non-negative")
        row_sums = matrix.sum(axis=1)
        if np.any(row_sums <= 0):
            bad = [entity_ids[i] for i in np.flatnonzero(row_sums <= 0)[:5]]
            raise CharacterizationError(f"entities with zero attention: {bad}")
        return cls(
            entity_ids=tuple(entity_ids),
            target_labels=tuple(target_labels),
            normalized=matrix / row_sums[:, None],
        )

    @property
    def n_entities(self) -> int:
        return len(self.entity_ids)

    def top_target(self) -> np.ndarray:
        """(m,) argmax target index per entity (deterministic hash ties)."""
        best = self.normalized.max(axis=1, keepdims=True)
        is_tied = self.normalized >= best - 1e-12
        choice = np.argmax(is_tied, axis=1)
        for row in np.flatnonzero(is_tied.sum(axis=1) > 1):
            candidates = np.flatnonzero(is_tied[row])
            hashed = (hash(self.entity_ids[row]) * 2654435761) % (2**32)
            choice[row] = candidates[hashed % candidates.size]
        return choice.astype(np.int64)


@dataclass(frozen=True, slots=True)
class GenericAggregation:
    """K for a generic attention matrix."""

    group_labels: tuple[str, ...]
    target_labels: tuple[str, ...]
    matrix: np.ndarray
    group_sizes: tuple[int, ...]

    def profile(self, group: str) -> list[tuple[str, float]]:
        """One group's ranked (target, attention) profile."""
        try:
            index = self.group_labels.index(group)
        except ValueError:
            raise KeyError(f"group {group!r} not in aggregation") from None
        row = self.matrix[index]
        order = np.argsort(-row, kind="stable")
        return [(self.target_labels[int(i)], float(row[int(i)])) for i in order]


def aggregate_generic(
    attention: GenericAttention, membership: Membership
) -> GenericAggregation:
    """Eq. 3 over arbitrary targets: K = (LᵀL)⁻¹ Lᵀ Û, dropping empty groups."""
    if membership.assignments.shape[0] != attention.n_entities:
        raise CharacterizationError(
            f"membership covers {membership.assignments.shape[0]} entities "
            f"but Û has {attention.n_entities} rows"
        )
    sizes = membership.group_sizes()
    keep = np.flatnonzero(sizes > 0)
    if keep.size == 0:
        raise EmptyGroupError("<all>")
    indicator = membership.indicator_matrix()[:, keep]
    gram = indicator.T @ indicator
    matrix = np.linalg.inv(gram) @ (indicator.T @ attention.normalized)
    return GenericAggregation(
        group_labels=tuple(membership.group_labels[int(i)] for i in keep),
        target_labels=attention.target_labels,
        matrix=matrix,
        group_sizes=tuple(int(sizes[int(i)]) for i in keep),
    )


def aggregate_by_top_target(attention: GenericAttention) -> GenericAggregation:
    """Eq. 1 + Eq. 3 for arbitrary targets: group entities by their most
    attended target and aggregate."""
    membership = Membership(
        group_labels=attention.target_labels,
        assignments=attention.top_target(),
    )
    return aggregate_generic(attention, membership)


def aggregate_by_groups(
    attention: GenericAttention, groups: dict, labels: list[str] | None = None
) -> GenericAggregation:
    """Eq. 2 + Eq. 3 for arbitrary targets.

    Args:
        attention: the Û matrix.
        groups: entity id → group label; entities absent from the mapping
            are excluded.
        labels: explicit group label order (default: sorted labels seen).
    """
    if labels is None:
        labels = sorted({groups[e] for e in attention.entity_ids if e in groups})
    if not labels:
        raise CharacterizationError("no groups to aggregate")
    index_of = {label: i for i, label in enumerate(labels)}
    assignments = np.array(
        [
            index_of.get(groups.get(entity), -1)
            if groups.get(entity) is not None
            else -1
            for entity in attention.entity_ids
        ],
        dtype=np.int64,
    )
    membership = Membership(group_labels=tuple(labels), assignments=assignments)
    return aggregate_generic(attention, membership)
