"""The aggregation K = (LᵀL)⁻¹ Lᵀ Û (Eq. 3).

For a one-hot membership L, LᵀL is the diagonal matrix of group sizes, so
K's rows are exactly the group-mean attention distributions.  The
implementation computes the literal linear-algebra form on the dense L
(validated by property tests against the group-mean identity) while
guarding the singularity the formula hides: a group with zero members
makes LᵀL non-invertible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attention import AttentionMatrix
from repro.core.membership import Membership
from repro.errors import EmptyGroupError
from repro.organs import ORGANS, Organ


@dataclass(frozen=True, slots=True)
class Aggregation:
    """K with its group metadata.

    Attributes:
        group_labels: row labels of K (groups that survived aggregation).
        matrix: (n_groups, n_organs) aggregated attention; rows sum to 1.
        group_sizes: members per surviving group, aligned with rows.
    """

    group_labels: tuple[str, ...]
    matrix: np.ndarray
    group_sizes: tuple[int, ...]

    def row(self, label: str) -> np.ndarray:
        """One group's aggregated attention distribution.

        Raises:
            KeyError: if the group is absent (e.g. dropped as empty).
        """
        try:
            index = self.group_labels.index(label)
        except ValueError:
            raise KeyError(f"group {label!r} not in aggregation") from None
        return self.matrix[index]


def aggregate(
    attention: AttentionMatrix,
    membership: Membership,
    on_empty: str = "drop",
) -> Aggregation:
    """Compute K = (LᵀL)⁻¹ Lᵀ Û (Eq. 3).

    Args:
        attention: the Û matrix.
        membership: the L matrix (as assignments).
        on_empty: ``"drop"`` removes empty groups from K (the paper's Fig. 4
            simply has no bar for states with no users); ``"raise"`` raises
            :class:`repro.errors.EmptyGroupError` instead.

    Raises:
        EmptyGroupError: when ``on_empty="raise"`` and a group is empty.
        ValueError: on an unknown ``on_empty`` policy or misaligned shapes.
    """
    if on_empty not in ("drop", "raise"):
        raise ValueError(f"on_empty must be 'drop' or 'raise', got {on_empty!r}")
    if membership.assignments.shape[0] != attention.n_users:
        raise ValueError(
            f"membership covers {membership.assignments.shape[0]} users but "
            f"Û has {attention.n_users} rows"
        )
    sizes = membership.group_sizes()
    empty = np.flatnonzero(sizes == 0)
    if empty.size and on_empty == "raise":
        raise EmptyGroupError(membership.group_labels[int(empty[0])])

    keep = np.flatnonzero(sizes > 0)
    indicator = membership.indicator_matrix()[:, keep]
    # Literal Eq. 3.  LᵀL is diagonal (one-hot rows), but we compute the
    # inverse explicitly to stay faithful to the published formula; the
    # group-mean identity is enforced by property tests.
    gram = indicator.T @ indicator
    k_matrix = np.linalg.inv(gram) @ (indicator.T @ attention.normalized)
    return Aggregation(
        group_labels=tuple(membership.group_labels[int(i)] for i in keep),
        matrix=k_matrix,
        group_sizes=tuple(int(sizes[int(i)]) for i in keep),
    )


def ranked_profile(row: np.ndarray) -> list[tuple[Organ, float]]:
    """A K row as (organ, attention) pairs, highest attention first.

    This is the presentation of Fig. 3/Fig. 4: "histogram bars … ranked
    based on mentions".
    """
    order = np.argsort(-row, kind="stable")
    return [(ORGANS[int(i)], float(row[int(i)])) for i in order]
