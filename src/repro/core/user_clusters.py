"""K-Means user clustering and model selection (Fig. 7, §IV-C).

Users are clustered by their *full* attention distribution (rows of Û),
not just the argmax organ.  The paper chooses k = 12 after comparing
inertia, average cluster size, and silhouette coefficient across k, noting
k must be at least the number of organs so each organ can own a cluster.

The k-sweep is the model-selection hot path — |ks| independent fits of
the full matrix — so :func:`sweep_k` can fan the candidate ks across
worker processes; the sweep result is identical for any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.kmeans import KMeans, KMeansResult
from repro.cluster.silhouette import silhouette_score
from repro.config import UserClusteringConfig
from repro.core.aggregation import ranked_profile
from repro.core.attention import AttentionMatrix
from repro.errors import ClusteringError
from repro.faults.compute import WorkerFaultPlan
from repro.organs import N_ORGANS, Organ
from repro.supervise import SupervisorPolicy, run_supervised

#: Silhouette subsample cap; full silhouette is O(m²) and the paper-scale
#: matrix has ~72k rows.
_SILHOUETTE_SAMPLE = 4000


@dataclass(frozen=True, slots=True)
class UserClustering:
    """Fig. 7 artifacts for one k.

    Attributes:
        result: the winning K-Means fit.
        silhouette: mean silhouette (possibly subsampled).
        avg_cluster_size: mean cluster size in users.
    """

    result: KMeansResult
    silhouette: float
    avg_cluster_size: float

    @property
    def k(self) -> int:
        return self.result.k

    def cluster_profile(self, cluster: int) -> list[tuple[Organ, float]]:
        """Ranked organ profile of one cluster center (a Fig. 7 panel)."""
        if not 0 <= cluster < self.k:
            raise ClusteringError(
                f"cluster must be in [0, {self.k}), got {cluster}"
            )
        return ranked_profile(self.result.centers[cluster])

    def relative_sizes(self) -> np.ndarray:
        """(k,) fraction of users per cluster (Fig. 7's relative sizes)."""
        sizes = self.result.cluster_sizes().astype(float)
        return sizes / sizes.sum()

    def n_focus_organs(self, cluster: int, threshold: float = 0.15) -> int:
        """How many organs a cluster meaningfully focuses on.

        Fig. 7's qualitative read: single-, dual-, and triple-organ
        clusters, plus broad clusters mentioning "virtually all organs".
        """
        center = self.result.centers[cluster]
        return int(np.count_nonzero(center >= threshold))


@dataclass(frozen=True, slots=True)
class KSelectionSweep:
    """Model-selection evidence across a range of k.

    Attributes:
        ks: the k values evaluated.
        inertias: winning inertia per k (monotone non-increasing in k, up
            to restart noise).
        silhouettes: mean silhouette per k.
        avg_sizes: average cluster size per k.
    """

    ks: tuple[int, ...]
    inertias: tuple[float, ...]
    silhouettes: tuple[float, ...]
    avg_sizes: tuple[float, ...]

    def best_k_by_silhouette(self) -> int:
        return self.ks[int(np.argmax(self.silhouettes))]


def cluster_users(
    attention: AttentionMatrix, config: UserClusteringConfig | None = None
) -> UserClustering:
    """Run the Fig. 7 user clustering."""
    config = config or UserClusteringConfig()
    if config.k < N_ORGANS:
        # The paper's constraint: at least one cluster per organ.
        raise ClusteringError(
            f"k must be >= {N_ORGANS} (one cluster per organ), got {config.k}"
        )
    result = KMeans(
        k=config.k,
        n_init=config.n_init,
        max_iter=config.max_iter,
        tol=config.tol,
        seed=config.seed,
        workers=config.workers,
    ).fit(attention.normalized)
    score = silhouette_score(
        attention.normalized,
        result.labels,
        sample_size=_SILHOUETTE_SAMPLE,
        seed=config.seed,
        memory_budget_mb=config.silhouette_memory_mb,
    )
    return UserClustering(
        result=result,
        silhouette=score,
        avg_cluster_size=attention.n_users / config.k,
    )


def sweep_k(
    attention: AttentionMatrix,
    ks: tuple[int, ...] = tuple(range(N_ORGANS, 21)),
    config: UserClusteringConfig | None = None,
    workers: int = 1,
    supervisor: SupervisorPolicy | None = None,
    worker_faults: WorkerFaultPlan | None = None,
) -> KSelectionSweep:
    """Evaluate K-Means across candidate k (the paper's selection step).

    With ``workers > 1`` the candidate ks fan out across supervised
    worker processes, one independent fit per k; each in-process fit then
    runs its restarts serially (nesting pools would oversubscribe).  The
    sweep is deterministic and identical for any worker count and any
    recoverable fault schedule; a candidate k quarantined after
    exhausting its retries raises — a model-selection curve with silent
    holes would bias the chosen k.

    Args:
        supervisor: retry/deadline policy for the supervised pool; forces
            the supervised path even at ``workers=1``.
        worker_faults: compute-fault plan injected into sweep workers
            (chaos testing); forces the supervised path even at
            ``workers=1``.

    Raises:
        ClusteringError: if ``workers`` is not a positive integer, or a
            candidate k was quarantined by the supervisor.
    """
    base = config or UserClusteringConfig()
    if workers < 1:
        raise ClusteringError(f"workers must be >= 1, got {workers}")
    supervised = supervisor is not None or worker_faults is not None
    if workers == 1 and not supervised:
        evaluations = [_evaluate_one_k(attention, k, base) for k in ks]
    else:
        outcomes, health = run_supervised(
            _sweep_point_task,
            [(attention, k, base) for k in ks],
            workers=min(workers, max(len(ks), 1)),
            policy=supervisor,
            fault_plan=worker_faults,
            labels=[f"k={k}" for k in ks],
        )
        if health.degraded:
            lost = ", ".join(letter.label for letter in health.dead_letters)
            raise ClusteringError(
                "k-sweep candidates were quarantined after exhausting "
                f"retries ({lost}); refusing to select k from a curve "
                "with holes"
            )
        evaluations = [outcome for outcome in outcomes if outcome is not None]
    inertias, silhouettes, avg_sizes = (
        zip(*evaluations) if evaluations else ((), (), ())
    )
    return KSelectionSweep(
        ks=tuple(ks),
        inertias=tuple(inertias),
        silhouettes=tuple(silhouettes),
        avg_sizes=tuple(avg_sizes),
    )


def _sweep_point_task(
    payload: tuple[AttentionMatrix, int, UserClusteringConfig],
) -> tuple[float, float, float]:
    """Worker entry point: unpack one supervised-pool sweep point."""
    attention, k, base = payload
    return _evaluate_one_k(attention, k, base)


def _evaluate_one_k(
    attention: AttentionMatrix, k: int, base: UserClusteringConfig
) -> tuple[float, float, float]:
    """One sweep point: (inertia, silhouette, avg size) for one k.

    Module-level so sweep workers can unpickle it.  Restarts stay serial
    inside a sweep worker — the sweep itself is the fan-out axis.
    """
    clustering = cluster_users(
        attention,
        UserClusteringConfig(
            k=k,
            n_init=base.n_init,
            max_iter=base.max_iter,
            tol=base.tol,
            seed=base.seed,
            silhouette_memory_mb=base.silhouette_memory_mb,
        ),
    )
    return (
        clustering.result.inertia,
        clustering.silhouette,
        clustering.avg_cluster_size,
    )
