"""K-Means user clustering and model selection (Fig. 7, §IV-C).

Users are clustered by their *full* attention distribution (rows of Û),
not just the argmax organ.  The paper chooses k = 12 after comparing
inertia, average cluster size, and silhouette coefficient across k, noting
k must be at least the number of organs so each organ can own a cluster.

The k-sweep is the model-selection hot path — |ks| independent fits of
the full matrix — so :func:`sweep_k` can fan the candidate ks across
worker processes; the sweep result is identical for any worker count.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from itertools import repeat

import numpy as np

from repro.cluster.kmeans import KMeans, KMeansResult
from repro.cluster.silhouette import silhouette_score
from repro.config import UserClusteringConfig
from repro.core.aggregation import ranked_profile
from repro.core.attention import AttentionMatrix
from repro.errors import ClusteringError
from repro.organs import N_ORGANS, Organ
from repro.procpool import pool_context

#: Silhouette subsample cap; full silhouette is O(m²) and the paper-scale
#: matrix has ~72k rows.
_SILHOUETTE_SAMPLE = 4000


@dataclass(frozen=True, slots=True)
class UserClustering:
    """Fig. 7 artifacts for one k.

    Attributes:
        result: the winning K-Means fit.
        silhouette: mean silhouette (possibly subsampled).
        avg_cluster_size: mean cluster size in users.
    """

    result: KMeansResult
    silhouette: float
    avg_cluster_size: float

    @property
    def k(self) -> int:
        return self.result.k

    def cluster_profile(self, cluster: int) -> list[tuple[Organ, float]]:
        """Ranked organ profile of one cluster center (a Fig. 7 panel)."""
        if not 0 <= cluster < self.k:
            raise ClusteringError(
                f"cluster must be in [0, {self.k}), got {cluster}"
            )
        return ranked_profile(self.result.centers[cluster])

    def relative_sizes(self) -> np.ndarray:
        """(k,) fraction of users per cluster (Fig. 7's relative sizes)."""
        sizes = self.result.cluster_sizes().astype(float)
        return sizes / sizes.sum()

    def n_focus_organs(self, cluster: int, threshold: float = 0.15) -> int:
        """How many organs a cluster meaningfully focuses on.

        Fig. 7's qualitative read: single-, dual-, and triple-organ
        clusters, plus broad clusters mentioning "virtually all organs".
        """
        center = self.result.centers[cluster]
        return int(np.count_nonzero(center >= threshold))


@dataclass(frozen=True, slots=True)
class KSelectionSweep:
    """Model-selection evidence across a range of k.

    Attributes:
        ks: the k values evaluated.
        inertias: winning inertia per k (monotone non-increasing in k, up
            to restart noise).
        silhouettes: mean silhouette per k.
        avg_sizes: average cluster size per k.
    """

    ks: tuple[int, ...]
    inertias: tuple[float, ...]
    silhouettes: tuple[float, ...]
    avg_sizes: tuple[float, ...]

    def best_k_by_silhouette(self) -> int:
        return self.ks[int(np.argmax(self.silhouettes))]


def cluster_users(
    attention: AttentionMatrix, config: UserClusteringConfig | None = None
) -> UserClustering:
    """Run the Fig. 7 user clustering."""
    config = config or UserClusteringConfig()
    if config.k < N_ORGANS:
        # The paper's constraint: at least one cluster per organ.
        raise ClusteringError(
            f"k must be >= {N_ORGANS} (one cluster per organ), got {config.k}"
        )
    result = KMeans(
        k=config.k,
        n_init=config.n_init,
        max_iter=config.max_iter,
        tol=config.tol,
        seed=config.seed,
        workers=config.workers,
    ).fit(attention.normalized)
    score = silhouette_score(
        attention.normalized,
        result.labels,
        sample_size=_SILHOUETTE_SAMPLE,
        seed=config.seed,
        memory_budget_mb=config.silhouette_memory_mb,
    )
    return UserClustering(
        result=result,
        silhouette=score,
        avg_cluster_size=attention.n_users / config.k,
    )


def sweep_k(
    attention: AttentionMatrix,
    ks: tuple[int, ...] = tuple(range(N_ORGANS, 21)),
    config: UserClusteringConfig | None = None,
    workers: int = 1,
) -> KSelectionSweep:
    """Evaluate K-Means across candidate k (the paper's selection step).

    With ``workers > 1`` the candidate ks fan out across processes, one
    independent fit per k; each in-process fit then runs its restarts
    serially (nesting pools would oversubscribe).  The sweep is
    deterministic and identical for any worker count.

    Raises:
        ClusteringError: if ``workers`` is not a positive integer.
    """
    base = config or UserClusteringConfig()
    if workers < 1:
        raise ClusteringError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        evaluations = [_evaluate_one_k(attention, k, base) for k in ks]
    else:
        with ProcessPoolExecutor(
            max_workers=min(workers, len(ks)), mp_context=pool_context()
        ) as pool:
            evaluations = list(
                pool.map(_evaluate_one_k, repeat(attention), ks, repeat(base))
            )
    inertias, silhouettes, avg_sizes = (
        zip(*evaluations) if evaluations else ((), (), ())
    )
    return KSelectionSweep(
        ks=tuple(ks),
        inertias=tuple(inertias),
        silhouettes=tuple(silhouettes),
        avg_sizes=tuple(avg_sizes),
    )


def _evaluate_one_k(
    attention: AttentionMatrix, k: int, base: UserClusteringConfig
) -> tuple[float, float, float]:
    """One sweep point: (inertia, silhouette, avg size) for one k.

    Module-level so sweep workers can unpickle it.  Restarts stay serial
    inside a sweep worker — the sweep itself is the fan-out axis.
    """
    clustering = cluster_users(
        attention,
        UserClusteringConfig(
            k=k,
            n_init=base.n_init,
            max_iter=base.max_iter,
            tol=base.tol,
            seed=base.seed,
            silhouette_memory_mb=base.silhouette_memory_mb,
        ),
    )
    return (
        clustering.result.inertia,
        clustering.silhouette,
        clustering.avg_cluster_size,
    )
