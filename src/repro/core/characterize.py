"""High-level characterization facades (Fig. 3 and Fig. 4).

These wrap attention → membership → aggregation into the two analyses the
paper runs, with convenient accessors for the claims its §IV discusses
(top co-attended organ, per-state organ signatures).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import Aggregation, aggregate, ranked_profile
from repro.core.attention import AttentionMatrix, build_attention_matrix
from repro.core.membership import by_most_cited_organ, by_region
from repro.dataset.corpus import TweetCorpus
from repro.organs import ORGANS, Organ


@dataclass(frozen=True, slots=True)
class OrganCharacterization:
    """Fig. 3: organs characterized by their dedicated users' attention.

    Row *i* of :attr:`aggregation` is the mean attention distribution of
    users whose most-cited organ is *i* — how heart-focused users also
    talk about kidneys, and so on.
    """

    attention: AttentionMatrix
    aggregation: Aggregation

    def profile(self, organ: Organ) -> list[tuple[Organ, float]]:
        """Ranked co-attention profile of one organ (one Fig. 3 panel)."""
        return ranked_profile(self.aggregation.row(organ.value))

    def top_co_organ(self, organ: Organ) -> Organ:
        """The most co-attended *other* organ for a focal organ.

        This is the quantity §IV-A reads off Fig. 3 (e.g. kidney is the
        top co-mention for heart users).
        """
        row = self.aggregation.row(organ.value).copy()
        row[organ.index] = -np.inf
        return ORGANS[int(np.argmax(row))]

    def characterized_organs(self) -> tuple[Organ, ...]:
        """Organs that have at least one dedicated user (rows of K)."""
        return tuple(Organ(label) for label in self.aggregation.group_labels)

    def reciprocity(self) -> dict[tuple[Organ, Organ], bool]:
        """For each focal organ a with top co-organ b: is a also b's top?

        The paper notes these co-occurrences are *not* reciprocal.
        """
        tops = {
            organ: self.top_co_organ(organ)
            for organ in self.characterized_organs()
        }
        return {
            (organ, top): tops.get(top) == organ for organ, top in tops.items()
        }


@dataclass(frozen=True, slots=True)
class RegionCharacterization:
    """Fig. 4: states characterized by their inhabitants' attention.

    Row *r* of :attr:`aggregation` is state *r*'s organ signature.
    """

    attention: AttentionMatrix
    aggregation: Aggregation

    @property
    def states(self) -> tuple[str, ...]:
        return self.aggregation.group_labels

    def signature(self, state: str) -> list[tuple[Organ, float]]:
        """Ranked organ signature of one state (one Fig. 4 panel)."""
        return ranked_profile(self.aggregation.row(state))

    def second_most_mentioned(self, state: str) -> Organ:
        """The state's second organ — the split §IV-B observes (kidney /
        liver / lung)."""
        return self.signature(state)[1][0]

    def matrix_k(self) -> np.ndarray:
        """The (r, n) K matrix — input to the Fig. 6 state clustering."""
        return self.aggregation.matrix


def characterize_organs(corpus: TweetCorpus) -> OrganCharacterization:
    """Run the full §IV-A organ characterization on a corpus."""
    attention = build_attention_matrix(corpus)
    membership = by_most_cited_organ(attention)
    return OrganCharacterization(
        attention=attention,
        aggregation=aggregate(attention, membership, on_empty="drop"),
    )


def characterize_regions(
    corpus: TweetCorpus, regions: tuple[str, ...] | None = None
) -> RegionCharacterization:
    """Run the full §IV-B region characterization on a corpus."""
    attention = build_attention_matrix(corpus)
    membership = by_region(attention, regions)
    return RegionCharacterization(
        attention=attention,
        aggregation=aggregate(attention, membership, on_empty="drop"),
    )
