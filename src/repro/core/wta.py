"""Winner-takes-all state labelling — the baseline §IV-B1 argues against.

"The simplest approach … is to count the number of users mentioning each
organ and use a 'winner-takes-all' strategy."  Because organ prevalence is
far from uniform, this labels (nearly) every state with heart.  The
relative-risk method of :mod:`repro.core.relative_risk` is the paper's
remedy; the ablation bench contrasts the two.
"""

from __future__ import annotations

from collections import Counter, defaultdict

from repro.dataset.corpus import TweetCorpus
from repro.organs import Organ


def winner_takes_all(corpus: TweetCorpus) -> dict[str, Organ]:
    """state → most-mentioned organ (by user count).

    Ties break toward the canonical organ order, matching the prevalence
    ranking's behaviour for the degenerate case.
    """
    per_state: dict[str, Counter[Organ]] = defaultdict(Counter)
    for user in corpus.user_slices():
        if user.state is None:
            continue
        for organ in user.distinct_organs:
            per_state[user.state][organ] += 1
    return {
        state: max(counts, key=lambda organ: (counts[organ], -organ.index))
        for state, counts in sorted(per_state.items())
    }
