"""Membership-indicator matrices L (Eq. 1 and Eq. 2).

L assigns each user (row of Û) to exactly one aggregation group.  Two
definitions from the paper:

* **Most-cited organ** (Eq. 1): ``l_ij = 1`` iff organ j is user i's
  argmax attention — the organ-perspective aggregation of §IV-A.
* **Region** (Eq. 2): ``l_ij = 1`` iff user i inhabits region j — the
  state-perspective aggregation of §IV-B.

L is represented both densely (for the literal Eq. 3 matrix product) and
as a compact assignment vector (for efficient group means).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.attention import AttentionMatrix
from repro.errors import CharacterizationError
from repro.organs import ORGAN_NAMES


@dataclass(frozen=True, slots=True)
class Membership:
    """A user → group assignment.

    Attributes:
        group_labels: column labels of L, one per group.
        assignments: (m,) group index per user; −1 marks users excluded
            from this aggregation (e.g. no resolved state).
    """

    group_labels: tuple[str, ...]
    assignments: np.ndarray

    @property
    def n_groups(self) -> int:
        return len(self.group_labels)

    @property
    def n_assigned(self) -> int:
        return int(np.count_nonzero(self.assignments >= 0))

    def group_sizes(self) -> np.ndarray:
        """(n_groups,) member count per group (excluded users not counted)."""
        assigned = self.assignments[self.assignments >= 0]
        return np.bincount(assigned, minlength=self.n_groups)

    def indicator_matrix(self) -> np.ndarray:
        """The dense L of the paper: (m, n_groups) one-hot rows.

        Excluded users get an all-zero row, which keeps L aligned with Û;
        Eq. 3 consumers must drop or guard empty groups (see
        :func:`repro.core.aggregation.aggregate`).
        """
        m = self.assignments.shape[0]
        matrix = np.zeros((m, self.n_groups))
        assigned = np.flatnonzero(self.assignments >= 0)
        matrix[assigned, self.assignments[assigned]] = 1.0
        return matrix


def by_most_cited_organ(attention: AttentionMatrix) -> Membership:
    """Eq. 1: group users by their argmax-attention organ.

    Ties break toward the lower organ index (heart first), matching
    ``argmax`` semantics; the paper does not specify tie handling and ties
    are measure-zero for real mention counts.
    """
    return Membership(
        group_labels=ORGAN_NAMES,
        assignments=attention.most_cited().astype(np.int64),
    )


def by_region(
    attention: AttentionMatrix, regions: tuple[str, ...] | None = None
) -> Membership:
    """Eq. 2: group users by their resolved state.

    Args:
        attention: Û with per-row state metadata.
        regions: explicit region label order; defaults to the sorted set of
            states present.  Users whose state is ``None`` or not in
            ``regions`` are excluded (assignment −1).

    Raises:
        CharacterizationError: if no user has a resolved state.
    """
    if regions is None:
        present = sorted({state for state in attention.states if state is not None})
        regions = tuple(present)
    if not regions:
        raise CharacterizationError("no users with a resolved state to aggregate")
    index_of = {state: index for index, state in enumerate(regions)}
    assignments = np.array(
        [
            index_of.get(state, -1) if state is not None else -1
            for state in attention.states
        ],
        dtype=np.int64,
    )
    return Membership(group_labels=tuple(regions), assignments=assignments)
