"""Tweet-level characterization — the baseline §III-B argues against.

"A straightforward approach is to build a characterization model based on
single messages.  Despite its intuitiveness, such characterization may be
biased by the existence of a few heavily-active users."  This module
implements that straightforward approach so the ablation bench can show
the bias: each *tweet* (not user) becomes a row of the attention matrix,
so a user posting 500 tweets carries 500× the weight of a one-tweet user.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dataset.corpus import TweetCorpus
from repro.errors import CharacterizationError
from repro.organs import N_ORGANS


@dataclass(frozen=True, slots=True)
class TweetLevelAggregation:
    """Per-state mean attention computed over tweets instead of users.

    Attributes:
        states: row labels.
        matrix: (r, n) tweet-level state signatures; rows sum to 1.
        tweet_counts: tweets per state, aligned with rows.
    """

    states: tuple[str, ...]
    matrix: np.ndarray
    tweet_counts: tuple[int, ...]

    def row(self, state: str) -> np.ndarray:
        try:
            index = self.states.index(state)
        except ValueError:
            raise KeyError(f"state {state!r} not present") from None
        return self.matrix[index]


def tweet_level_state_aggregation(corpus: TweetCorpus) -> TweetLevelAggregation:
    """Aggregate normalized per-tweet mention vectors by state.

    Every tweet contributes one row-normalized attention vector; states
    average their tweets.  Heavy-active users dominate their state's
    signature — exactly the failure mode the user-level Û avoids.
    """
    sums: dict[str, np.ndarray] = {}
    counts: dict[str, int] = {}
    for record in corpus:
        state = record.state
        if state is None:
            continue
        vector = np.zeros(N_ORGANS)
        for organ, count in record.mentions.items():
            vector[organ.index] = float(count)
        total = vector.sum()
        if total <= 0:
            raise CharacterizationError(
                f"tweet {record.tweet.tweet_id} has no organ mentions"
            )
        vector /= total
        if state not in sums:
            sums[state] = np.zeros(N_ORGANS)
            counts[state] = 0
        sums[state] += vector
        counts[state] += 1
    if not sums:
        raise CharacterizationError("no located tweets to aggregate")
    states = tuple(sorted(sums))
    matrix = np.vstack([sums[state] / counts[state] for state in states])
    return TweetLevelAggregation(
        states=states,
        matrix=matrix,
        tweet_counts=tuple(counts[state] for state in states),
    )
