"""Run the reproduction across independent seeds and aggregate.

Each seed generates a fresh world, runs the full §III-A pipeline, and
evaluates the verdict battery plus a handful of scalar metrics.  The
summary reports per-check pass rates and metric means ± standard
deviations, quantifying how much of the reproduction is structure and how
much is realization noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pipeline.runner import CollectionPipeline
from repro.report.experiments import ExperimentSuite
from repro.report.verdicts import evaluate_reproduction
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld


@dataclass(frozen=True, slots=True)
class SeedResult:
    """Outcome of one seed's full run.

    Attributes:
        seed: the world seed.
        checks: check name → passed.
        metrics: scalar metrics (us_yield, spearman_r, silhouette, …).
    """

    seed: int
    checks: dict[str, bool]
    metrics: dict[str, float]


@dataclass(frozen=True)
class ReplicationSummary:
    """Aggregated replication outcome.

    Attributes:
        results: per-seed results.
        scale: the world scale used.
    """

    results: tuple[SeedResult, ...]
    scale: float

    @property
    def n_seeds(self) -> int:
        return len(self.results)

    def pass_rates(self) -> dict[str, float]:
        """check name → fraction of seeds passing."""
        names = self.results[0].checks.keys()
        return {
            name: sum(result.checks[name] for result in self.results)
            / self.n_seeds
            for name in names
        }

    def metric_summary(self) -> dict[str, tuple[float, float]]:
        """metric name → (mean, std) across seeds."""
        names = self.results[0].metrics.keys()
        return {
            name: (
                float(np.mean([r.metrics[name] for r in self.results])),
                float(np.std([r.metrics[name] for r in self.results])),
            )
            for name in names
        }

    def render(self) -> str:
        lines = [
            f"Replication over {self.n_seeds} seeds (scale {self.scale})",
            "",
            "check pass rates:",
        ]
        for name, rate in sorted(self.pass_rates().items()):
            lines.append(f"  {rate:>5.0%}  {name}")
        lines.append("")
        lines.append("metrics (mean ± std):")
        for name, (mean, std) in sorted(self.metric_summary().items()):
            lines.append(f"  {name}: {mean:.3f} ± {std:.3f}")
        return "\n".join(lines)


def replicate(
    seeds: tuple[int, ...] = (1, 2, 3, 4, 5),
    scale: float = 0.12,
) -> ReplicationSummary:
    """Run the full reproduction once per seed.

    Args:
        seeds: world seeds; each is an independent replication.
        scale: world scale (shape checks need ≥ ~0.1 for power).

    Raises:
        ValueError: on an empty seed list.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    results: list[SeedResult] = []
    for seed in seeds:
        world = SyntheticWorld(paper2016_scenario(scale=scale, seed=seed))
        corpus, report = CollectionPipeline().run(world.firehose())
        suite = ExperimentSuite(corpus, report)
        verdicts = evaluate_reproduction(suite)
        fig2 = suite.run_fig2()
        fig7 = suite.run_fig7()
        results.append(
            SeedResult(
                seed=seed,
                checks={
                    verdict.check: verdict.passed
                    for verdict in verdicts.verdicts
                },
                metrics={
                    "us_yield": report.us_yield,
                    "spearman_r": fig2.correlation.r,
                    "silhouette_k12": fig7.clustering.silhouette,
                    "n_users": float(corpus.n_users),
                },
            )
        )
    return ReplicationSummary(results=tuple(results), scale=scale)
