"""Multi-seed replication harness.

A reproduction should not hinge on one lucky seed.
:mod:`repro.experiments.replication` reruns the full pipeline + verdict
battery across independent world seeds and aggregates pass rates and key
metrics, giving the reproduction a confidence statement.
"""

from repro.experiments.replication import (
    ReplicationSummary,
    SeedResult,
    replicate,
)

__all__ = ["ReplicationSummary", "SeedResult", "replicate"]
