"""Social-sensor validity: Twitter-side signals vs registry-side reality.

The paper's hypothesis is that "social media can be utilized as a sensor
to characterize organ donation awareness".  Its strongest evidence is the
Kansas coincidence: the only state with excess kidney *conversation* is
also the only Midwest state with a deceased kidney-donor *surplus* (Cao
et al.).  With both sides simulated here — the twittersphere plants
conversation anomalies, the registry plants donor-rate anomalies — this
module generalizes the coincidence into a measurement: the rank
correlation between per-state conversation relative risk and per-state
donor rates, and the agreement between the two anomaly sets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.relative_risk import StateOrganRisk
from repro.organs import Organ
from repro.registry.statistics import RegistryStatistics
from repro.stats.correlation import CorrelationResult, spearman


@dataclass(frozen=True, slots=True)
class SensorValidity:
    """Agreement between the social sensor and the registry for one organ.

    Attributes:
        organ: the organ compared.
        correlation: Spearman correlation between per-state conversation
            RR and per-state donor rate (states present on both sides).
        sensor_states: states the social sensor flags (significant RR).
        registry_states: states with a registry donor surplus.
        jointly_flagged: intersection of the two.
    """

    organ: Organ
    correlation: CorrelationResult
    sensor_states: tuple[str, ...]
    registry_states: tuple[str, ...]
    jointly_flagged: tuple[str, ...]

    @property
    def agrees(self) -> bool:
        """True when the sensor and registry flag at least one common
        state and the correlation is non-negative."""
        return bool(self.jointly_flagged) and (
            self.correlation.r >= 0 or self.correlation.n < 3
        )


def sensor_validity(
    risks: list[StateOrganRisk],
    registry: RegistryStatistics,
    organ: Organ,
    surplus_factor: float = 1.25,
) -> SensorValidity:
    """Compare the social sensor against the registry for one organ.

    Args:
        risks: per-(state, organ) relative risks from the Twitter side
            (:func:`repro.core.relative_risk.state_organ_risks`).
        registry: registry aggregates from the simulation side.
        organ: the organ to compare.
        surplus_factor: registry surplus threshold (rate > factor × mean).
    """
    sensor_rr = {
        risk.state: risk.result.rr
        for risk in risks
        if risk.organ is organ and not risk.insufficient_data
    }
    registry_rates = {
        state: rates[organ]
        for state, rates in registry.donor_rate_per_million.items()
    }
    common = sorted(set(sensor_rr) & set(registry_rates))
    correlation = spearman(
        [sensor_rr[state] for state in common],
        [registry_rates[state] for state in common],
    )
    sensor_states = tuple(
        sorted(
            risk.state
            for risk in risks
            if risk.organ is organ and risk.highlighted
        )
    )
    registry_states = tuple(
        registry.donor_surplus_states(organ, factor=surplus_factor)
    )
    jointly = tuple(sorted(set(sensor_states) & set(registry_states)))
    return SensorValidity(
        organ=organ,
        correlation=correlation,
        sensor_states=sensor_states,
        registry_states=registry_states,
        jointly_flagged=jointly,
    )
