"""Aggregate registry views — the numbers the paper consumes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.gazetteer import STATES
from repro.organs import ORGANS, Organ
from repro.registry.model import RegistryOutcome


@dataclass(frozen=True, slots=True)
class RegistryStatistics:
    """National and per-state summaries of one simulation.

    Attributes:
        national_transplants: organ → grafts transplanted (annualized).
        national_waitlist: organ → candidates waiting at the end.
        deaths_per_day: national waitlist deaths per day.
        donor_rate_per_million: state → organ → recovered grafts per
            million residents per year (the Cao et al. geography).
        import_share: organ → fraction of transplants supplied by the
            national pool rather than in-state donors (geographic
            disparity, the paper's ref [6]).
    """

    national_transplants: dict[Organ, float]
    national_waitlist: dict[Organ, float]
    deaths_per_day: float
    donor_rate_per_million: dict[str, dict[Organ, float]]
    import_share: dict[Organ, float]

    def transplant_shortfall(self, organ: Organ) -> float:
        """waitlist / annual transplants — §I's 'less than 1/3' figure is
        the inverse for kidney."""
        transplants = self.national_transplants[organ]
        if transplants <= 0:
            return float("inf")
        return self.national_waitlist[organ] / transplants

    def donor_surplus_states(
        self, organ: Organ, factor: float = 1.25
    ) -> list[str]:
        """States whose per-capita donor rate exceeds the national mean
        by ``factor`` — Cao et al.'s surplus criterion, applied here."""
        rates = {
            state: organs[organ]
            for state, organs in self.donor_rate_per_million.items()
        }
        mean_rate = float(np.mean(list(rates.values())))
        return sorted(
            state for state, rate in rates.items() if rate > factor * mean_rate
        )


def summarize_registry(outcome: RegistryOutcome) -> RegistryStatistics:
    """Reduce a simulation outcome to the published-style aggregates."""
    years = outcome.months / 12.0
    national_transplants = {
        organ: float(outcome.transplants[:, organ.index].sum()) / years
        for organ in ORGANS
    }
    national_waitlist = {
        organ: float(outcome.final_waitlist[:, organ.index].sum())
        for organ in ORGANS
    }
    deaths_per_day = float(outcome.deaths.sum()) / (outcome.months * 30.44)

    populations = {state.abbrev: state.population for state in STATES}
    donor_rate = {
        state: {
            organ: float(outcome.donor_grafts[row, organ.index])
            / years
            / (populations[state] / 1000.0)  # population is in thousands
            for organ in ORGANS
        }
        for row, state in enumerate(outcome.states)
    }
    transplant_totals = outcome.transplants.sum(axis=0)
    import_totals = outcome.imports.sum(axis=0)
    import_share = {
        organ: (
            float(import_totals[organ.index] / transplant_totals[organ.index])
            if transplant_totals[organ.index] > 0
            else 0.0
        )
        for organ in ORGANS
    }
    return RegistryStatistics(
        national_transplants=national_transplants,
        national_waitlist=national_waitlist,
        deaths_per_day=deaths_per_day,
        donor_rate_per_million=donor_rate,
        import_share=import_share,
    )
