"""The registry simulation: waitlists, donors, allocation, mortality.

Monthly discrete-event aggregates per (state, organ), vectorized over the
52 gazetteer states and 6 organs:

1. **Arrivals** — waitlist registrations ~ Poisson, distributed over
   states by population.
2. **Donors** — deceased donors ~ Poisson per state (population ×
   planted propensity); each donor contributes ``donor_yield`` grafts per
   organ in expectation.
3. **Allocation** — the OPTN three-tier ladder: a local share of each
   state's grafts is offered to its own waitlist; a regional share (plus
   declined local offers) is allocated within the state's OPTN region
   (:mod:`repro.registry.regions`); everything left enters the national
   pool.  This reproduces the geographic donor/recipient disproportion
   of the paper's refs [6]/[7].
4. **Mortality & removals** — binomial draws on the post-transplant
   waitlist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.gazetteer import ALL_REGION_CODES, STATES
from repro.organs import N_ORGANS
from repro.registry.config import RegistryConfig


@dataclass(frozen=True, slots=True)
class RegistryOutcome:
    """Accumulated simulation results.

    All arrays are (n_states, n_organs) totals over the horizon except
    ``final_waitlist`` (a snapshot).  State order is
    :data:`repro.geo.gazetteer.ALL_REGION_CODES`; organ order is
    canonical.

    Attributes:
        states: state codes, aligned with axis 0.
        additions: waitlist registrations.
        transplants: grafts transplanted.
        imports: grafts received from outside the state (regional +
            national tiers).
        regional_imports: grafts received through the OPTN-region tier.
        local_transplants: grafts transplanted from in-state donors.
        donor_grafts: grafts recovered from in-state donors.
        deaths: waitlist deaths.
        removals: non-death waitlist removals.
        final_waitlist: waiting candidates at the end.
        months: simulated horizon.
    """

    states: tuple[str, ...]
    additions: np.ndarray
    transplants: np.ndarray
    imports: np.ndarray
    regional_imports: np.ndarray
    local_transplants: np.ndarray
    donor_grafts: np.ndarray
    deaths: np.ndarray
    removals: np.ndarray
    final_waitlist: np.ndarray
    months: int


class TransplantRegistry:
    """Run the registry simulation for one configuration."""

    def __init__(self, config: RegistryConfig):
        self.config = config
        populations = np.array(
            [float(state.population) for state in STATES]
        )
        self._population_share = populations / populations.sum()
        self._n_states = len(STATES)
        # Per-state, per-organ donor propensity multipliers.
        propensity = np.ones((self._n_states, N_ORGANS))
        state_index = {code: i for i, code in enumerate(ALL_REGION_CODES)}
        for state, boosts in config.donor_propensity.items():
            row = state_index[state]
            for organ_index, factor in boosts.items():
                propensity[row, organ_index] = factor
        self._propensity = propensity
        from repro.registry.regions import optn_region_of

        region_rows: dict[int, list[int]] = {}
        for row, code in enumerate(ALL_REGION_CODES):
            region_rows.setdefault(optn_region_of(code), []).append(row)
        self._region_rows = {
            region: np.array(rows) for region, rows in region_rows.items()
        }

    def run(self) -> RegistryOutcome:
        """Simulate ``config.months`` months; deterministic per seed."""
        config = self.config
        rng = np.random.default_rng(config.seed)
        n_states = self._n_states

        waitlist = np.zeros((n_states, N_ORGANS))
        for organ_index, flow in enumerate(config.flows):
            waitlist[:, organ_index] = rng.multinomial(
                flow.initial_waitlist, self._population_share
            )

        additions = np.zeros_like(waitlist)
        transplants = np.zeros_like(waitlist)
        imports = np.zeros_like(waitlist)
        regional_imports = np.zeros_like(waitlist)
        local_transplants = np.zeros_like(waitlist)
        donor_grafts = np.zeros_like(waitlist)
        deaths = np.zeros_like(waitlist)
        removals = np.zeros_like(waitlist)

        monthly_addition_mean = np.array(
            [flow.annual_additions / 12.0 for flow in config.flows]
        )
        monthly_mortality = np.array(
            [1.0 - (1.0 - flow.annual_mortality_rate) ** (1 / 12)
             for flow in config.flows]
        )
        monthly_removal = np.array(
            [1.0 - (1.0 - flow.annual_other_removals_rate) ** (1 / 12)
             for flow in config.flows]
        )
        donor_yields = np.array([flow.donor_yield for flow in config.flows])
        monthly_donors_mean = config.annual_deceased_donors / 12.0

        for __ in range(config.months):
            # 1. Arrivals.
            month_additions = rng.poisson(
                np.outer(self._population_share, monthly_addition_mean)
            )
            waitlist += month_additions
            additions += month_additions

            # 2. Donors and recovered grafts.
            donors = rng.poisson(monthly_donors_mean * self._population_share)
            grafts = rng.poisson(
                donors[:, None] * donor_yields[None, :] * self._propensity
            ).astype(float)
            donor_grafts += grafts

            # 3a. Local tier.
            local_offer = np.floor(
                grafts * config.local_allocation_share
            )
            local_used = np.minimum(local_offer, waitlist)
            waitlist -= local_used
            transplants += local_used
            local_transplants += local_used

            # 3b. Regional tier: the regional share plus declined local
            # offers, allocated within each OPTN region.
            remaining = grafts - local_used
            regional_offer = np.floor(
                remaining
                * (
                    config.regional_allocation_share
                    / max(1e-12, 1.0 - config.local_allocation_share)
                )
            )
            regional_offer = np.minimum(regional_offer, remaining)
            national_pool = (remaining - regional_offer).sum(axis=0)
            for rows in self._region_rows.values():
                for organ_index in range(N_ORGANS):
                    supply = int(regional_offer[rows, organ_index].sum())
                    placed = _allocate_discrete(
                        supply, waitlist[rows, organ_index], rng
                    )
                    waitlist[rows, organ_index] -= placed
                    transplants[rows, organ_index] += placed
                    imports[rows, organ_index] += placed
                    regional_imports[rows, organ_index] += placed
                    national_pool[organ_index] += supply - placed.sum()

            # 3c. National tier: everything unplaced so far.
            for organ_index in range(N_ORGANS):
                supply = int(national_pool[organ_index])
                placed = _allocate_discrete(
                    supply, waitlist[:, organ_index], rng
                )
                waitlist[:, organ_index] -= placed
                transplants[:, organ_index] += placed
                imports[:, organ_index] += placed

            # 4. Mortality and other removals.
            month_deaths = rng.binomial(
                waitlist.astype(np.int64), monthly_mortality[None, :]
            )
            waitlist -= month_deaths
            deaths += month_deaths
            month_removals = rng.binomial(
                waitlist.astype(np.int64), monthly_removal[None, :]
            )
            waitlist -= month_removals
            removals += month_removals

        return RegistryOutcome(
            states=ALL_REGION_CODES,
            additions=additions,
            transplants=transplants,
            imports=imports,
            regional_imports=regional_imports,
            local_transplants=local_transplants,
            donor_grafts=donor_grafts,
            deaths=deaths,
            removals=removals,
            final_waitlist=waitlist,
            months=config.months,
        )


def _allocate_discrete(
    supply: int, demand: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Allocate ``supply`` discrete grafts proportionally to ``demand``.

    Multinomial draw clipped to demand, with redistribution passes plus a
    deterministic final fill, so allocation is lossless: whenever
    ``supply <= total demand`` every graft is placed — no organ is wasted
    while a candidate waits.  Returns the placed counts (same shape as
    ``demand``).
    """
    placed = np.zeros_like(demand, dtype=float)
    total_demand = demand.sum()
    if supply <= 0 or total_demand <= 0:
        return placed
    allocated = int(min(supply, total_demand))
    to_place = allocated
    for __ in range(3):
        open_demand = demand - placed
        open_total = open_demand.sum()
        if to_place <= 0 or open_total <= 0:
            break
        draw = rng.multinomial(
            to_place, open_demand / open_total
        ).astype(float)
        draw = np.minimum(draw, open_demand)
        placed += draw
        to_place = allocated - int(placed.sum())
    # Deterministic final fill: drain stragglers into the largest open
    # demands.
    while to_place > 0:
        open_demand = demand - placed
        target = int(np.argmax(open_demand))
        if open_demand[target] <= 0:
            break
        take = min(float(to_place), open_demand[target])
        placed[target] += take
        to_place -= int(take)
    return placed
