"""Synthetic organ procurement & transplantation registry (OPTN stand-in).

The paper leans on OPTN/SRTR registry statistics throughout: Fig. 2a
correlates Twitter attention against 2012 transplant volumes; the intro
motivates the work with the waitlist arithmetic ("nearly 22 patients die
in the USA every day", "roughly 60 thousand patients were in the waiting
list for a kidney transplant … only 17 thousand kidney transplants"); and
§IV-B1 validates the Kansas finding against Cao et al.'s kidney-donor
geography.  The registry microdata behind those numbers is not
redistributable, so this package simulates the registry itself:

* :mod:`repro.registry.model` — a monthly-step simulation of waitlist
  arrivals, deceased donors, a two-tier (local-then-national) organ
  allocation, and waitlist mortality, per state × organ;
* :mod:`repro.registry.config` — rates calibrated to the published 2012
  aggregates, with the Kansas kidney-donor surplus planted;
* :mod:`repro.registry.statistics` — the aggregate views the paper
  consumes (national volumes, per-capita donor rates, deaths per day);
* :mod:`repro.registry.validation` — the "social sensor" validity check:
  does the Twitter-side relative risk correlate with registry-side donor
  surpluses?
"""

from repro.registry.config import RegistryConfig, calibrated_2012_config
from repro.registry.model import RegistryOutcome, TransplantRegistry
from repro.registry.regions import OPTN_REGIONS, optn_region_of
from repro.registry.statistics import RegistryStatistics, summarize_registry
from repro.registry.validation import SensorValidity, sensor_validity

__all__ = [
    "OPTN_REGIONS",
    "RegistryConfig",
    "RegistryOutcome",
    "RegistryStatistics",
    "SensorValidity",
    "TransplantRegistry",
    "calibrated_2012_config",
    "optn_region_of",
    "sensor_validity",
    "summarize_registry",
]
