"""The 11 OPTN allocation regions.

US organ allocation is geographically tiered: organs are offered locally
(the recovering OPO), then within one of eleven OPTN regions, then
nationally — the structure behind the geographic disparities the paper's
refs [6] and [7] analyze.  The assignment below is the standard OPTN
region map at state granularity (states split across OPOs are assigned to
their majority region; Puerto Rico belongs to Region 3).
"""

from __future__ import annotations

from repro.errors import GeoError
from repro.geo.gazetteer import ALL_REGION_CODES

#: OPTN region number → member states.
OPTN_REGIONS: dict[int, tuple[str, ...]] = {
    1: ("CT", "ME", "MA", "NH", "RI"),
    2: ("DC", "DE", "MD", "NJ", "PA", "WV"),
    3: ("AL", "AR", "FL", "GA", "LA", "MS", "PR"),
    4: ("OK", "TX"),
    5: ("AZ", "CA", "NV", "NM", "UT"),
    6: ("AK", "HI", "ID", "MT", "OR", "WA"),
    7: ("IL", "MN", "ND", "SD", "WI"),
    8: ("CO", "IA", "KS", "MO", "NE", "WY"),
    9: ("NY", "VT"),
    10: ("IN", "MI", "OH"),
    11: ("KY", "NC", "SC", "TN", "VA"),
}

_STATE_TO_REGION: dict[str, int] = {
    state: region
    for region, states in OPTN_REGIONS.items()
    for state in states
}


def optn_region_of(state: str) -> int:
    """The OPTN region number of a state.

    Raises:
        GeoError: for a state not in the region map.
    """
    region = _STATE_TO_REGION.get(state.strip().upper())
    if region is None:
        raise GeoError(f"state {state!r} has no OPTN region")
    return region


def validate_region_partition() -> None:
    """Assert the region map partitions the gazetteer exactly.

    Raises:
        GeoError: if any gazetteer state is missing or duplicated.
    """
    seen: list[str] = [
        state for states in OPTN_REGIONS.values() for state in states
    ]
    if len(seen) != len(set(seen)):
        duplicates = sorted(
            {state for state in seen if seen.count(state) > 1}
        )
        raise GeoError(f"states in multiple OPTN regions: {duplicates}")
    missing = sorted(set(ALL_REGION_CODES) - set(seen))
    if missing:
        raise GeoError(f"states with no OPTN region: {missing}")
    extra = sorted(set(seen) - set(ALL_REGION_CODES))
    if extra:
        raise GeoError(f"unknown states in OPTN regions: {extra}")
