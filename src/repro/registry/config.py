"""Registry simulation configuration, calibrated to 2012 aggregates.

All rates are annual and national; the simulation distributes them over
states by population and over months uniformly.  The calibration targets
are the published numbers the paper cites:

* 2012 transplants per organ (its ref [1]; see
  :data:`repro.data.transplants.TRANSPLANTS_2012`),
* ~22 waitlist deaths per day nationally (§I),
* kidney: ~60k waitlisted vs ~17k transplants — "less than 1/3 of what
  was needed" (§I),
* a deceased kidney-donor surplus in Kansas (§IV-B1, citing Cao et al.).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.organs import N_ORGANS, Organ


@dataclass(frozen=True, slots=True)
class OrganFlow:
    """Annual national flow parameters for one organ.

    Attributes:
        initial_waitlist: candidates waiting at simulation start.
        annual_additions: new waitlist registrations per year.
        annual_mortality_rate: fraction of the waitlist dying per year.
        annual_other_removals_rate: fraction leaving for other reasons
            (recovery, transfer, delisting).
        donor_yield: usable grafts recovered per deceased donor for this
            organ (kidneys ≈ 1.5 because most donors give both).
    """

    initial_waitlist: int
    annual_additions: int
    annual_mortality_rate: float
    annual_other_removals_rate: float
    donor_yield: float

    def __post_init__(self) -> None:
        if self.initial_waitlist < 0 or self.annual_additions < 0:
            raise ConfigError("waitlist volumes must be non-negative")
        if not 0.0 <= self.annual_mortality_rate < 1.0:
            raise ConfigError(
                f"annual_mortality_rate must be in [0, 1), got "
                f"{self.annual_mortality_rate}"
            )
        if not 0.0 <= self.annual_other_removals_rate < 1.0:
            raise ConfigError("annual_other_removals_rate must be in [0, 1)")
        if self.donor_yield < 0:
            raise ConfigError("donor_yield must be non-negative")


@dataclass(frozen=True, slots=True)
class RegistryConfig:
    """Full registry configuration.

    Attributes:
        flows: per-organ flow parameters in canonical organ order.
        annual_deceased_donors: national deceased donors per year.
        donor_propensity: per-state multiplier on donor recovery
            (``{state: {organ_index: multiplier}}``) — the planted
            geography (Kansas kidney surplus).
        local_allocation_share: fraction of a state's recovered organs
            offered to its own waitlist first.
        regional_allocation_share: fraction offered within the state's
            OPTN region next; the remainder (and any declined offers)
            enters the national pool.  The local → regional → national
            laddering is the geographic-disparity mechanism of the
            paper's refs [6]/[7].
        months: simulation horizon.
        seed: RNG seed.
    """

    flows: tuple[OrganFlow, ...]
    annual_deceased_donors: int = 8100
    donor_propensity: dict[str, dict[int, float]] = field(default_factory=dict)
    local_allocation_share: float = 0.55
    regional_allocation_share: float = 0.25
    months: int = 12
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.flows) != N_ORGANS:
            raise ConfigError(
                f"flows must have {N_ORGANS} entries, got {len(self.flows)}"
            )
        if self.annual_deceased_donors < 0:
            raise ConfigError("annual_deceased_donors must be non-negative")
        if not 0.0 <= self.local_allocation_share <= 1.0:
            raise ConfigError("local_allocation_share must be in [0, 1]")
        if not 0.0 <= self.regional_allocation_share <= 1.0:
            raise ConfigError("regional_allocation_share must be in [0, 1]")
        if self.local_allocation_share + self.regional_allocation_share > 1.0:
            raise ConfigError(
                "local + regional allocation shares must not exceed 1"
            )
        if self.months < 1:
            raise ConfigError(f"months must be >= 1, got {self.months}")


def calibrated_2012_config(seed: int = 0, months: int = 12) -> RegistryConfig:
    """The 2012-calibrated configuration.

    Flow volumes reproduce the aggregates the paper cites; donor yields
    are set so ``donors × yield ≈ transplants`` nationally (the registry's
    organs are transplanted when waitlist demand exists, which it always
    does at these levels).
    """
    donors = 8100.0
    flows = (
        # heart: ~3.5k waiting, ~2.4k tx/yr
        OrganFlow(3500, 3300, 0.12, 0.10, donor_yield=2378 / donors),
        # kidney: ~60k waiting (the §I number), ~16.5k tx/yr
        OrganFlow(60000, 25000, 0.09, 0.05, donor_yield=16487 / donors),
        # liver: ~15.5k waiting, ~6.3k tx/yr
        OrganFlow(15500, 9500, 0.10, 0.09, donor_yield=6256 / donors),
        # lung: ~1.6k waiting, ~1.75k tx/yr (fast turnover)
        OrganFlow(1600, 2400, 0.15, 0.10, donor_yield=1754 / donors),
        # pancreas: ~1.2k waiting, ~1.0k tx/yr
        OrganFlow(1200, 1500, 0.06, 0.15, donor_yield=1043 / donors),
        # intestine: ~250 waiting, ~106 tx/yr (mostly pediatric)
        OrganFlow(250, 180, 0.10, 0.12, donor_yield=106 / donors),
    )
    kidney = Organ.KIDNEY.index
    return RegistryConfig(
        flows=flows,
        annual_deceased_donors=int(donors),
        donor_propensity={"KS": {kidney: 1.5}},
        local_allocation_share=0.55,
        regional_allocation_share=0.25,
        months=months,
        seed=seed,
    )
