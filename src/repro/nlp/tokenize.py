"""Tweet-aware tokenizer.

Splits tweet text into typed tokens, preserving the Twitter-specific
entities that matter for matching: hashtags (``#organdonor``), user
mentions (``@unos``), and URLs.  Hashtag bodies often glue words together
("#kidneydonor"); the matcher handles those by substring rules, so the
tokenizer keeps the hashtag body intact.
"""

from __future__ import annotations

import enum
import re
from collections.abc import Iterable
from dataclasses import dataclass
from functools import lru_cache


class TokenKind(enum.Enum):
    """Lexical class of a token."""

    WORD = "word"
    HASHTAG = "hashtag"
    MENTION = "mention"
    URL = "url"
    NUMBER = "number"


@dataclass(frozen=True, slots=True)
class Token:
    """One token of tweet text.

    Attributes:
        text: Normalized token text — lowercase; hashtags/mentions without
            their sigil; URLs verbatim.
        kind: Lexical class.
    """

    text: str
    kind: TokenKind


_TOKEN_RE = re.compile(
    r"""
    (?P<url>https?://\S+)
  | (?P<mention>@\w+)
  | (?P<hashtag>\#\w+)
  | (?P<number>\d+(?:[.,]\d+)*)
  | (?P<word>[A-Za-z]+(?:['’-][A-Za-z]+)*)
    """,
    re.VERBOSE,
)

#: Sentence punctuation a greedy ``\S+`` URL match swallows when the URL
#: ends a clause: ``(https://example.org/x),`` is the URL *plus* ``),``.
#: Trailing characters from this set are trimmed off URL tokens; they are
#: never tokens themselves, so trimming cannot create or destroy matches.
_URL_TRAILING_PUNCTUATION = ")],.!?;:'\"»”’…"


@lru_cache(maxsize=65536)
def tokenize(text: str) -> tuple[Token, ...]:
    """Tokenize tweet text into typed tokens.

    The result is cached — tweet vocabularies repeat heavily, and the
    pipeline tokenizes every tweet twice (collection filter, then organ
    matching).

    >>> [t.text for t in tokenize("Be an organ donor! #kidney @UNOS")]
    ['be', 'an', 'organ', 'donor', 'kidney', 'unos']
    """
    tokens: list[Token] = []
    for match in _TOKEN_RE.finditer(text):
        kind_name = match.lastgroup
        raw = match.group()
        if kind_name == "url":
            tokens.append(
                Token(raw.rstrip(_URL_TRAILING_PUNCTUATION), TokenKind.URL)
            )
        elif kind_name == "mention":
            tokens.append(Token(raw[1:].lower(), TokenKind.MENTION))
        elif kind_name == "hashtag":
            tokens.append(Token(raw[1:].lower(), TokenKind.HASHTAG))
        elif kind_name == "number":
            tokens.append(Token(raw, TokenKind.NUMBER))
        else:
            tokens.append(Token(raw.lower(), TokenKind.WORD))
    return tuple(tokens)


@lru_cache(maxsize=65536)
def scan_words_hashtags(text: str) -> tuple[tuple[str, ...], tuple[str, ...]]:
    """Fast path: lowercased (WORD texts, HASHTAG bodies) in one sweep.

    The matching layers — the ``track`` filter and the organ matcher —
    only ever read WORD and HASHTAG token texts.  This scan runs the
    same token grammar as :func:`tokenize` but skips :class:`Token`
    allocation entirely and returns two plain string tuples, which is
    what makes the automaton hot path allocation-free per token.
    Equivalence with :func:`tokenize` is locked by the tokenizer test
    suite and the automaton property tests.
    """
    words: list[str] = []
    hashtags: list[str] = []
    for match in _TOKEN_RE.finditer(text):
        kind_name = match.lastgroup
        if kind_name == "word":
            words.append(match.group().lower())
        elif kind_name == "hashtag":
            hashtags.append(match.group()[1:].lower())
    return tuple(words), tuple(hashtags)


#: Apostrophe variants normalized before compound splitting.
_EMPTY_PARTS: tuple[str, ...] = ()


def split_compound(token_text: str) -> tuple[str, ...]:
    """Split a hyphen/apostrophe compound token into its parts.

    ``"heart-kidney"`` → ``("heart", "kidney")``; ``"donor's"`` →
    ``("donor", "s")``.  Returns the shared empty tuple for plain tokens
    so hot-path callers can branch on truthiness without allocating.
    This is the single definition of compound splitting — the keyword
    filter and the organ matcher must agree on it, or a compound tweet
    could be collected by one layer and unmatchable by the other.
    """
    if "-" in token_text or "'" in token_text or "’" in token_text:
        return tuple(
            token_text.replace("’", "-").replace("'", "-").split("-")
        )
    return _EMPTY_PARTS


def words(text: str) -> tuple[str, ...]:
    """Lowercased WORD and HASHTAG token texts, in order."""
    return tuple(
        token.text
        for token in tokenize(text)
        if token.kind in (TokenKind.WORD, TokenKind.HASHTAG)
    )


#: Minimum term length for substring matching inside hashtag bodies;
#: mirrors :class:`repro.nlp.matcher.OrganMatcher` so short inflections
#: cannot fire spuriously.
MIN_HASHTAG_SUBSTRING_LEN = 4


def present_terms(text: str, terms: Iterable[str]) -> set[str]:
    """Vocabulary terms present in ``text`` under Twitter ``track`` rules.

    A term is present when it equals a WORD or HASHTAG token exactly
    (hyphen/apostrophe compounds are split, so ``heart-kidney`` yields
    both ``heart`` and ``kidney``), or — for terms of at least
    :data:`MIN_HASHTAG_SUBSTRING_LEN` characters — when it appears
    inside a hashtag body (``#kidneydonor`` contains both ``kidney`` and
    ``donor``).  Plain words never substring-match: ``organized`` does
    not contain the term ``organ``, matching how Twitter tokenizes
    before matching.
    """
    word_tokens: set[str] = set()
    hashtags: list[str] = []
    for token in tokenize(text):
        if token.kind is TokenKind.WORD:
            word_tokens.add(token.text)
            word_tokens.update(split_compound(token.text))
        elif token.kind is TokenKind.HASHTAG:
            word_tokens.add(token.text)
            hashtags.append(token.text)
    if not word_tokens:
        return set()
    return {
        term
        for term in terms
        if term in word_tokens
        or (
            len(term) >= MIN_HASHTAG_SUBSTRING_LEN
            and any(term in tag for tag in hashtags)
        )
    }
