"""Aho–Corasick term automaton: the hot-path replacement for per-term scans.

Both keyword collection (:class:`repro.twitter.stream.TrackFilter`) and
organ-mention extraction (:class:`repro.nlp.matcher.OrganMatcher`) answer
the same question per tweet: *which terms of a fixed vocabulary appear in
this text*, where a term appears when it equals a WORD/HASHTAG token (or
a hyphen/apostrophe compound part) exactly, or — for terms of at least
:data:`repro.nlp.tokenize.MIN_HASHTAG_SUBSTRING_LEN` characters — as a
substring of a glued hashtag body (``#kidneydonor`` contains ``kidney``
and ``donor``).

The naive formulation loops every vocabulary term per tweet and runs a
substring scan per (term, hashtag) pair — O(|vocabulary| · |hashtags|)
Python-level work on the hottest path in the pipeline.  This module
inverts it:

* exact matches become *one* set lookup per token against the frozen
  vocabulary, and
* hashtag substring matches become *one* automaton sweep per hashtag
  body, finding every embedded term in a single pass regardless of
  vocabulary size.

Construction is deterministic (terms are deduplicated and sorted before
the trie is built) and results are returned in sorted order, so nothing
downstream can observe per-process hash ordering.  Equivalence with the
naive scans is locked by ``tests/properties/test_props_automaton.py``.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable

from repro.nlp.tokenize import (
    MIN_HASHTAG_SUBSTRING_LEN,
    scan_words_hashtags,
    split_compound,
)


class AhoCorasick:
    """Multi-pattern substring search over a fixed term set.

    A classic goto/fail automaton: states are trie nodes over the terms,
    failure links point to the longest proper suffix that is also a trie
    prefix, and each state carries the terms that end there (its own
    word plus every word reachable through failure links).  One pass
    over a text of length *n* visits each character once and reports
    every occurrence of every term, independent of how many terms the
    automaton holds.

    Args:
        terms: patterns to compile; deduplicated and sorted first so the
            state numbering — and therefore every result — is a pure
            function of the term *set*.
    """

    __slots__ = ("_goto", "_fail", "_out", "_terms")

    def __init__(self, terms: Iterable[str]):
        vocabulary = sorted({term for term in terms if term})
        self._terms: tuple[str, ...] = tuple(vocabulary)
        #: per-state character transition tables (trie edges only).
        self._goto: list[dict[str, int]] = [{}]
        #: failure link per state (state 0 is its own failure target).
        self._fail: list[int] = [0]
        #: terms ending at each state, own word first, then inherited.
        self._out: list[tuple[str, ...]] = [()]
        for term in vocabulary:
            self._insert(term)
        self._link_failures()

    def _insert(self, term: str) -> None:
        state = 0
        for char in term:
            nxt = self._goto[state].get(char)
            if nxt is None:
                nxt = len(self._goto)
                self._goto[state][char] = nxt
                self._goto.append({})
                self._fail.append(0)
                self._out.append(())
            state = nxt
        self._out[state] = (term,)

    def _link_failures(self) -> None:
        """BFS failure links; each state inherits its fail target's output."""
        queue: deque[int] = deque()
        for state in self._goto[0].values():
            queue.append(state)
        while queue:
            state = queue.popleft()
            for char, nxt in self._goto[state].items():
                queue.append(nxt)
                fail = self._fail[state]
                while fail and char not in self._goto[fail]:
                    fail = self._fail[fail]
                target = self._goto[fail].get(char, 0)
                if target == nxt:  # would self-link from the root
                    target = 0
                self._fail[nxt] = target
                if self._out[target]:
                    self._out[nxt] = self._out[nxt] + self._out[target]

    @property
    def terms(self) -> tuple[str, ...]:
        """The compiled term set, sorted."""
        return self._terms

    def find(self, text: str) -> tuple[str, ...]:
        """Every compiled term occurring in ``text``, sorted, each once.

        One sweep over ``text``; cost is O(len(text)) plus one append
        per match occurrence.
        """
        if not self._terms:
            return ()
        goto = self._goto
        fail = self._fail
        out = self._out
        state = 0
        found: set[str] = set()
        for char in text:
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            matched = out[state]
            if matched:
                found.update(matched)
        if not found:
            return ()
        return tuple(sorted(found))

    def contains_any(self, text: str) -> bool:
        """True when at least one compiled term occurs in ``text``."""
        if not self._terms:
            return False
        goto = self._goto
        fail = self._fail
        out = self._out
        state = 0
        for char in text:
            while state and char not in goto[state]:
                state = fail[state]
            state = goto[state].get(char, 0)
            if out[state]:
                return True
        return False


class TermVocabulary:
    """Single-pass ``present_terms`` engine for one fixed vocabulary.

    Compiles the vocabulary once — a frozen exact-match set plus an
    :class:`AhoCorasick` automaton over the substring-eligible terms
    (length >= :data:`~repro.nlp.tokenize.MIN_HASHTAG_SUBSTRING_LEN`) —
    then answers :meth:`present` with one tokenizer sweep, one set probe
    per token, and one automaton sweep per hashtag body.  Semantics are
    exactly :func:`repro.nlp.tokenize.present_terms` for this term set;
    the equivalence is property-tested across randomized vocabularies.

    Per-text results are memoized (bounded): tweet texts follow a
    heavy-tailed repetition profile, so the steady-state cost of a
    repeated text is a single dict hit.
    """

    #: Memo bound — far above the distinct-text count of any realistic
    #: stream window, small enough to stay harmless if exceeded.
    _CACHE_LIMIT = 262_144

    __slots__ = ("_exact", "_substring", "_cache")

    def __init__(self, terms: Iterable[str]):
        self._exact = frozenset(term for term in terms if term)
        self._substring = AhoCorasick(
            term
            for term in self._exact
            if len(term) >= MIN_HASHTAG_SUBSTRING_LEN
        )
        self._cache: dict[str, frozenset[str]] = {}

    @property
    def terms(self) -> frozenset[str]:
        return self._exact

    def present(self, text: str) -> frozenset[str]:
        """Vocabulary terms present in ``text`` under ``track`` rules."""
        cached = self._cache.get(text)
        if cached is not None:
            return cached
        result = self._present_uncached(text)
        cache = self._cache
        if len(cache) >= self._CACHE_LIMIT:
            # Evict the oldest insertion (dicts preserve insertion
            # order); under heavy-tailed text reuse this approximates
            # LRU without per-hit bookkeeping on the fast path.
            del cache[next(iter(cache))]
        cache[text] = result
        return result

    def _present_uncached(self, text: str) -> frozenset[str]:
        words, hashtags = scan_words_hashtags(text)
        exact = self._exact
        found: set[str] = set()
        for word in words:
            if word in exact:
                found.add(word)
            for part in split_compound(word):
                if part in exact:
                    found.add(part)
        for tag in hashtags:
            if tag in exact:
                found.add(tag)
            found.update(self._substring.find(tag))
        if not found:
            return _EMPTY_TERMS
        return frozenset(found)


#: Shared empty result — most firehose tweets contain no vocabulary term.
_EMPTY_TERMS: frozenset[str] = frozenset()
