"""Text-processing substrate: tokenization, query keywords, organ matching."""

from repro.nlp.keywords import CONTEXT_TERMS, SUBJECT_TERMS, KeywordQuery, build_query_set
from repro.nlp.matcher import OrganMatcher
from repro.nlp.tokenize import Token, TokenKind, tokenize

__all__ = [
    "CONTEXT_TERMS",
    "SUBJECT_TERMS",
    "KeywordQuery",
    "OrganMatcher",
    "Token",
    "TokenKind",
    "build_query_set",
    "tokenize",
]
