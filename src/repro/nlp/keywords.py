"""The collection query set Q (paper Fig. 1).

The paper constrains the Twitter Stream collection with a keyword set
``Q = Context × Subject``: the Cartesian product of *Context* words
(organ-donation terms) and *Subject* words (the organs of interest).  Every
collected tweet therefore contains at least one Context term and at least
one Subject term, which places the whole dataset in the organ-donation
context.

Twitter's ``track`` parameter treats each phrase as an AND of its
space-separated terms and the phrase list as an OR — exactly the semantics
of a Cartesian product — so ``Q`` is shipped to the stream as phrases like
``"kidney donor"``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.organs import ALIASES, Organ
from repro.nlp.tokenize import present_terms

#: Context vocabulary: terms that put a tweet in the organ-donation domain.
CONTEXT_TERMS: tuple[str, ...] = (
    "donor",
    "donors",
    "donate",
    "donation",
    "donations",
    "transplant",
    "transplants",
    "transplantation",
    "recipient",
    "waitlist",
    "organ",
)

#: Subject vocabulary: every accepted surface form of the six organs.
SUBJECT_TERMS: tuple[str, ...] = tuple(sorted(ALIASES))


@dataclass(frozen=True, slots=True)
class KeywordQuery:
    """One conjunctive phrase of the query set (one cell of Fig. 1).

    Attributes:
        context: the organ-donation Context term.
        subject: the organ Subject term.
        organ: the organ the subject term refers to.
    """

    context: str
    subject: str
    organ: Organ

    @property
    def track_phrase(self) -> str:
        """The phrase as sent to the stream ``track`` parameter."""
        return f"{self.subject} {self.context}"


def build_query_set(
    context_terms: tuple[str, ...] = CONTEXT_TERMS,
    subject_terms: tuple[str, ...] = SUBJECT_TERMS,
) -> tuple[KeywordQuery, ...]:
    """Build Q as the Cartesian product Context × Subject (Fig. 1)."""
    return tuple(
        KeywordQuery(context=context, subject=subject, organ=ALIASES[subject])
        for subject in subject_terms
        for context in context_terms
    )


def track_phrases(queries: tuple[KeywordQuery, ...]) -> tuple[str, ...]:
    """The ``track`` phrase list for a query set."""
    return tuple(query.track_phrase for query in queries)


def matches_query_set(text: str, queries: tuple[KeywordQuery, ...] | None = None) -> bool:
    """True when the text satisfies at least one conjunctive query.

    Hashtag bodies count: ``#kidneydonor`` satisfies ``kidney AND donor``
    because both terms appear inside the hashtag, matching Twitter's
    behaviour of matching terms inside hashtags.  Substring matching is
    restricted to hashtag-derived tokens — a term glued inside a longer
    plain word (``organ`` in ``organized``) does not match, mirroring
    :class:`repro.nlp.matcher.OrganMatcher`.
    """
    if queries is None:
        present = present_terms(text, CONTEXT_TERMS + SUBJECT_TERMS)
        return any(term in present for term in CONTEXT_TERMS) and any(
            term in present for term in SUBJECT_TERMS
        )
    vocabulary = {q.context for q in queries} | {q.subject for q in queries}
    present = present_terms(text, vocabulary)
    return any(q.context in present and q.subject in present for q in queries)
