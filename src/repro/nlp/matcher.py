"""Organ-mention extraction from tweet text.

Maps every tweet to the multiset of organs it mentions.  The contingency
matrix of :mod:`repro.core.attention` is built from these mentions, so the
matcher's recall/precision directly shapes every downstream result.

Two implementations of the same rules live here: the **automaton fast
path** (:meth:`OrganMatcher.mentions`), which scans each tweet once via
:func:`repro.nlp.tokenize.scan_words_hashtags` and resolves glued
hashtags with one Aho–Corasick sweep, and the **naive reference path**
(:meth:`OrganMatcher.mentions_naive`), the original per-term scan kept
as the oracle the property suite checks the fast path against.
"""

from __future__ import annotations

from collections import Counter

from repro.organs import ALIASES, Organ
from repro.nlp.automaton import AhoCorasick
from repro.nlp.tokenize import (
    Token,
    TokenKind,
    scan_words_hashtags,
    split_compound,
    tokenize,
)


class OrganMatcher:
    """Extract organ mentions from tweet text.

    Matching rules:

    * WORD tokens match aliases exactly; hyphen/apostrophe compounds are
      split so ``"kidney-liver"`` counts both organs.
    * HASHTAG tokens match exactly, then by substring for glued bodies
      (``"#hearttransplant"`` → heart).  Substring matching requires alias
      length >= 4, so short inflections cannot fire spuriously.
    * Each organ counts at most once per token, but every mentioning token
      counts — "kidney kidney kidney" yields 3 kidney mentions.  Mention
      *counts* feed the attention matrix.
    """

    #: Bound on the per-instance hashtag-body memo; glued hashtags repeat
    #: heavily, so steady state is far below this.
    _TAG_CACHE_LIMIT = 65536

    def __init__(self, aliases: dict[str, Organ] | None = None):
        self._aliases = dict(ALIASES if aliases is None else aliases)
        self._substring_terms = tuple(
            term for term in self._aliases if len(term) >= 4
        )
        self._automaton = AhoCorasick(self._substring_terms)
        self._tag_organs: dict[str, tuple[Organ, ...]] = {}

    def mentions(self, text: str) -> Counter[Organ]:
        """Count organ mentions in one tweet's text (automaton path)."""
        counts: Counter[Organ] = Counter()
        words, hashtags = scan_words_hashtags(text)
        aliases = self._aliases
        for word in words:
            organ = aliases.get(word)
            if organ is not None:
                counts[organ] += 1
                continue
            parts = split_compound(word)
            if parts:
                for matched in frozenset(
                    aliases[part] for part in parts if part in aliases
                ):
                    counts[matched] += 1
        for tag in hashtags:
            for matched in self._hashtag_organs(tag):
                counts[matched] += 1
        return counts

    def _hashtag_organs(self, tag: str) -> tuple[Organ, ...]:
        """Organs matched by one hashtag body, each at most once (memoized)."""
        cached = self._tag_organs.get(tag)
        if cached is not None:
            return cached
        organ = self._aliases.get(tag)
        if organ is not None:
            result: tuple[Organ, ...] = (organ,)
        else:
            # The automaton returns terms sorted; dedupe to organs in
            # canonical order so counting stays order-independent.
            found = frozenset(
                self._aliases[term] for term in self._automaton.find(tag)
            )
            result = tuple(sorted(found, key=lambda o: o.index))
        cache = self._tag_organs
        if len(cache) >= self._TAG_CACHE_LIMIT:
            del cache[next(iter(cache))]
        cache[tag] = result
        return result

    def mentions_naive(self, text: str) -> Counter[Organ]:
        """Count organ mentions via the original per-term scan.

        The reference implementation the automaton path is property-
        tested against; not used on the pipeline hot path.
        """
        counts: Counter[Organ] = Counter()
        for token in tokenize(text):
            for organ in self._match_token(token):
                counts[organ] += 1
        return counts

    def distinct_organs(self, text: str) -> frozenset[Organ]:
        """The set of organs mentioned at least once."""
        return frozenset(self.mentions(text))

    def _match_token(self, token: Token) -> frozenset[Organ]:
        if token.kind is TokenKind.WORD:
            organ = self._aliases.get(token.text)
            if organ is not None:
                return frozenset((organ,))
            parts = split_compound(token.text)
            if parts:
                return frozenset(
                    self._aliases[part] for part in parts if part in self._aliases
                )
            return frozenset()
        if token.kind is TokenKind.HASHTAG:
            organ = self._aliases.get(token.text)
            if organ is not None:
                return frozenset((organ,))
            return frozenset(
                self._aliases[term]
                for term in self._substring_terms
                if term in token.text
            )
        return frozenset()
