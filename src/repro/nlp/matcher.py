"""Organ-mention extraction from tweet text.

Maps every tweet to the multiset of organs it mentions.  The contingency
matrix of :mod:`repro.core.attention` is built from these mentions, so the
matcher's recall/precision directly shapes every downstream result.
"""

from __future__ import annotations

from collections import Counter

from repro.organs import ALIASES, Organ
from repro.nlp.tokenize import Token, TokenKind, tokenize


class OrganMatcher:
    """Extract organ mentions from tweet text.

    Matching rules:

    * WORD tokens match aliases exactly; hyphen/apostrophe compounds are
      split so ``"kidney-liver"`` counts both organs.
    * HASHTAG tokens match exactly, then by substring for glued bodies
      (``"#hearttransplant"`` → heart).  Substring matching requires alias
      length >= 4, so short inflections cannot fire spuriously.
    * Each organ counts at most once per token, but every mentioning token
      counts — "kidney kidney kidney" yields 3 kidney mentions.  Mention
      *counts* feed the attention matrix.
    """

    def __init__(self, aliases: dict[str, Organ] | None = None):
        self._aliases = dict(ALIASES if aliases is None else aliases)
        self._substring_terms = tuple(
            term for term in self._aliases if len(term) >= 4
        )

    def mentions(self, text: str) -> Counter[Organ]:
        """Count organ mentions in one tweet's text."""
        counts: Counter[Organ] = Counter()
        for token in tokenize(text):
            for organ in self._match_token(token):
                counts[organ] += 1
        return counts

    def distinct_organs(self, text: str) -> frozenset[Organ]:
        """The set of organs mentioned at least once."""
        return frozenset(self.mentions(text))

    def _match_token(self, token: Token) -> frozenset[Organ]:
        if token.kind is TokenKind.WORD:
            organ = self._aliases.get(token.text)
            if organ is not None:
                return frozenset((organ,))
            if "-" in token.text or "'" in token.text or "’" in token.text:
                parts = token.text.replace("’", "'").replace("'", "-").split("-")
                return frozenset(
                    self._aliases[part] for part in parts if part in self._aliases
                )
            return frozenset()
        if token.kind is TokenKind.HASHTAG:
            organ = self._aliases.get(token.text)
            if organ is not None:
                return frozenset((organ,))
            return frozenset(
                self._aliases[term]
                for term in self._substring_terms
                if term in token.text
            )
        return frozenset()
