"""Silhouette coefficient (Rousseeuw 1987).

The paper selects k = 12 for the user clustering by comparing inertia,
average cluster size, and the silhouette coefficient (reported 0.953).
The implementation supports Euclidean feature input and subsampling —
silhouette is O(m²) in distance evaluations, and the paper's matrix has
~72k rows, so model-selection sweeps evaluate it on a deterministic
subsample, which is standard practice.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError


def silhouette_samples(rows: np.ndarray, labels: np.ndarray) -> np.ndarray:
    """Per-row silhouette values s(i) = (b − a) / max(a, b).

    ``a`` is the mean distance to co-members, ``b`` the smallest mean
    distance to another cluster.  Singleton clusters score 0 by convention
    (sklearn-compatible).

    Raises:
        ClusteringError: on shape mismatch or fewer than 2 clusters.
    """
    matrix = np.asarray(rows, dtype=float)
    label_arr = np.asarray(labels)
    if matrix.ndim != 2:
        raise ClusteringError(f"expected 2-D rows, got shape {matrix.shape}")
    if label_arr.shape != (matrix.shape[0],):
        raise ClusteringError(
            f"labels shape {label_arr.shape} does not match rows "
            f"{matrix.shape[0]}"
        )
    unique = np.unique(label_arr)
    if unique.size < 2:
        raise ClusteringError("silhouette requires at least 2 clusters")

    m = matrix.shape[0]
    # Mean distance from every row to every cluster, vectorized per cluster.
    cluster_mean_dist = np.empty((m, unique.size))
    counts = np.empty(unique.size)
    for index, label in enumerate(unique):
        members = matrix[label_arr == label]
        counts[index] = members.shape[0]
        # ||x−y|| for all x in rows, y in members.
        cross = _pairwise_euclidean(matrix, members)
        cluster_mean_dist[:, index] = cross.mean(axis=1)

    label_positions = np.searchsorted(unique, label_arr)
    own_count = counts[label_positions]
    own_mean = cluster_mean_dist[np.arange(m), label_positions]
    # a(i): exclude self-distance (0) from the own-cluster average.
    with np.errstate(invalid="ignore", divide="ignore"):
        a = own_mean * own_count / np.maximum(own_count - 1, 1)
    other = cluster_mean_dist.copy()
    other[np.arange(m), label_positions] = np.inf
    b = other.min(axis=1)
    denom = np.maximum(a, b)
    with np.errstate(invalid="ignore", divide="ignore"):
        s = (b - a) / denom
    # a = b = 0 (coincident points in both clusters): define s = 0, the
    # sklearn convention for degenerate geometry.
    s[denom == 0.0] = 0.0
    s[own_count <= 1] = 0.0
    return s


def silhouette_score(
    rows: np.ndarray,
    labels: np.ndarray,
    sample_size: int | None = None,
    seed: int = 0,
) -> float:
    """Mean silhouette, optionally over a deterministic subsample.

    Rows are sampled uniformly without replacement; the silhouette is
    then computed within the subsample.  Uniform sampling preserves the
    cluster-size distribution in expectation, which is what the mean
    silhouette integrates over.
    """
    matrix = np.asarray(rows, dtype=float)
    label_arr = np.asarray(labels)
    if sample_size is not None and sample_size < matrix.shape[0]:
        if sample_size < 2:
            raise ClusteringError(f"sample_size must be >= 2, got {sample_size}")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(matrix.shape[0], size=sample_size, replace=False)
        matrix = matrix[chosen]
        label_arr = label_arr[chosen]
        if np.unique(label_arr).size < 2:
            raise ClusteringError(
                "subsample collapsed to a single cluster; increase sample_size"
            )
    return float(silhouette_samples(matrix, label_arr).mean())


def _pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a_norms = np.einsum("ij,ij->i", a, a)[:, None]
    b_norms = np.einsum("ij,ij->i", b, b)[None, :]
    squared = a_norms + b_norms - 2.0 * (a @ b.T)
    return np.sqrt(np.clip(squared, 0.0, None))
