"""Silhouette coefficient (Rousseeuw 1987), in bounded memory.

The paper selects k = 12 for the user clustering by comparing inertia,
average cluster size, and the silhouette coefficient (reported 0.953).
Silhouette is O(m²) in distance *evaluations*, but it never needs the
full m×m distance matrix in memory: each row's per-cluster mean distances
are computed from one row-block of distances at a time.  At the paper's
~72k rows a full matrix would be ~41 GB; the chunked evaluation here runs
in a configurable memory budget (default 256 MB) with identical results.

:func:`silhouette_score` additionally supports deterministic subsampling
for model-selection sweeps, which is standard practice at this scale.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClusteringError

#: Default ceiling for the distance-block working set, in MiB.  Chosen so
#: a paper-scale (72k-row) evaluation fits comfortably alongside the rest
#: of an analysis process.
DEFAULT_MEMORY_BUDGET_MB = 256.0


def chunk_rows(m: int, memory_budget_mb: float) -> int:
    """Rows per distance block under ``memory_budget_mb``.

    A block of ``c`` rows materializes a (c, m) float64 distance matrix;
    the budget bounds that block (with a 2× margin for the intermediate
    norm/product buffers).  Always at least 1 row, so any budget makes
    progress — a tiny budget degrades to row-at-a-time evaluation.

    Raises:
        ClusteringError: on a non-positive budget.
    """
    if memory_budget_mb <= 0:
        raise ClusteringError(
            f"memory_budget_mb must be > 0, got {memory_budget_mb}"
        )
    budget_bytes = memory_budget_mb * 1024 * 1024
    return max(1, int(budget_bytes // (2 * 8 * m)))


def silhouette_samples(
    rows: np.ndarray,
    labels: np.ndarray,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
) -> np.ndarray:
    """Per-row silhouette values s(i) = (b − a) / max(a, b).

    ``a`` is the mean distance to co-members, ``b`` the smallest mean
    distance to another cluster.  Singleton clusters score 0 by convention
    (sklearn-compatible).  Distances are evaluated in row blocks sized to
    ``memory_budget_mb``; the result is independent of the budget.

    Raises:
        ClusteringError: on shape mismatch, fewer than 2 clusters, or a
            non-positive memory budget.
    """
    matrix = np.asarray(rows, dtype=float)
    label_arr = np.asarray(labels)
    if matrix.ndim != 2:
        raise ClusteringError(f"expected 2-D rows, got shape {matrix.shape}")
    if label_arr.shape != (matrix.shape[0],):
        raise ClusteringError(
            f"labels shape {label_arr.shape} does not match rows "
            f"{matrix.shape[0]}"
        )
    unique, label_positions = np.unique(label_arr, return_inverse=True)
    if unique.size < 2:
        raise ClusteringError("silhouette requires at least 2 clusters")

    m = matrix.shape[0]
    counts = np.bincount(label_positions, minlength=unique.size).astype(float)
    # Group columns by cluster once so each distance block aggregates to
    # per-cluster sums with one reduceat instead of a per-cluster pass.
    order = np.argsort(label_positions, kind="stable")
    grouped = matrix[order]
    boundaries = np.searchsorted(
        label_positions[order], np.arange(unique.size)
    )

    chunk = chunk_rows(m, memory_budget_mb)
    cluster_mean_dist = np.empty((m, unique.size))
    for begin in range(0, m, chunk):
        block = matrix[begin : begin + chunk]
        distances = _pairwise_euclidean(block, grouped)
        sums = np.add.reduceat(distances, boundaries, axis=1)
        cluster_mean_dist[begin : begin + chunk] = sums / counts[None, :]

    own_count = counts[label_positions]
    own_mean = cluster_mean_dist[np.arange(m), label_positions]
    # a(i): exclude self-distance (0) from the own-cluster average.
    with np.errstate(invalid="ignore", divide="ignore"):
        a = own_mean * own_count / np.maximum(own_count - 1, 1)
    other = cluster_mean_dist
    other[np.arange(m), label_positions] = np.inf
    b = other.min(axis=1)
    denom = np.maximum(a, b)
    with np.errstate(invalid="ignore", divide="ignore"):
        s = (b - a) / denom
    # a = b = 0 (coincident points in both clusters): define s = 0, the
    # sklearn convention for degenerate geometry.
    s[denom == 0.0] = 0.0
    s[own_count <= 1] = 0.0
    return s


def silhouette_score(
    rows: np.ndarray,
    labels: np.ndarray,
    sample_size: int | None = None,
    seed: int = 0,
    memory_budget_mb: float = DEFAULT_MEMORY_BUDGET_MB,
) -> float:
    """Mean silhouette, optionally over a deterministic subsample.

    Rows are sampled uniformly without replacement; the silhouette is
    then computed within the subsample.  Uniform sampling preserves the
    cluster-size distribution in expectation, which is what the mean
    silhouette integrates over.
    """
    matrix = np.asarray(rows, dtype=float)
    label_arr = np.asarray(labels)
    if sample_size is not None and sample_size < matrix.shape[0]:
        if sample_size < 2:
            raise ClusteringError(f"sample_size must be >= 2, got {sample_size}")
        rng = np.random.default_rng(seed)
        chosen = rng.choice(matrix.shape[0], size=sample_size, replace=False)
        matrix = matrix[chosen]
        label_arr = label_arr[chosen]
        if np.unique(label_arr).size < 2:
            raise ClusteringError(
                "subsample collapsed to a single cluster; increase sample_size"
            )
    return float(
        silhouette_samples(
            matrix, label_arr, memory_budget_mb=memory_budget_mb
        ).mean()
    )


def _pairwise_euclidean(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    a_norms = np.einsum("ij,ij->i", a, a)[:, None]
    b_norms = np.einsum("ij,ij->i", b, b)[None, :]
    squared = a_norms + b_norms - 2.0 * (a @ b.T)
    # In-place clamp + sqrt: the (len(a), len(b)) product is the only
    # large buffer, which is what the memory budget accounts for.
    np.maximum(squared, 0.0, out=squared)
    return np.sqrt(squared, out=squared)
