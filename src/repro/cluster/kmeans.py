"""K-Means clustering (k-means++ initialization, Lloyd iterations).

From-scratch replacement for ``sklearn.cluster.KMeans`` with the pieces
the paper's §IV-C model selection needs: inertia, multiple restarts, and
deterministic seeding.  Fully vectorized; comfortably handles the paper's
~72k × 6 user matrix.

Restarts are statistically independent: each draws from its own RNG
stream spawned from the model seed, so the winning fit is identical
whether restarts run serially or fan out across worker processes
(``workers > 1``), and ties on inertia break toward the lowest restart
index in both modes.

Parallel restarts run under the supervised pool (:mod:`repro.supervise`):
a worker that crashes, hangs, or raises mid-restart is retried
deterministically and the winning fit is unchanged.  Unlike the sharded
collection pipeline, a model fit must never *degrade* — a restart chunk
quarantined after exhausting its retries raises :class:`ClusteringError`
rather than silently fitting with fewer restarts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError
from repro.faults.compute import WorkerFaultPlan
from repro.procpool import split_chunks
from repro.supervise import SupervisorPolicy, run_supervised


@dataclass(frozen=True, slots=True)
class KMeansResult:
    """Outcome of one K-Means fit.

    Attributes:
        labels: (m,) cluster index per row.
        centers: (k, n) final cluster centers.
        inertia: sum of squared distances of rows to their centers.
        n_iter: Lloyd iterations executed in the winning restart.
        converged: whether the winning restart met the tolerance.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int
    converged: bool

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """(k,) number of rows in each cluster."""
        return np.bincount(self.labels, minlength=self.k)


class KMeans:
    """K-Means with k-means++ seeding and restarts.

    Args:
        k: number of clusters.
        n_init: independent restarts; the lowest-inertia fit wins.
        max_iter: Lloyd iteration cap per restart.
        tol: convergence threshold on squared center movement.
        seed: RNG seed; every restart draws from its own stream spawned
            from this seed.
        workers: processes to fan the restarts across; ``1`` runs them
            serially.  The winning fit is identical for any value.
        supervisor: retry/deadline policy for the supervised pool;
            forces the supervised path even at ``workers=1``.
        fault_plan: compute-fault plan injected into restart workers
            (chaos testing); forces the supervised path even at
            ``workers=1``.

    Raises:
        ClusteringError: on invalid parameters, k > number of rows, or a
            restart chunk quarantined by the supervisor (a fit must
            never silently use fewer restarts).
    """

    def __init__(
        self,
        k: int,
        n_init: int = 8,
        max_iter: int = 200,
        tol: float = 1e-6,
        seed: int = 0,
        workers: int = 1,
        supervisor: SupervisorPolicy | None = None,
        fault_plan: WorkerFaultPlan | None = None,
    ):
        if k < 1:
            raise ClusteringError(f"k must be >= 1, got {k}")
        if n_init < 1:
            raise ClusteringError(f"n_init must be >= 1, got {n_init}")
        if max_iter < 1:
            raise ClusteringError(f"max_iter must be >= 1, got {max_iter}")
        if workers < 1:
            raise ClusteringError(f"workers must be >= 1, got {workers}")
        self.k = k
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed
        self.workers = workers
        self.supervisor = supervisor
        self.fault_plan = fault_plan

    def fit(self, rows: np.ndarray) -> KMeansResult:
        """Cluster the rows of a (m, n) matrix."""
        matrix = np.asarray(rows, dtype=float)
        if matrix.ndim != 2:
            raise ClusteringError(f"expected 2-D input, got shape {matrix.shape}")
        m = matrix.shape[0]
        if self.k > m:
            raise ClusteringError(f"k={self.k} exceeds number of rows {m}")
        restarts = list(range(self.n_init))
        supervised = self.supervisor is not None or self.fault_plan is not None
        if not supervised and (self.workers == 1 or self.n_init == 1):
            winners = [_fit_restart_chunk(self, matrix, restarts)]
        else:
            chunks = split_chunks(restarts, self.workers)
            outcomes, health = run_supervised(
                _restart_chunk_task,
                [(self, matrix, chunk) for chunk in chunks],
                workers=min(self.workers, len(chunks)),
                policy=self.supervisor,
                fault_plan=self.fault_plan,
                labels=[
                    f"restarts {chunk[0]}..{chunk[-1]}" for chunk in chunks
                ],
            )
            if health.degraded:
                lost = ", ".join(
                    letter.label for letter in health.dead_letters
                )
                raise ClusteringError(
                    "K-Means restart chunks were quarantined after "
                    f"exhausting retries ({lost}); refusing to fit with "
                    "fewer restarts"
                )
            winners = [outcome for outcome in outcomes if outcome is not None]
        # Lowest inertia wins; ties break to the lowest restart index so
        # the outcome never depends on how restarts were chunked.
        __, best = min(winners, key=lambda item: (item[1].inertia, item[0]))
        return best

    def _fit_once(self, matrix: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        centers = self._init_centers(matrix, rng)
        labels = np.zeros(matrix.shape[0], dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = _squared_distances(matrix, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            empty: list[int] = []
            for cluster in range(self.k):
                members = matrix[labels == cluster]
                if members.shape[0] > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    empty.append(cluster)
            if empty:
                # Re-seed empty clusters at the worst-fit rows, the
                # standard remedy that keeps exactly k clusters alive —
                # one *distinct* row per empty cluster, otherwise two
                # clusters emptied in the same iteration would collapse
                # onto the same center and never separate again.
                worst_first = np.argsort(np.min(distances, axis=1))[::-1]
                for cluster, row in zip(empty, worst_first):
                    new_centers[cluster] = matrix[row]
            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if shift <= self.tol:
                converged = True
                break
        distances = _squared_distances(matrix, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(matrix.shape[0]), labels].sum())
        return KMeansResult(
            labels=labels,
            centers=centers,
            inertia=inertia,
            n_iter=iteration,
            converged=converged,
        )

    def _init_centers(self, matrix: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding (Arthur & Vassilvitskii 2007)."""
        m = matrix.shape[0]
        centers = np.empty((self.k, matrix.shape[1]))
        first = int(rng.integers(m))
        centers[0] = matrix[first]
        closest_sq = _squared_distances(matrix, centers[:1]).ravel()
        for index in range(1, self.k):
            total = float(closest_sq.sum())
            if total <= 0.0:
                # All remaining rows coincide with chosen centers.
                choice = int(rng.integers(m))
            else:
                choice = int(rng.choice(m, p=closest_sq / total))
            centers[index] = matrix[choice]
            new_sq = _squared_distances(matrix, centers[index : index + 1]).ravel()
            closest_sq = np.minimum(closest_sq, new_sq)
        return centers


def _restart_chunk_task(
    payload: tuple[KMeans, np.ndarray, list[int]],
) -> tuple[int, KMeansResult]:
    """Worker entry point: unpack one supervised-pool restart chunk."""
    model, matrix, restarts = payload
    return _fit_restart_chunk(model, matrix, restarts)


def _fit_restart_chunk(
    model: KMeans, matrix: np.ndarray, restarts: list[int]
) -> tuple[int, KMeansResult]:
    """Run a chunk of restarts; return (restart index, result) of the best.

    Module-level so worker processes can unpickle it; restart ``i`` uses
    the i-th RNG stream spawned from the model seed regardless of which
    chunk (or process) runs it.
    """
    streams = np.random.SeedSequence(model.seed).spawn(model.n_init)
    best: KMeansResult | None = None
    best_index = -1
    for index in restarts:
        result = model._fit_once(matrix, np.random.default_rng(streams[index]))
        if best is None or result.inertia < best.inertia:
            best, best_index = result, index
    if best is None:
        raise ClusteringError(
            "restart chunk is empty: no restarts were assigned to this "
            "worker"
        )
    return best_index, best


def _squared_distances(matrix: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(m, k) squared Euclidean distances from rows to centers."""
    row_norms = np.einsum("ij,ij->i", matrix, matrix)[:, None]
    center_norms = np.einsum("ij,ij->i", centers, centers)[None, :]
    squared = row_norms + center_norms - 2.0 * (matrix @ centers.T)
    return np.clip(squared, 0.0, None)
