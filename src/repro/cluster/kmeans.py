"""K-Means clustering (k-means++ initialization, Lloyd iterations).

From-scratch replacement for ``sklearn.cluster.KMeans`` with the pieces
the paper's §IV-C model selection needs: inertia, multiple restarts, and
deterministic seeding.  Fully vectorized; comfortably handles the paper's
~72k × 6 user matrix.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError


@dataclass(frozen=True, slots=True)
class KMeansResult:
    """Outcome of one K-Means fit.

    Attributes:
        labels: (m,) cluster index per row.
        centers: (k, n) final cluster centers.
        inertia: sum of squared distances of rows to their centers.
        n_iter: Lloyd iterations executed in the winning restart.
        converged: whether the winning restart met the tolerance.
    """

    labels: np.ndarray
    centers: np.ndarray
    inertia: float
    n_iter: int
    converged: bool

    @property
    def k(self) -> int:
        return self.centers.shape[0]

    def cluster_sizes(self) -> np.ndarray:
        """(k,) number of rows in each cluster."""
        return np.bincount(self.labels, minlength=self.k)


class KMeans:
    """K-Means with k-means++ seeding and restarts.

    Args:
        k: number of clusters.
        n_init: independent restarts; the lowest-inertia fit wins.
        max_iter: Lloyd iteration cap per restart.
        tol: convergence threshold on squared center movement.
        seed: RNG seed.

    Raises:
        ClusteringError: on invalid parameters or k > number of rows.
    """

    def __init__(
        self,
        k: int,
        n_init: int = 8,
        max_iter: int = 200,
        tol: float = 1e-6,
        seed: int = 0,
    ):
        if k < 1:
            raise ClusteringError(f"k must be >= 1, got {k}")
        if n_init < 1:
            raise ClusteringError(f"n_init must be >= 1, got {n_init}")
        if max_iter < 1:
            raise ClusteringError(f"max_iter must be >= 1, got {max_iter}")
        self.k = k
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.seed = seed

    def fit(self, rows: np.ndarray) -> KMeansResult:
        """Cluster the rows of a (m, n) matrix."""
        matrix = np.asarray(rows, dtype=float)
        if matrix.ndim != 2:
            raise ClusteringError(f"expected 2-D input, got shape {matrix.shape}")
        m = matrix.shape[0]
        if self.k > m:
            raise ClusteringError(f"k={self.k} exceeds number of rows {m}")
        rng = np.random.default_rng(self.seed)
        best: KMeansResult | None = None
        for __ in range(self.n_init):
            result = self._fit_once(matrix, rng)
            if best is None or result.inertia < best.inertia:
                best = result
        assert best is not None
        return best

    def _fit_once(self, matrix: np.ndarray, rng: np.random.Generator) -> KMeansResult:
        centers = self._init_centers(matrix, rng)
        labels = np.zeros(matrix.shape[0], dtype=np.int64)
        converged = False
        iteration = 0
        for iteration in range(1, self.max_iter + 1):
            distances = _squared_distances(matrix, centers)
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for cluster in range(self.k):
                members = matrix[labels == cluster]
                if members.shape[0] > 0:
                    new_centers[cluster] = members.mean(axis=0)
                else:
                    # Re-seed an empty cluster at the worst-fit row, the
                    # standard remedy that keeps exactly k clusters alive.
                    worst = int(np.argmax(np.min(distances, axis=1)))
                    new_centers[cluster] = matrix[worst]
            shift = float(np.sum((new_centers - centers) ** 2))
            centers = new_centers
            if shift <= self.tol:
                converged = True
                break
        distances = _squared_distances(matrix, centers)
        labels = np.argmin(distances, axis=1)
        inertia = float(distances[np.arange(matrix.shape[0]), labels].sum())
        return KMeansResult(
            labels=labels,
            centers=centers,
            inertia=inertia,
            n_iter=iteration,
            converged=converged,
        )

    def _init_centers(self, matrix: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """k-means++ seeding (Arthur & Vassilvitskii 2007)."""
        m = matrix.shape[0]
        centers = np.empty((self.k, matrix.shape[1]))
        first = int(rng.integers(m))
        centers[0] = matrix[first]
        closest_sq = _squared_distances(matrix, centers[:1]).ravel()
        for index in range(1, self.k):
            total = float(closest_sq.sum())
            if total <= 0.0:
                # All remaining rows coincide with chosen centers.
                choice = int(rng.integers(m))
            else:
                choice = int(rng.choice(m, p=closest_sq / total))
            centers[index] = matrix[choice]
            new_sq = _squared_distances(matrix, centers[index : index + 1]).ravel()
            closest_sq = np.minimum(closest_sq, new_sq)
        return centers


def _squared_distances(matrix: np.ndarray, centers: np.ndarray) -> np.ndarray:
    """(m, k) squared Euclidean distances from rows to centers."""
    row_norms = np.einsum("ij,ij->i", matrix, matrix)[:, None]
    center_norms = np.einsum("ij,ij->i", centers, centers)[None, :]
    squared = row_norms + center_norms - 2.0 * (matrix @ centers.T)
    return np.clip(squared, 0.0, None)
