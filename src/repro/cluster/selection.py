"""Model-selection utilities for choosing k.

The paper chooses k = 12 "after some empirical analysis comparing the
inertia, the average cluster size, and the silhouette coefficient".  This
module packages that empirical analysis: elbow (maximum-curvature)
detection on the inertia curve and a combined selection rule that
requires a minimum silhouette and a minimum average cluster size — the
same three criteria, made explicit and testable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError


def elbow_k(ks: tuple[int, ...], inertias: tuple[float, ...]) -> int:
    """The elbow of an inertia curve by the maximum-distance rule.

    Draws the chord from the first to the last point of the (k, inertia)
    curve and returns the k whose point lies farthest below the chord —
    the standard geometric "kneedle" criterion.

    Raises:
        ClusteringError: with fewer than 3 points (no interior elbow) or
            misaligned inputs.
    """
    if len(ks) != len(inertias):
        raise ClusteringError(
            f"{len(ks)} ks but {len(inertias)} inertia values"
        )
    if len(ks) < 3:
        raise ClusteringError("elbow detection needs at least 3 points")
    if list(ks) != sorted(set(ks)):
        raise ClusteringError("ks must be strictly increasing")

    x = np.asarray(ks, dtype=float)
    y = np.asarray(inertias, dtype=float)
    # Normalize both axes so the chord geometry is scale-free.
    x_span = x[-1] - x[0]
    y_span = y[0] - y[-1]
    if y_span <= 0:
        # Flat or rising inertia: no curvature information; smallest k
        # is the parsimonious answer.
        return int(ks[0])
    x_norm = (x - x[0]) / x_span
    y_norm = (y[0] - y) / y_span  # increasing, 0 → 1
    # Distance below the y = x chord.
    gap = y_norm - x_norm
    return int(ks[int(np.argmax(gap))])


@dataclass(frozen=True, slots=True)
class KSelection:
    """Outcome of the three-criteria selection.

    Attributes:
        k: chosen number of clusters.
        elbow: the inertia-curve elbow.
        candidates: ks that passed the silhouette and size floors.
        reason: human-readable justification.
    """

    k: int
    elbow: int
    candidates: tuple[int, ...]
    reason: str


def select_k(
    ks: tuple[int, ...],
    inertias: tuple[float, ...],
    silhouettes: tuple[float, ...],
    avg_sizes: tuple[float, ...],
    min_silhouette: float = 0.85,
    min_avg_size: float = 100.0,
) -> KSelection:
    """The paper's three-criteria k selection, made explicit.

    Among ks whose silhouette and average cluster size meet the floors,
    prefer the one nearest the inertia elbow (ties toward larger k, which
    gives finer segments at equal evidence).  If nothing passes the
    floors, fall back to the best-silhouette k.
    """
    if not (len(ks) == len(inertias) == len(silhouettes) == len(avg_sizes)):
        raise ClusteringError("selection inputs must be aligned")
    elbow = elbow_k(ks, inertias)
    candidates = tuple(
        k
        for k, silhouette, avg_size in zip(ks, silhouettes, avg_sizes)
        if silhouette >= min_silhouette and avg_size >= min_avg_size
    )
    if not candidates:
        best = ks[int(np.argmax(silhouettes))]
        return KSelection(
            k=int(best),
            elbow=elbow,
            candidates=(),
            reason="no k met the silhouette/size floors; best silhouette",
        )
    chosen = min(candidates, key=lambda k: (abs(k - elbow), -k))
    return KSelection(
        k=int(chosen),
        elbow=elbow,
        candidates=candidates,
        reason=(
            f"nearest to inertia elbow k={elbow} among "
            f"{len(candidates)} candidates passing floors"
        ),
    )
