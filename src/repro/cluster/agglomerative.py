"""Agglomerative (hierarchical) clustering over a precomputed affinity.

Replacement for ``sklearn.cluster.AgglomerativeClustering`` with the
pieces §IV-B2 uses: precomputed-affinity input (the Bhattacharyya matrix),
single/complete/average linkage, flat cuts at any number of clusters, and
a dendrogram with a deterministic leaf ordering — the paper reads its
Fig. 6 "from the leftmost state to the rightmost state", so leaf order is
part of the reproduced artifact.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ClusteringError

_LINKAGES = ("single", "complete", "average")


@dataclass(frozen=True, slots=True)
class MergeStep:
    """One agglomeration: clusters ``left`` and ``right`` merge at ``height``.

    Cluster ids follow SciPy convention: ids < m are leaves; merge ``i``
    creates cluster ``m + i``.
    """

    left: int
    right: int
    height: float
    size: int


class Dendrogram:
    """The full merge tree produced by agglomerative clustering."""

    def __init__(self, n_leaves: int, merges: list[MergeStep]):
        if len(merges) != n_leaves - 1:
            raise ClusteringError(
                f"a dendrogram over {n_leaves} leaves needs {n_leaves - 1} "
                f"merges, got {len(merges)}"
            )
        self.n_leaves = n_leaves
        self.merges = tuple(merges)

    def leaf_order(self) -> list[int]:
        """Left-to-right leaf ordering of the tree.

        Children of every merge keep their creation order (left = the
        earlier-formed cluster), giving a deterministic ordering in which
        similar leaves sit adjacently — the Fig. 6 axis.
        """
        children: dict[int, tuple[int, int]] = {}
        for index, merge in enumerate(self.merges):
            children[self.n_leaves + index] = (merge.left, merge.right)
        order: list[int] = []
        stack = [self.n_leaves + len(self.merges) - 1]
        while stack:
            node = stack.pop()
            if node < self.n_leaves:
                order.append(node)
            else:
                left, right = children[node]
                stack.append(right)
                stack.append(left)
        return order

    def cut(self, n_clusters: int) -> np.ndarray:
        """Flat labels from cutting the tree into ``n_clusters`` clusters.

        Labels are assigned by first appearance in leaf index order, so
        results are deterministic across runs.
        """
        if not 1 <= n_clusters <= self.n_leaves:
            raise ClusteringError(
                f"n_clusters must be in [1, {self.n_leaves}], got {n_clusters}"
            )
        parent = list(range(self.n_leaves + len(self.merges)))

        def find(node: int) -> int:
            while parent[node] != node:
                parent[node] = parent[parent[node]]
                node = parent[node]
            return node

        # Apply merges until exactly n_clusters components remain.
        for index, merge in enumerate(self.merges[: self.n_leaves - n_clusters]):
            new_id = self.n_leaves + index
            parent[find(merge.left)] = new_id
            parent[find(merge.right)] = new_id
        roots: dict[int, int] = {}
        labels = np.empty(self.n_leaves, dtype=np.int64)
        for leaf in range(self.n_leaves):
            root = find(leaf)
            if root not in roots:
                roots[root] = len(roots)
            labels[leaf] = roots[root]
        return labels


class AgglomerativeClustering:
    """Hierarchical clustering from a precomputed distance matrix.

    Args:
        linkage: ``single``, ``complete``, or ``average`` (paper default).

    The Lance–Williams update is applied on a working copy of the distance
    matrix; complexity is O(m³) worst case, which is trivial for the 52
    states of the paper and fine up to a few thousand items.
    """

    def __init__(self, linkage: str = "average"):
        if linkage not in _LINKAGES:
            raise ClusteringError(
                f"linkage must be one of {_LINKAGES}, got {linkage!r}"
            )
        self.linkage = linkage

    def fit(self, distances: np.ndarray) -> Dendrogram:
        """Build the dendrogram from a symmetric (m, m) distance matrix.

        Raises:
            ClusteringError: if the matrix is not square/symmetric or has
                a nonzero diagonal.
        """
        matrix = np.asarray(distances, dtype=float).copy()
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ClusteringError(
                f"expected a square matrix, got shape {matrix.shape}"
            )
        if not np.allclose(matrix, matrix.T, atol=1e-9):
            raise ClusteringError("distance matrix must be symmetric")
        if not np.allclose(np.diag(matrix), 0.0, atol=1e-9):
            raise ClusteringError("distance matrix diagonal must be zero")
        m = matrix.shape[0]
        if m < 2:
            raise ClusteringError("need at least 2 items to cluster")

        active_id = list(range(m))       # position -> current cluster id
        sizes = [1] * m                  # position -> cluster size
        alive = [True] * m
        np.fill_diagonal(matrix, math.inf)
        merges: list[MergeStep] = []

        for step in range(m - 1):
            best = math.inf
            best_pair = (-1, -1)
            for i in range(m):
                if not alive[i]:
                    continue
                row = matrix[i]
                j = int(np.argmin(row))
                if row[j] < best and alive[j]:
                    best = float(row[j])
                    best_pair = (i, j) if i < j else (j, i)
            i, j = best_pair
            left_id, right_id = active_id[i], active_id[j]
            if left_id > right_id:
                left_id, right_id = right_id, left_id
            new_size = sizes[i] + sizes[j]
            merges.append(
                MergeStep(left=left_id, right=right_id, height=best, size=new_size)
            )
            # Lance–Williams update into row/col i; retire j.
            for other in range(m):
                if not alive[other] or other in (i, j):
                    continue
                d_i, d_j = matrix[i, other], matrix[j, other]
                if self.linkage == "single":
                    updated = min(d_i, d_j)
                elif self.linkage == "complete":
                    updated = max(d_i, d_j)
                else:  # average
                    updated = (sizes[i] * d_i + sizes[j] * d_j) / new_size
                matrix[i, other] = matrix[other, i] = updated
            alive[j] = False
            matrix[j, :] = math.inf
            matrix[:, j] = math.inf
            matrix[i, i] = math.inf
            sizes[i] = new_size
            active_id[i] = m + step
        return Dendrogram(n_leaves=m, merges=merges)

    def fit_predict(self, distances: np.ndarray, n_clusters: int) -> np.ndarray:
        """Convenience: build the tree and cut it at ``n_clusters``."""
        return self.fit(distances).cut(n_clusters)
