"""Distance functions over attention distributions.

The paper clusters states with the **Bhattacharyya distance** (Kailath
1967, its ref [34]) because rows of K are discrete probability
distributions, for which Euclidean distance is a poor fit.  Hellinger is
included as the bounded relative of Bhattacharyya for the affinity
ablation bench.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ClusteringError

#: Clamp for the Bhattacharyya coefficient so BC=0 (disjoint supports)
#: yields a large finite distance instead of infinity.
_MIN_COEFFICIENT = 1e-12


def _validate_distribution_pair(p: np.ndarray, q: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape or p_arr.ndim != 1:
        raise ClusteringError(
            f"expected equal-length 1-D distributions, got {p_arr.shape} "
            f"and {q_arr.shape}"
        )
    if np.any(p_arr < -1e-12) or np.any(q_arr < -1e-12):
        raise ClusteringError("distributions must be non-negative")
    return np.clip(p_arr, 0.0, None), np.clip(q_arr, 0.0, None)


def bhattacharyya_coefficient(p: np.ndarray, q: np.ndarray) -> float:
    """BC(p, q) = Σ √(pᵢ qᵢ); 1 for identical distributions."""
    p_arr, q_arr = _validate_distribution_pair(p, q)
    return float(np.sqrt(p_arr * q_arr).sum())


def bhattacharyya_distance(p: np.ndarray, q: np.ndarray) -> float:
    """D_B(p, q) = −ln BC(p, q); 0 iff p = q (for distributions)."""
    coefficient = bhattacharyya_coefficient(p, q)
    return -math.log(max(min(coefficient, 1.0), _MIN_COEFFICIENT))


def hellinger_distance(p: np.ndarray, q: np.ndarray) -> float:
    """H(p, q) = √(1 − BC); bounded in [0, 1], metric."""
    coefficient = bhattacharyya_coefficient(p, q)
    return math.sqrt(max(0.0, 1.0 - min(coefficient, 1.0)))


def euclidean_distance(p: np.ndarray, q: np.ndarray) -> float:
    """Plain L2 distance (the ablation baseline)."""
    p_arr = np.asarray(p, dtype=float)
    q_arr = np.asarray(q, dtype=float)
    if p_arr.shape != q_arr.shape:
        raise ClusteringError(
            f"shape mismatch: {p_arr.shape} vs {q_arr.shape}"
        )
    return float(np.linalg.norm(p_arr - q_arr))


_METRICS = {
    "bhattacharyya": bhattacharyya_distance,
    "hellinger": hellinger_distance,
    "euclidean": euclidean_distance,
}


def pairwise_distances(rows: np.ndarray, metric: str = "bhattacharyya") -> np.ndarray:
    """Symmetric pairwise distance matrix over the rows of a matrix.

    Args:
        rows: (m, n) matrix; each row is one item.
        metric: one of ``bhattacharyya``, ``hellinger``, ``euclidean``.

    Raises:
        ClusteringError: on an unknown metric or malformed input.
    """
    distance = _METRICS.get(metric)
    if distance is None:
        raise ClusteringError(
            f"unknown metric {metric!r}; expected one of {sorted(_METRICS)}"
        )
    matrix = np.asarray(rows, dtype=float)
    if matrix.ndim != 2:
        raise ClusteringError(f"expected a 2-D matrix, got shape {matrix.shape}")
    m = matrix.shape[0]
    if metric == "euclidean":
        # Vectorized: ||a−b||² = ||a||² + ||b||² − 2a·b.
        squared_norms = np.einsum("ij,ij->i", matrix, matrix)
        gram = matrix @ matrix.T
        squared = squared_norms[:, None] + squared_norms[None, :] - 2.0 * gram
        result = np.sqrt(np.clip(squared, 0.0, None))
        np.fill_diagonal(result, 0.0)
        return result
    roots = np.sqrt(np.clip(matrix, 0.0, None))
    coefficients = np.clip(roots @ roots.T, _MIN_COEFFICIENT, 1.0)
    if metric == "bhattacharyya":
        result = -np.log(coefficients)
    else:  # hellinger
        result = np.sqrt(np.clip(1.0 - coefficients, 0.0, None))
    np.fill_diagonal(result, 0.0)
    return result
