"""Clustering substrate: K-Means, agglomerative clustering, silhouette.

The paper uses scikit-learn (its ref [33]); sklearn is unavailable here,
so these are from-scratch NumPy implementations with the same semantics
the paper relies on: K-Means with k-means++ initialization and inertia,
agglomerative clustering over a precomputed affinity (Bhattacharyya
distance, the paper's choice for discrete distributions), and the
silhouette coefficient used for the k = 12 model selection.
"""

from repro.cluster.agglomerative import AgglomerativeClustering, Dendrogram, MergeStep
from repro.cluster.distances import (
    bhattacharyya_distance,
    euclidean_distance,
    hellinger_distance,
    pairwise_distances,
)
from repro.cluster.kmeans import KMeans, KMeansResult
from repro.cluster.silhouette import silhouette_samples, silhouette_score

__all__ = [
    "AgglomerativeClustering",
    "Dendrogram",
    "KMeans",
    "KMeansResult",
    "MergeStep",
    "bhattacharyya_distance",
    "euclidean_distance",
    "hellinger_distance",
    "pairwise_distances",
    "silhouette_samples",
    "silhouette_score",
]
