"""Command-line interface.

``python -m repro <command>`` drives the full reproduction from the
shell, with JSONL files as the interchange format between stages:

* ``generate``  — synthesize a world and write its firehose to JSONL.
* ``collect``   — run the §III-A pipeline over a firehose file (or an
  on-the-fly world) and write the analysis corpus.
* ``analyze``   — regenerate any subset of the paper's artifacts from a
  corpus file.
* ``monitor``   — replay a firehose through the rolling awareness sensor.
* ``calibrate`` — check a generated world against the Table I targets.
"""

from repro.cli.main import main

__all__ = ["main"]
