"""CLI entry point: argument parsing and command dispatch."""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.cli import commands


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Characterizing Organ Donation Awareness from "
            "Social Media' (ICDE 2017)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    generate = subparsers.add_parser(
        "generate", help="synthesize a world and write its firehose to JSONL"
    )
    generate.add_argument("output", help="firehose JSONL path")
    generate.add_argument("--scale", type=float, default=0.02,
                          help="size relative to the paper (1.0 ≈ Table I)")
    generate.add_argument("--seed", type=int, default=0)
    generate.set_defaults(func=commands.cmd_generate)

    collect = subparsers.add_parser(
        "collect", help="run the collection pipeline over a firehose"
    )
    collect.add_argument("firehose", help="firehose JSONL path (from generate)")
    collect.add_argument("output", help="corpus JSONL path")
    collect.add_argument("--min-confidence", type=float, default=0.5)
    collect.add_argument("--no-geotag", action="store_true",
                         help="ignore GPS geo-tags (profile geocoding only)")
    collect.add_argument("--chaos", action="store_true",
                         help="inject the full Streaming API failure "
                         "taxonomy (disconnects, 420/503, stalls, "
                         "duplicates, torn payloads) and collect through "
                         "the resilient client; the corpus is identical "
                         "to a fault-free run")
    collect.add_argument("--chaos-seed", type=int, default=0,
                         help="seed for the deterministic fault schedule")
    collect.add_argument("--workers", type=int, default=1,
                         help="shard the pipeline across N worker "
                         "processes; the corpus is byte-identical to a "
                         "serial run for any N")
    collect.add_argument("--worker-chaos", action="store_true",
                         help="inject compute faults (worker crashes, "
                         "exception storms, slow tasks) into the "
                         "supervised pool; the corpus is byte-identical "
                         "to a fault-free run")
    collect.add_argument("--worker-chaos-seed", type=int, default=0,
                         help="seed for the deterministic worker-fault "
                         "schedule")
    collect.add_argument("--disk-chaos", action="store_true",
                         help="write the corpus through a fault-injecting "
                         "filesystem (transient EIO, lying fsyncs); the "
                         "atomic-durable writer absorbs every fault and "
                         "the corpus is byte-identical to a fault-free "
                         "run")
    collect.add_argument("--disk-chaos-seed", type=int, default=0,
                         help="seed for the deterministic disk-fault "
                         "schedule")
    collect.add_argument("--trace", action=argparse.BooleanOptionalAction,
                         default=False,
                         help="record run telemetry (stage/shard spans, "
                         "funnel and fault counters) and write it to "
                         "<output>.trace.jsonl; the corpus is "
                         "byte-identical with or without tracing")
    collect.set_defaults(func=commands.cmd_collect)

    scrub = subparsers.add_parser(
        "scrub",
        help="verify manifested files (corpora, checkpoints, run "
        "artifacts) against their integrity sidecars; quarantine "
        "bitrot-damaged records into a dead-letter, repair whole files "
        "from replicas",
    )
    scrub.add_argument("paths", nargs="+",
                       help="files or directories to scrub (directories "
                       "are searched recursively for *.manifest.json "
                       "sidecars)")
    scrub.add_argument("--repair-from", default=None,
                       help="directory holding known-good replicas by "
                       "file name (e.g. a journaled run directory); "
                       "tried before quarantining")
    scrub.add_argument("--no-quarantine", action="store_true",
                       help="detect and report damage without modifying "
                       "any file")
    scrub.set_defaults(func=commands.cmd_scrub)

    analyze = subparsers.add_parser(
        "analyze", help="regenerate paper artifacts from a corpus"
    )
    analyze.add_argument("corpus", help="corpus JSONL path (from collect)")
    analyze.add_argument(
        "--artifacts", default="table1,fig2,fig3,fig4,fig5,fig6,fig7",
        help="comma-separated subset of: table1,fig2,...,fig7",
    )
    analyze.add_argument("--out", default=None,
                         help="directory for per-artifact text files")
    analyze.add_argument("--alpha", type=float, default=0.05,
                         help="significance level for Fig. 5")
    analyze.add_argument("--k", type=int, default=12,
                         help="number of user clusters for Fig. 7")
    analyze.add_argument("--csv", default=None,
                         help="directory for CSV exports of all artifacts")
    analyze.add_argument("--svg", default=None,
                         help="directory for SVG figures of all artifacts")
    analyze.set_defaults(func=commands.cmd_analyze)

    run = subparsers.add_parser(
        "run",
        help="execute the full generate→collect→analyze run into a "
        "journaled directory; kill it at any instant and --resume "
        "completes it with byte-identical artifacts",
    )
    run.add_argument("run_dir", help="run directory (artifacts + journal)")
    run.add_argument("--resume", action="store_true",
                     help="continue an interrupted run: journaled stages "
                     "are verified and skipped, the rest re-run")
    run.add_argument("--scale", type=float, default=0.02,
                     help="size relative to the paper (1.0 ≈ Table I)")
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--workers", type=int, default=1,
                     help="worker processes for the sharded collect")
    run.add_argument("--k", type=int, default=12,
                     help="number of user clusters for Fig. 7")
    run.add_argument("--alpha", type=float, default=0.05,
                     help="significance level for Fig. 5")
    run.add_argument("--chaos", action="store_true",
                     help="inject transport faults (resilient stream)")
    run.add_argument("--chaos-seed", type=int, default=0)
    run.add_argument("--worker-chaos", action="store_true",
                     help="inject compute faults (supervised pool)")
    run.add_argument("--worker-chaos-seed", type=int, default=0)
    run.add_argument("--trace", action=argparse.BooleanOptionalAction,
                     default=False,
                     help="record run telemetry and flush it to "
                     "trace.jsonl in the run directory after every "
                     "stage; inspect it with 'repro trace RUNDIR'. "
                     "Artifacts are byte-identical with or without "
                     "tracing, and tracing is not part of the run "
                     "fingerprint (a traced run may resume an untraced "
                     "one)")
    run.set_defaults(func=commands.cmd_run)

    trace = subparsers.add_parser(
        "trace",
        help="summarize a run's telemetry: stage durations, funnel "
        "attrition, slowest shards, fault counters",
    )
    trace.add_argument("run_dir",
                       help="run directory holding trace.jsonl (from "
                       "'repro run --trace'), or a trace JSONL file "
                       "directly (from 'repro collect --trace')")
    trace.add_argument("--format", choices=("text", "json"), default="text",
                       help="report format (default: text)")
    trace.set_defaults(func=commands.cmd_trace)

    monitor = subparsers.add_parser(
        "monitor", help="replay a firehose through the rolling sensor"
    )
    monitor.add_argument("firehose", help="firehose JSONL path")
    monitor.add_argument("--window-days", type=int, default=60)
    monitor.add_argument("--emit-every", type=int, default=1000)
    monitor.add_argument("--min-users", type=int, default=15)
    monitor.set_defaults(func=commands.cmd_monitor)

    calibrate = subparsers.add_parser(
        "calibrate", help="check a world against the Table I targets"
    )
    calibrate.add_argument("--scale", type=float, default=0.05)
    calibrate.add_argument("--seed", type=int, default=0)
    calibrate.set_defaults(func=commands.cmd_calibrate)

    reproduce = subparsers.add_parser(
        "reproduce",
        help="run the full reproduction and print pass/fail verdicts for "
        "every paper claim",
    )
    reproduce.add_argument("--scale", type=float, default=0.12,
                           help="shape checks need scale ≥ ~0.1 for power")
    reproduce.add_argument("--seed", type=int, default=7)
    reproduce.set_defaults(func=commands.cmd_reproduce)

    replicate = subparsers.add_parser(
        "replicate",
        help="re-run the reproduction across several seeds and aggregate "
        "pass rates",
    )
    replicate.add_argument("--seeds", type=int, default=5,
                           help="number of independent seeds")
    replicate.add_argument("--scale", type=float, default=0.12)
    replicate.set_defaults(func=commands.cmd_replicate)

    serve = subparsers.add_parser(
        "serve",
        help="answer analysis queries from a completed run directory "
        "through the overload stack (admission control, deadlines, "
        "circuit breaker, brownout); a discrete-event simulation on a "
        "manual clock, byte-identical for a fixed (seed, request file)",
    )
    serve.add_argument("run_dir",
                       help="completed run directory (needs corpus.jsonl)")
    serve.add_argument("--requests", required=True,
                       help="JSONL request file: one object per line with "
                       "id, kind, arrival, optional params/deadline")
    serve.add_argument("--output", default=None,
                       help="responses JSONL path (default: "
                       "<requests>.responses.jsonl)")
    serve.add_argument("--load-chaos", action="store_true",
                       help="inject client storms, poison queries, and "
                       "slow/failing artifact loads")
    serve.add_argument("--load-chaos-seed", type=int, default=0)
    serve.add_argument("--trace", action="store_true",
                       help="export serve telemetry next to the responses "
                       "file (<output>.trace.jsonl)")
    serve.set_defaults(func=commands.cmd_serve)

    lint = subparsers.add_parser(
        "lint",
        help="run the reprolint determinism/reliability analyzer "
        "(file-local RPL001–RPL008; --ipa adds whole-program "
        "RPL101–RPL105) over the source tree",
    )
    lint.add_argument("paths", nargs="*", default=["src/repro"],
                      help="files or directories to analyze "
                      "(default: src/repro)")
    lint.add_argument("--format", choices=("text", "json"), default="text",
                      help="report format (default: text)")
    lint.add_argument("--rules", default=None,
                      help="comma-separated rule ids to run "
                      "(default: all rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalog and exit")
    lint.add_argument("--ipa", action="store_true",
                      help="also run the interprocedural whole-program "
                      "analysis (call graph + dataflow, RPL101–RPL105)")
    lint.add_argument("--graph", choices=("dot", "json"), default=None,
                      help="with --ipa: print the call graph in this "
                      "format instead of findings")
    lint.add_argument("--baseline", default="lint-baseline.json",
                      help="with --ipa: baseline ratchet file; "
                      "grandfathered findings there do not fail the run "
                      "(default: lint-baseline.json)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="with --ipa: regenerate the baseline file "
                      "from the current findings and exit")
    lint.set_defaults(func=commands.cmd_lint)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Run the CLI; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return int(args.func(args))


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
