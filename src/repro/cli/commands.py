"""CLI command implementations.

Each command returns a process exit code (0 on success).  Commands print
human-readable progress to stdout; file outputs are JSONL (firehose,
corpus) or plain text (artifacts).
"""

from __future__ import annotations

import argparse
from datetime import timedelta
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.serve import ArtifactCache

from repro.config import (
    AnalysisConfig,
    CollectionConfig,
    RelativeRiskConfig,
    UserClusteringConfig,
)
from repro.dataset.corpus import TweetCorpus
from repro.dataset.io import (
    read_jsonl,
    read_tweets_jsonl,
    write_jsonl,
    write_tweets_jsonl,
)
from repro.errors import ReproError
from repro.organs import Organ
from repro.pipeline.runner import CollectionPipeline
from repro.report.experiments import ExperimentSuite
from repro.sensor.rolling import RollingAwarenessSensor
from repro.synth.calibration import check_calibration
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld

_ARTIFACTS = ("table1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7")


def cmd_generate(args: argparse.Namespace) -> int:
    """Synthesize a world and persist its firehose."""
    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    print(f"generating {world.n_users:,} users "
          f"(~{world.n_on_topic_tweets:,} on-topic tweets)…")
    count = write_tweets_jsonl(world.firehose(), args.output)
    print(f"wrote {count:,} tweets to {args.output}")
    return 0


def cmd_collect(args: argparse.Namespace) -> int:
    """Run the §III-A pipeline over a firehose file."""
    config = CollectionConfig(
        prefer_geotag=not args.no_geotag,
        min_confidence=args.min_confidence,
    )
    pipeline = CollectionPipeline(config=config)
    fault_plan = None
    if getattr(args, "chaos", False):
        from repro.twitter.faults import FaultPlan

        fault_plan = FaultPlan.chaos(seed=args.chaos_seed)
        print(f"chaos mode: {fault_plan.describe()}")
    worker_faults = None
    supervisor = None
    if getattr(args, "worker_chaos", False):
        from repro.faults.compute import WorkerFaultPlan
        from repro.supervise import SupervisorPolicy

        worker_faults = WorkerFaultPlan.chaos(seed=args.worker_chaos_seed)
        supervisor = SupervisorPolicy()
        print(f"worker chaos mode: {worker_faults.describe()}")
    fs = None
    if getattr(args, "disk_chaos", False):
        from repro.faults.storage import StorageFaultPlan
        from repro.storage.fs import FaultyFS

        fs = FaultyFS(StorageFaultPlan.chaos(seed=args.disk_chaos_seed))
        print(f"disk chaos mode: {fs.plan.describe()}")
    workers = getattr(args, "workers", 1)
    if workers > 1:
        print(f"sharding across {workers} worker processes")
    from repro.obs import NULL_TELEMETRY, Telemetry, activate

    tracing = getattr(args, "trace", False)
    telemetry = Telemetry() if tracing else NULL_TELEMETRY
    try:
        with activate(telemetry):
            corpus, report = pipeline.run(
                read_tweets_jsonl(args.firehose),
                fault_plan=fault_plan,
                workers=workers,
                supervisor=supervisor,
                worker_faults=worker_faults,
            )
            count = write_jsonl(corpus.records, args.output, fs=fs)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    for label, value in report.as_rows():
        print(f"{label}: {value}")
    if fs is not None:
        for line in fs.injected.summary_lines():
            print(line)
    print(f"wrote {count:,} records to {args.output}")
    if tracing:
        from repro.obs.export import write_trace

        trace_path = Path(args.output).with_name(
            Path(args.output).name + ".trace.jsonl"
        )
        try:
            write_trace(
                telemetry, trace_path, fs=fs, source=str(args.firehose)
            )
        except (ReproError, OSError) as exc:
            # Telemetry is advisory: losing the trace must never fail a
            # collection whose corpus is already safely on disk.
            print(f"warning: could not write telemetry: {exc}")
        else:
            print(f"wrote telemetry to {trace_path}")
    return 0


def cmd_scrub(args: argparse.Namespace) -> int:
    """Verify manifested files; quarantine bitrot, repair from replicas."""
    from repro.storage.scrub import scrub_paths

    try:
        report = scrub_paths(
            list(args.paths),
            repair_from=args.repair_from,
            quarantine=not args.no_quarantine,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    for result in report.results:
        detail = f" ({result.detail})" if result.detail else ""
        print(f"{result.path}: {result.status}{detail}")
    for line in report.summary_lines():
        print(line)
    # Exit 0 only when no data was lost: clean, repaired, or a rebuilt
    # stale sidecar.  Quarantined records are preserved evidence, but
    # the corpus did lose them — operators must see that.
    ok = report.all_clean and report.records_quarantined == 0
    return 0 if ok else 1


def cmd_run(args: argparse.Namespace) -> int:
    """Execute (or resume) a journaled end-to-end analysis run."""
    from repro.pipeline.journal import RunParams, run_stages

    params = RunParams(
        scale=args.scale,
        seed=args.seed,
        workers=args.workers,
        k=args.k,
        alpha=args.alpha,
        chaos=args.chaos,
        chaos_seed=args.chaos_seed,
        worker_chaos=args.worker_chaos,
        worker_chaos_seed=args.worker_chaos_seed,
    )
    try:
        summary = run_stages(
            Path(args.run_dir),
            params,
            resume=args.resume,
            trace=getattr(args, "trace", False),
            log=print,
        )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    print(
        f"run complete: {len(summary.stages_run)} stages run, "
        f"{len(summary.stages_skipped)} skipped, artifacts in "
        f"{summary.run_dir}/"
    )
    for health in (summary.report.reliability, summary.report.compute):
        if health is not None:
            for line in health.summary_lines():
                print(line)
    if getattr(args, "trace", False):
        print(
            f"telemetry in {summary.run_dir}/trace.jsonl "
            f"(inspect with: repro trace {summary.run_dir})"
        )
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Summarize a run's telemetry from its trace JSONL."""
    import json

    from repro.errors import SerializationError
    from repro.obs.export import (
        TRACE_FILENAME,
        read_trace,
        summarize_trace,
        validate_trace,
    )

    target = Path(args.run_dir)
    if target.is_dir():
        target = target / TRACE_FILENAME
    if not target.exists():
        print(
            f"error: no trace at {target}; run with --trace to record one"
        )
        return 2
    try:
        records = read_trace(target)
    except (SerializationError, OSError) as exc:
        print(f"error: {exc}")
        return 2
    problems = validate_trace(records)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}")
        return 1
    summary = summarize_trace(records)
    if args.format == "json":
        print(json.dumps(summary.to_dict(), indent=2, sort_keys=True))
        return 0
    print(f"trace: {target}")
    width = max(
        (len(label) for label, __ in summary.as_rows()), default=0
    )
    for label, value in summary.as_rows():
        print(f"  {label:<{width}}  {value}")
    return 0


#: Process-wide artifact cache shared by every ``repro serve`` in this
#: interpreter.  Keyed by corpus generation (manifest sha256), so a
#: regenerated run directory can never be served stale artifacts; lazy so
#: importing the CLI never pulls in the serving stack.
_SERVE_CACHE: "ArtifactCache | None" = None


def _serve_cache() -> "ArtifactCache":
    global _SERVE_CACHE
    if _SERVE_CACHE is None:
        from repro.serve import ArtifactCache

        _SERVE_CACHE = ArtifactCache()
    return _SERVE_CACHE


def cmd_serve(args: argparse.Namespace) -> int:
    """Serve analysis queries from a run directory, overload-protected."""
    from repro.faults.load import LoadFaultPlan
    from repro.obs import NULL_TELEMETRY, Telemetry, activate
    from repro.serve import (
        QueryService,
        read_requests_jsonl,
        write_responses_jsonl,
    )

    run_dir = Path(args.run_dir)
    if not (run_dir / "corpus.jsonl").exists():
        print(f"error: no corpus.jsonl under {run_dir}")
        return 2
    requests_path = Path(args.requests)
    if not requests_path.exists():
        print(f"error: no request file at {requests_path}")
        return 2
    plan = None
    if args.load_chaos:
        plan = LoadFaultPlan.chaos(seed=args.load_chaos_seed)
        print(f"load chaos mode: {plan.describe()}")
    output = Path(
        args.output
        if args.output
        else requests_path.with_name(requests_path.name + ".responses.jsonl")
    )
    tracing = getattr(args, "trace", False)
    telemetry = Telemetry() if tracing else NULL_TELEMETRY
    try:
        requests, malformed = read_requests_jsonl(requests_path)
        with activate(telemetry):
            service = QueryService(run_dir, plan=plan, cache=_serve_cache())
            result = service.serve(requests, malformed)
        count = write_responses_jsonl(result.responses, output)
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    for label, value in result.report.as_rows():
        print(f"{label}: {value}")
    print(f"wrote {count:,} responses to {output}")
    if tracing:
        from repro.obs.export import write_trace

        trace_path = output.with_name(output.name + ".trace.jsonl")
        try:
            write_trace(telemetry, trace_path, source=str(requests_path))
        except (ReproError, OSError) as exc:
            # Telemetry is advisory: losing the trace must never fail a
            # serve run whose responses are already safely on disk.
            print(f"warning: could not write telemetry: {exc}")
        else:
            print(f"wrote telemetry to {trace_path}")
    return 0 if result.report.accounted else 1


def cmd_analyze(args: argparse.Namespace) -> int:
    """Regenerate paper artifacts from a corpus file."""
    wanted = [name.strip() for name in args.artifacts.split(",") if name.strip()]
    unknown = sorted(set(wanted) - set(_ARTIFACTS))
    if unknown:
        print(f"error: unknown artifacts {unknown}; "
              f"choose from {', '.join(_ARTIFACTS)}")
        return 2
    try:
        corpus = TweetCorpus(read_jsonl(args.corpus))
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    suite = ExperimentSuite(
        corpus,
        config=AnalysisConfig(
            relative_risk=RelativeRiskConfig(alpha=args.alpha),
            user_clustering=UserClusteringConfig(k=args.k),
        ),
    )
    runners = {
        "table1": lambda: suite.run_table1().render(),
        "fig2": lambda: suite.run_fig2().render(),
        "fig3": lambda: suite.run_fig3().render(),
        "fig4": lambda: suite.run_fig4().render(),
        "fig5": lambda: suite.run_fig5().render(),
        "fig6": lambda: suite.run_fig6().render(),
        "fig7": lambda: suite.run_fig7().render(),
    }
    out_dir = Path(args.out) if args.out else None
    if out_dir is not None:
        out_dir.mkdir(parents=True, exist_ok=True)
    try:
        for name in wanted:
            text = runners[name]()
            print(f"\n===== {name} =====")
            print(text)
            if out_dir is not None:
                from repro.storage.atomic import atomic_write_text

                atomic_write_text(out_dir / f"{name}.txt", text + "\n")
        if out_dir is not None:
            print(f"\nwrote {len(wanted)} artifacts to {out_dir}/")
        if args.csv is not None:
            from repro.report.export import export_all_csv

            paths = export_all_csv(suite, args.csv)
            print(f"wrote {len(paths)} CSV files to {args.csv}/")
        if args.svg is not None:
            from repro.viz.artifacts import export_all_svg

            paths = export_all_svg(suite, args.svg)
            print(f"wrote {len(paths)} SVG figures to {args.svg}/")
    except ReproError as exc:
        # e.g. k exceeding the user count on a degenerate corpus.
        print(f"error: {exc}")
        return 1
    return 0


def cmd_monitor(args: argparse.Namespace) -> int:
    """Replay a firehose through the rolling awareness sensor."""
    sensor = RollingAwarenessSensor(
        window=timedelta(days=args.window_days),
        relative_risk=RelativeRiskConfig(min_users=args.min_users),
    )
    try:
        stream = read_tweets_jsonl(args.firehose)
        for snapshot in sensor.run(stream, emit_every=args.emit_every):
            spiking = ", ".join(
                f"{state}:{'+'.join(o.value for o in snapshot.highlights[state])}"
                for state in snapshot.emerging_states()
            ) or "-"
            organs = " ".join(
                f"{organ.value[:4]}={snapshot.users_by_organ[organ]}"
                for organ in Organ
            )
            print(
                f"{snapshot.window_end:%Y-%m-%d} "
                f"tweets={snapshot.n_tweets} users={snapshot.n_users} "
                f"{organs} spiking=[{spiking}]"
            )
    except (ReproError, OSError) as exc:
        print(f"error: {exc}")
        return 1
    print(f"done: {sensor.seen:,} seen, {sensor.retained:,} retained")
    return 0


def cmd_reproduce(args: argparse.Namespace) -> int:
    """Run the full reproduction battery and print the verdict table."""
    from repro.report.verdicts import evaluate_reproduction

    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    print(f"generating world (scale={args.scale}) and running pipeline…")
    corpus, report = CollectionPipeline().run(world.firehose())
    print(f"retained {report.retained:,} US tweets "
          f"({report.us_yield:.1%} yield)\n")
    suite = ExperimentSuite(corpus, report)
    result = evaluate_reproduction(suite)
    print(result.render())
    return 0 if result.all_passed else 1


def cmd_replicate(args: argparse.Namespace) -> int:
    """Run the reproduction across seeds and print aggregate rates."""
    from repro.experiments.replication import replicate

    if args.seeds < 1:
        print("error: --seeds must be >= 1")
        return 2
    summary = replicate(
        seeds=tuple(range(1, args.seeds + 1)), scale=args.scale
    )
    print(summary.render())
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    """Run reprolint; exit non-zero when any (unbaselined) finding survives.

    The file-local rules always run (unless ``--rules`` selects only
    interprocedural ids).  ``--ipa`` adds the whole-program pass, whose
    findings are filtered through the committed baseline ratchet:
    grandfathered findings are shown but do not fail the run, new ones
    do, and stale baseline entries are reported so the ratchet tightens.
    """
    import json

    from repro.lint import ALL_RULES, UnknownRuleError, run_lint, select_rules
    from repro.lint.ipa import IPA_RULE_CATALOG, IPA_RULE_IDS

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id}  {rule.summary}")
        for rule_id, summary in IPA_RULE_CATALOG:
            print(f"{rule_id}  {summary}  [--ipa]")
        return 0

    run_local = True
    ipa_rules: tuple[str, ...] | None = None
    run_ipa_pass = bool(args.ipa)
    try:
        if args.rules:
            requested = [
                part.strip()
                for part in args.rules.split(",")
                if part.strip()
            ]
            local_ids = [r for r in requested if r not in IPA_RULE_IDS]
            ipa_ids = tuple(r for r in requested if r in IPA_RULE_IDS)
            if ipa_ids:
                # Requesting an interprocedural rule implies --ipa.
                run_ipa_pass = True
                ipa_rules = ipa_ids
                run_local = bool(local_ids)
            rules = select_rules(local_ids if local_ids else None)
        else:
            rules = select_rules(None)
    except UnknownRuleError as exc:
        ipa_catalog = ", ".join(IPA_RULE_IDS)
        print(f"error: {exc}; interprocedural (--ipa) rules: {ipa_catalog}")
        return 2

    if args.graph and not run_ipa_pass:
        print("error: --graph requires --ipa (the call graph is built "
              "by the whole-program pass)")
        return 2
    if args.write_baseline and not run_ipa_pass:
        print("error: --write-baseline requires --ipa")
        return 2
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(f"error: no such path: {', '.join(missing)}")
        return 2

    findings = run_lint(args.paths, rules=rules) if run_local else []
    grandfathered: list = []
    stale: list[tuple[str, str, str]] = []
    if run_ipa_pass:
        from repro.lint.ipa import (
            BaselineError,
            graph_to_dot,
            graph_to_json,
            load_baseline,
            run_ipa,
            split_baselined,
            write_baseline,
        )

        result = run_ipa(list(args.paths), rules=ipa_rules)
        if args.graph:
            render = graph_to_dot if args.graph == "dot" else graph_to_json
            print(render(result.graph), end="")
            return 0
        if args.write_baseline:
            count = write_baseline(result.findings, args.baseline)
            noun = "entry" if count == 1 else "entries"
            print(f"reprolint: wrote {count} baseline {noun} to "
                  f"{args.baseline}")
            return 0
        try:
            baseline = load_baseline(args.baseline)
        except BaselineError as exc:
            print(f"error: {exc}")
            return 2
        new, grandfathered, stale = split_baselined(
            result.findings, baseline
        )
        findings = sorted(findings + new)

    if args.format == "json":
        print(json.dumps([finding.to_dict() for finding in findings],
                         indent=2))
    else:
        for finding in findings:
            print(finding.render())
        for finding in grandfathered:
            print(f"{finding.render()}  [baselined]")
        for rule, path, symbol in stale:
            print(f"stale baseline entry: {rule} {path} "
                  f"({symbol or 'module'}) no longer fires — regenerate "
                  "with --write-baseline")
        noun = "finding" if len(findings) == 1 else "findings"
        suffix = (
            f" ({len(grandfathered)} baselined)" if grandfathered else ""
        )
        print(f"reprolint: {len(findings)} {noun}{suffix}")
    return 1 if findings else 0


def cmd_calibrate(args: argparse.Namespace) -> int:
    """Generate a world and verify Table I calibration."""
    world = SyntheticWorld(paper2016_scenario(scale=args.scale, seed=args.seed))
    corpus, report = CollectionPipeline().run(world.firehose())
    result = check_calibration(corpus, report)
    print(result.render())
    return 0 if result.ok else 1
