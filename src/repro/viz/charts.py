"""SVG chart renderers: bars, heatmap, tile-grid map, dendrogram."""

from __future__ import annotations

import math
from collections.abc import Sequence

from repro.viz.svg import ORGAN_COLORS, SvgCanvas, sequential_color

_MARGIN = 16
_LABEL_WIDTH = 90


def bar_chart_svg(
    labels: Sequence[str],
    values: Sequence[float],
    title: str = "",
    width: int = 520,
    bar_height: int = 20,
    log_scale: bool = False,
    colors: Sequence[str] | None = None,
) -> str:
    """A horizontal bar chart, one row per label."""
    if len(labels) != len(values):
        raise ValueError(f"{len(labels)} labels but {len(values)} values")
    if any(value < 0 for value in values):
        raise ValueError("bar values must be non-negative")
    scaled = [
        math.log10(1 + value) if log_scale else float(value)
        for value in values
    ]
    peak = max(scaled, default=0.0) or 1.0

    height = _MARGIN * 2 + 24 + len(labels) * (bar_height + 6)
    canvas = SvgCanvas(width, height)
    if title:
        canvas.text(_MARGIN, _MARGIN + 8, title, size=13, bold=True)
    plot_width = width - _LABEL_WIDTH - 3 * _MARGIN - 60
    y = _MARGIN + 28
    for index, (label, value, magnitude) in enumerate(
        zip(labels, values, scaled)
    ):
        color = (
            colors[index % len(colors)] if colors else "#1f77b4"
        )
        bar = plot_width * magnitude / peak
        canvas.text(
            _MARGIN + _LABEL_WIDTH, y + bar_height - 6, str(label),
            anchor="end", size=11,
        )
        canvas.rect(
            _MARGIN + _LABEL_WIDTH + 6, y, bar, bar_height,
            fill=color, tooltip=f"{label}: {value:g}",
        )
        canvas.text(
            _MARGIN + _LABEL_WIDTH + 10 + bar, y + bar_height - 6,
            f"{value:,.4g}", size=10, fill="#555555",
        )
        y += bar_height + 6
    return canvas.render()


def heatmap_svg(
    labels: Sequence[str],
    matrix: Sequence[Sequence[float]],
    title: str = "",
    cell: int = 12,
) -> str:
    """A square heatmap; darker cells = larger values."""
    n = len(labels)
    values = [list(map(float, row)) for row in matrix]
    if len(values) != n or any(len(row) != n for row in values):
        raise ValueError("heatmap requires a square matrix matching labels")
    flat = [value for row in values for value in row]
    low, high = min(flat), max(flat)
    span = (high - low) or 1.0

    left = _MARGIN + 34
    top = _MARGIN + 40
    size = n * cell
    canvas = SvgCanvas(left + size + _MARGIN, top + size + _MARGIN)
    if title:
        canvas.text(_MARGIN, _MARGIN + 8, title, size=13, bold=True)
    for row_index, label in enumerate(labels):
        canvas.text(
            left - 4, top + row_index * cell + cell - 2, str(label),
            anchor="end", size=7,
        )
        for col_index in range(n):
            value = values[row_index][col_index]
            canvas.rect(
                left + col_index * cell,
                top + row_index * cell,
                cell - 1,
                cell - 1,
                fill=sequential_color((value - low) / span),
                tooltip=f"{labels[row_index]}–{labels[col_index]}: {value:.4f}",
            )
    for col_index, label in enumerate(labels):
        canvas.text(
            left + col_index * cell + cell / 2, top - 4, str(label)[:2],
            anchor="middle", size=6,
        )
    return canvas.render()


def tile_grid_map_svg(
    state_colors: dict[str, str],
    state_tooltips: dict[str, str] | None = None,
    title: str = "",
    cell: int = 42,
) -> str:
    """A US tile-grid choropleth.

    Args:
        state_colors: USPS code → fill color; missing states render gray.
        state_tooltips: optional hover text per state.
        title: heading.
        cell: tile size in pixels.
    """
    from repro.viz.tilegrid import TILE_GRID, grid_extent

    rows, cols = grid_extent()
    left, top = _MARGIN, _MARGIN + 28
    canvas = SvgCanvas(left + cols * cell + _MARGIN, top + rows * cell + _MARGIN)
    if title:
        canvas.text(_MARGIN, _MARGIN + 8, title, size=13, bold=True)
    tooltips = state_tooltips or {}
    for state, (row, col) in TILE_GRID.items():
        x = left + col * cell
        y = top + row * cell
        canvas.rect(
            x, y, cell - 3, cell - 3,
            fill=state_colors.get(state, "#e8e8e8"),
            stroke="#ffffff",
            tooltip=tooltips.get(state, state),
        )
        canvas.text(
            x + (cell - 3) / 2, y + cell / 2 + 3, state,
            anchor="middle", size=11, bold=True,
        )
    return canvas.render()


def dendrogram_svg(
    labels: Sequence[str],
    merges: Sequence[tuple[int, int, float]],
    title: str = "",
    width: int = 640,
    row_height: int = 14,
) -> str:
    """A left-to-right dendrogram (leaves on the left axis)."""
    n = len(labels)
    if len(merges) != n - 1:
        raise ValueError(f"{n} leaves require {n - 1} merges")
    children: dict[int, tuple[int, int]] = {}
    for index, (left_child, right_child, __) in enumerate(merges):
        children[n + index] = (left_child, right_child)

    order: list[int] = []
    stack = [n + len(merges) - 1] if merges else [0]
    while stack:
        node = stack.pop()
        if node < n:
            order.append(node)
        else:
            left_child, right_child = children[node]
            stack.append(right_child)
            stack.append(left_child)
    leaf_y = {
        leaf: _MARGIN + 36 + position * row_height
        for position, leaf in enumerate(order)
    }

    peak = max((height for __, __, height in merges), default=1.0) or 1.0
    left = _MARGIN + 46
    plot = width - left - _MARGIN

    def x_of(height: float) -> float:
        return left + plot * height / peak

    canvas = SvgCanvas(width, _MARGIN * 2 + 44 + n * row_height)
    if title:
        canvas.text(_MARGIN, _MARGIN + 8, title, size=13, bold=True)
    for leaf, y in leaf_y.items():
        canvas.text(left - 4, y + 3, str(labels[leaf]), anchor="end", size=8)

    # Draw merges bottom-up; track each cluster's (x, y) junction point.
    position: dict[int, tuple[float, float]] = {
        leaf: (left, y) for leaf, y in leaf_y.items()
    }
    for index, (left_child, right_child, height) in enumerate(merges):
        x = x_of(height)
        x1, y1 = position[left_child]
        x2, y2 = position[right_child]
        canvas.line(x1, y1, x, y1, stroke="#666666")
        canvas.line(x2, y2, x, y2, stroke="#666666")
        canvas.line(x, y1, x, y2, stroke="#666666")
        position[n + index] = (x, (y1 + y2) / 2)
    return canvas.render()


def organ_colors() -> tuple[str, ...]:
    """The canonical organ palette (Fig. 3's legend colors)."""
    return ORGAN_COLORS
