"""SVG figure rendering — viewable figures without matplotlib.

Offline environments cannot install plotting libraries, so this package
renders the paper's figures as standalone SVG files with a small
hand-rolled SVG builder: bar charts (Figs. 2–4, 7 panels), a distance
heatmap (Fig. 6), a US tile-grid choropleth (Fig. 5), and a dendrogram.
``python -m repro analyze … --svg DIR`` writes one SVG per artifact.
"""

from repro.viz.artifacts import export_all_svg
from repro.viz.charts import (
    bar_chart_svg,
    dendrogram_svg,
    heatmap_svg,
    tile_grid_map_svg,
)
from repro.viz.svg import SvgCanvas

__all__ = [
    "SvgCanvas",
    "bar_chart_svg",
    "dendrogram_svg",
    "export_all_svg",
    "heatmap_svg",
    "tile_grid_map_svg",
]
