"""A minimal SVG document builder.

Only the primitives the chart layer needs: rectangles, lines, text, and
groups, with XML escaping and a fluent append API.  Documents are plain
strings — viewable in any browser, no dependencies.
"""

from __future__ import annotations

from xml.sax.saxutils import escape, quoteattr


class SvgCanvas:
    """An SVG document under construction.

    Args:
        width / height: document size in pixels.
        background: optional background fill color.
    """

    def __init__(self, width: int, height: int, background: str | None = "#ffffff"):
        if width <= 0 or height <= 0:
            raise ValueError(f"canvas size must be positive, got {width}×{height}")
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background is not None:
            self.rect(0, 0, width, height, fill=background)

    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        fill: str = "#888888",
        stroke: str | None = None,
        opacity: float | None = None,
        tooltip: str | None = None,
    ) -> "SvgCanvas":
        """Append a rectangle; ``tooltip`` becomes a ``<title>`` child."""
        attrs = [
            f'x="{x:.2f}" y="{y:.2f}" width="{max(width, 0):.2f}" '
            f'height="{max(height, 0):.2f}" fill={quoteattr(fill)}'
        ]
        if stroke is not None:
            attrs.append(f"stroke={quoteattr(stroke)}")
        if opacity is not None:
            attrs.append(f'opacity="{opacity:.3f}"')
        if tooltip:
            self._elements.append(
                f"<rect {' '.join(attrs)}><title>{escape(tooltip)}</title></rect>"
            )
        else:
            self._elements.append(f"<rect {' '.join(attrs)} />")
        return self

    def line(
        self, x1: float, y1: float, x2: float, y2: float,
        stroke: str = "#444444", width: float = 1.0,
    ) -> "SvgCanvas":
        self._elements.append(
            f'<line x1="{x1:.2f}" y1="{y1:.2f}" x2="{x2:.2f}" y2="{y2:.2f}" '
            f'stroke={quoteattr(stroke)} stroke-width="{width:.2f}" />'
        )
        return self

    def text(
        self,
        x: float,
        y: float,
        content: str,
        size: int = 12,
        anchor: str = "start",
        fill: str = "#222222",
        bold: bool = False,
    ) -> "SvgCanvas":
        """Append a text element (``anchor``: start/middle/end)."""
        weight = ' font-weight="bold"' if bold else ""
        self._elements.append(
            f'<text x="{x:.2f}" y="{y:.2f}" font-size="{size}" '
            f'font-family="sans-serif" text-anchor="{anchor}" '
            f"fill={quoteattr(fill)}{weight}>{escape(content)}</text>"
        )
        return self

    def render(self) -> str:
        """The complete SVG document."""
        body = "\n".join(f"  {element}" for element in self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" '
            f'width="{self.width}" height="{self.height}" '
            f'viewBox="0 0 {self.width} {self.height}">\n{body}\n</svg>\n'
        )


def sequential_color(value: float) -> str:
    """Map [0, 1] to a white → deep-blue sequential color."""
    clamped = min(max(value, 0.0), 1.0)
    red = int(255 - 205 * clamped)
    green = int(255 - 170 * clamped)
    blue = int(255 - 80 * clamped)
    return f"#{red:02x}{green:02x}{blue:02x}"


#: Categorical palette for the six organs, in canonical order — mirrors
#: the paper's Fig. 3 legend (heart red, kidney yellow, liver green, lung
#: blue, pancreas olive, intestine magenta).
ORGAN_COLORS: tuple[str, ...] = (
    "#d62728",  # heart — red
    "#e6b117",  # kidney — yellow
    "#2ca02c",  # liver — green
    "#1f77b4",  # lung — blue
    "#808000",  # pancreas — olive
    "#c44fc4",  # intestine — magenta
)
