"""Per-artifact SVG rendering: one figure file per paper artifact."""

from __future__ import annotations

from pathlib import Path

from repro.organs import ORGANS, Organ
from repro.report.experiments import ExperimentSuite
from repro.viz.charts import (
    bar_chart_svg,
    dendrogram_svg,
    heatmap_svg,
    organ_colors,
    tile_grid_map_svg,
)


def fig2_svg(suite: ExperimentSuite) -> str:
    result = suite.run_fig2()
    order = result.popularity_order()
    return bar_chart_svg(
        [organ.value for organ in order],
        [float(result.users_by_organ[organ]) for organ in order],
        title=(
            "Fig. 2(a) — users per organ "
            f"(Spearman vs transplants r = {result.correlation.r:.2f})"
        ),
        log_scale=True,
        colors=[organ_colors()[organ.index] for organ in order],
    )


def fig3_svg(suite: ExperimentSuite, organ: Organ) -> str:
    profile = suite.organ_characterization.profile(organ)
    return bar_chart_svg(
        [item.value for item, __ in profile],
        [value for __, value in profile],
        title=f"Fig. 3 — co-attention of {organ.value}-focal users",
        log_scale=True,
        colors=[organ_colors()[item.index] for item, __ in profile],
    )


def fig4_svg(suite: ExperimentSuite, state: str) -> str:
    signature = suite.region_characterization.signature(state)
    return bar_chart_svg(
        [organ.value for organ, __ in signature],
        [value for __, value in signature],
        title=f"Fig. 4 — organ signature of {state}",
        log_scale=True,
        colors=[organ_colors()[organ.index] for organ, __ in signature],
    )


def fig5_svg(suite: ExperimentSuite) -> str:
    """The Fig. 5 choropleth as a tile-grid map: states colored by their
    (first) highlighted organ."""
    result = suite.run_fig5()
    colors: dict[str, str] = {}
    tooltips: dict[str, str] = {}
    for state, organs in result.highlights.items():
        if organs:
            colors[state] = organ_colors()[organs[0].index]
            tooltips[state] = (
                f"{state}: {', '.join(organ.value for organ in organs)}"
            )
        else:
            tooltips[state] = f"{state}: no significant excess"
    legend = ", ".join(
        f"{organ.value}" for organ in ORGANS
    )
    return tile_grid_map_svg(
        colors,
        tooltips,
        title=f"Fig. 5 — highlighted organs per state ({legend})",
    )


def fig6_svg(suite: ExperimentSuite) -> str:
    clustering = suite.run_fig6().clustering
    order = clustering.leaf_order()
    index = {state: i for i, state in enumerate(clustering.states)}
    matrix = [
        [clustering.distance_matrix[index[a], index[b]] for b in order]
        for a in order
    ]
    return heatmap_svg(
        order, matrix,
        title="Fig. 6 — Bhattacharyya distances (dendrogram order)",
    )


def fig6_dendrogram_svg(suite: ExperimentSuite) -> str:
    clustering = suite.run_fig6().clustering
    return dendrogram_svg(
        list(clustering.states),
        [(m.left, m.right, m.height) for m in clustering.dendrogram.merges],
        title="Fig. 6 — state dendrogram (average linkage)",
    )


def fig7_svg(suite: ExperimentSuite) -> str:
    clustering = suite.run_fig7().clustering
    sizes = clustering.relative_sizes()
    labels: list[str] = []
    values: list[float] = []
    colors: list[str] = []
    for cluster in sorted(range(clustering.k), key=lambda c: -sizes[c]):
        top_organ, share = clustering.cluster_profile(cluster)[0]
        labels.append(
            f"c{cluster} ({top_organ.value} {share:.0%})"
        )
        values.append(float(sizes[cluster]))
        colors.append(organ_colors()[top_organ.index])
    return bar_chart_svg(
        labels, values,
        title=f"Fig. 7 — user clusters (k = {clustering.k}, "
        f"silhouette {clustering.silhouette:.3f})",
        colors=colors,
    )


def export_all_svg(suite: ExperimentSuite, directory: str | Path) -> list[Path]:
    """Write every artifact's SVG into ``directory``; returns the paths."""
    from repro.storage.atomic import atomic_write_text

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    def write(name: str, document: str) -> None:
        path = target / f"{name}.svg"
        atomic_write_text(path, document)
        written.append(path)

    write("fig2", fig2_svg(suite))
    for organ in suite.organ_characterization.characterized_organs():
        write(f"fig3_{organ.value}", fig3_svg(suite, organ))
    for state in ("KS", "LA", "MA", "CA", "TX"):
        if state in suite.region_characterization.states:
            write(f"fig4_{state}", fig4_svg(suite, state))
    write("fig5", fig5_svg(suite))
    write("fig6_heatmap", fig6_svg(suite))
    write("fig6_dendrogram", fig6_dendrogram_svg(suite))
    write("fig7", fig7_svg(suite))
    return written
