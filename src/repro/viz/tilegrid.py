"""US tile-grid map layout.

The standard "tile grid" cartogram places every state in a fixed cell of
a coarse grid that roughly preserves geography while giving each state
equal visual weight — the usual substitute for a choropleth when exact
shapes are unnecessary (Fig. 5's message is per-state categorical, so the
tile grid carries it faithfully).  Coordinates are (row, column), row 0
at the top.
"""

from __future__ import annotations

from repro.errors import GeoError
from repro.geo.gazetteer import ALL_REGION_CODES

#: state → (row, col) in the standard US tile-grid layout (+ PR).
TILE_GRID: dict[str, tuple[int, int]] = {
    "AK": (0, 0), "ME": (0, 11),
    "VT": (1, 10), "NH": (1, 11),
    "WA": (2, 1), "ID": (2, 2), "MT": (2, 3), "ND": (2, 4), "MN": (2, 5),
    "IL": (2, 6), "WI": (2, 7), "MI": (2, 8), "NY": (2, 9), "RI": (2, 10),
    "MA": (2, 11),
    "OR": (3, 1), "NV": (3, 2), "WY": (3, 3), "SD": (3, 4), "IA": (3, 5),
    "IN": (3, 6), "OH": (3, 7), "PA": (3, 8), "NJ": (3, 9), "CT": (3, 10),
    "CA": (4, 1), "UT": (4, 2), "CO": (4, 3), "NE": (4, 4), "MO": (4, 5),
    "KY": (4, 6), "WV": (4, 7), "VA": (4, 8), "MD": (4, 9), "DE": (4, 10),
    "AZ": (5, 2), "NM": (5, 3), "KS": (5, 4), "AR": (5, 5), "TN": (5, 6),
    "NC": (5, 7), "SC": (5, 8), "DC": (5, 9),
    "OK": (6, 4), "LA": (6, 5), "MS": (6, 6), "AL": (6, 7), "GA": (6, 8),
    "HI": (7, 0), "TX": (7, 4), "FL": (7, 9), "PR": (7, 11),
}


def tile_of(state: str) -> tuple[int, int]:
    """The (row, col) cell of a state.

    Raises:
        GeoError: for a state without a tile.
    """
    cell = TILE_GRID.get(state.strip().upper())
    if cell is None:
        raise GeoError(f"state {state!r} has no tile-grid cell")
    return cell


def grid_extent() -> tuple[int, int]:
    """(n_rows, n_cols) of the layout."""
    rows = max(row for row, __ in TILE_GRID.values()) + 1
    cols = max(col for __, col in TILE_GRID.values()) + 1
    return rows, cols


def validate_tile_grid() -> None:
    """Assert the layout covers the gazetteer exactly, one cell each.

    Raises:
        GeoError: on missing/extra states or cell collisions.
    """
    missing = sorted(set(ALL_REGION_CODES) - set(TILE_GRID))
    if missing:
        raise GeoError(f"states without tiles: {missing}")
    extra = sorted(set(TILE_GRID) - set(ALL_REGION_CODES))
    if extra:
        raise GeoError(f"unknown states in tile grid: {extra}")
    cells = list(TILE_GRID.values())
    if len(cells) != len(set(cells)):
        collisions = sorted(
            {cell for cell in cells if cells.count(cell) > 1}
        )
        raise GeoError(f"tile collisions at {collisions}")
