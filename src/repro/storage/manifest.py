"""Per-file integrity sidecars: whole-file SHA-256 + per-record CRC32.

A file ``corpus.jsonl`` gets a sidecar ``corpus.jsonl.manifest.json``
recording the SHA-256 and byte size of the whole file and (for line-
oriented files) a CRC32 per physical line.  The whole-file hash answers
"has anything changed"; the per-record CRCs answer "*which* records
rotted", which is what lets the scrub engine quarantine two bad lines
instead of condemning a 135k-tweet corpus.

Manifests are written atomically *after* their data file, so a crash
between the two leaves data newer than its sidecar — the scrub engine
treats that as a stale manifest (an interrupted append), distinct from
corruption.  The manifest encoding is canonical (sorted keys), so runs
that produce byte-identical data files also produce byte-identical
sidecars — directory-level byte comparisons in the resume tests stay
meaningful.
"""

from __future__ import annotations

import hashlib
import json
import zlib
from dataclasses import dataclass
from pathlib import Path

from repro.errors import StorageError
from repro.storage.atomic import AtomicWriter, atomic_write_text
from repro.storage.fs import LOCAL_FS, FileSystem

#: Sidecar name suffix: ``<file>`` -> ``<file>.manifest.json``.
MANIFEST_SUFFIX = ".manifest.json"

MANIFEST_VERSION = 1


def manifest_path(path: str | Path) -> Path:
    """The sidecar path for a data file."""
    data = Path(path)
    return data.with_name(data.name + MANIFEST_SUFFIX)


def is_manifest(path: str | Path) -> bool:
    return Path(path).name.endswith(MANIFEST_SUFFIX)


def data_path_for(manifest: str | Path) -> Path:
    """Inverse of :func:`manifest_path`."""
    side = Path(manifest)
    if not is_manifest(side):
        raise StorageError(f"{side} is not a manifest sidecar")
    return side.with_name(side.name[: -len(MANIFEST_SUFFIX)])


def record_crc(line: str) -> int:
    """CRC32 of one record line (no trailing newline), as unsigned."""
    return zlib.crc32(line.encode("utf-8")) & 0xFFFFFFFF


def text_record_crcs(text: str) -> tuple[int, ...]:
    """Per-line CRCs of a full text, matching :func:`build_manifest`."""
    lines = text.split("\n")
    if lines and lines[-1] == "":
        lines.pop()
    return tuple(record_crc(line) for line in lines)


@dataclass(frozen=True, slots=True)
class Manifest:
    """Integrity facts about one data file.

    Attributes:
        file: data file name (no directory; sidecars sit beside data).
        sha256: hex digest of the whole file.
        size_bytes: file length.
        record_crcs: per-physical-line CRC32s, or None for files that
            are not record-oriented.
        version: manifest schema version.
    """

    file: str
    sha256: str
    size_bytes: int
    record_crcs: tuple[int, ...] | None = None
    version: int = MANIFEST_VERSION

    @property
    def records(self) -> int | None:
        return None if self.record_crcs is None else len(self.record_crcs)

    def to_dict(self) -> dict[str, object]:
        return {
            "version": self.version,
            "file": self.file,
            "sha256": self.sha256,
            "size_bytes": self.size_bytes,
            "record_crcs": (
                None if self.record_crcs is None else list(self.record_crcs)
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "Manifest":
        crcs = data["record_crcs"]
        if crcs is not None and not isinstance(crcs, list):
            raise ValueError(f"record_crcs must be a list or null, got {crcs!r}")
        return cls(
            file=str(data["file"]),
            sha256=str(data["sha256"]),
            size_bytes=int(data["size_bytes"]),  # type: ignore[call-overload]
            record_crcs=(
                None if crcs is None else tuple(int(c) for c in crcs)
            ),
            version=int(data["version"]),  # type: ignore[call-overload]
        )


def build_manifest(
    path: str | Path, *, fs: FileSystem | None = None, records: bool = True
) -> Manifest:
    """Stream a file once, hashing bytes and CRC-ing each line.

    A trailing line without a newline (a torn append) still counts as a
    record: its CRC will mismatch a clean manifest, which is exactly the
    signal the scrub engine wants.
    """
    fs = fs if fs is not None else LOCAL_FS
    digest = hashlib.sha256()
    size = 0
    crcs: list[int] = []
    pending = b""
    with fs.open(path, "rb") as handle:
        while True:
            block = handle.read(1 << 20)
            if not block:
                break
            digest.update(block)
            size += len(block)
            if records:
                pending += block
                *complete, pending = pending.split(b"\n")
                crcs.extend(zlib.crc32(line) & 0xFFFFFFFF for line in complete)
    if records and pending:
        crcs.append(zlib.crc32(pending) & 0xFFFFFFFF)
    return Manifest(
        file=Path(path).name,
        sha256=digest.hexdigest(),
        size_bytes=size,
        record_crcs=tuple(crcs) if records else None,
    )


def write_manifest(
    path: str | Path, manifest: Manifest, *, fs: FileSystem | None = None
) -> Path:
    """Atomically write the sidecar for ``path``; returns its location."""
    side = manifest_path(path)
    payload = json.dumps(manifest.to_dict(), indent=2, sort_keys=True) + "\n"
    atomic_write_text(side, payload, fs=fs)
    return side


def load_manifest(
    path: str | Path, *, fs: FileSystem | None = None
) -> Manifest | None:
    """Load the sidecar for data file ``path``.

    Returns None when no sidecar exists (legacy or foreign file).

    Raises:
        StorageError: when a sidecar exists but cannot be parsed — that
            is itself corruption evidence, never silently ignored.
    """
    fs = fs if fs is not None else LOCAL_FS
    side = manifest_path(path)
    if not fs.exists(side):
        return None
    with fs.open(side, "r") as handle:
        text = handle.read()
    try:
        data = json.loads(text)
        if not isinstance(data, dict):
            raise ValueError(f"manifest must be an object, got {data!r}")
        return Manifest.from_dict(data)
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise StorageError(f"unreadable manifest {side}: {exc}") from exc


@dataclass(frozen=True, slots=True)
class VerifyResult:
    """Outcome of checking one data file against its sidecar.

    Attributes:
        path: the data file.
        status: ``ok`` | ``missing-manifest`` | ``missing-file`` |
            ``mismatch``.
        corrupt_records: 1-based line numbers whose CRC disagrees with
            the manifest (within the overlapping prefix).
        manifest_records: record count the sidecar promises (None when
            the file is not record-oriented).
        actual_records: record count found on disk.
    """

    path: str
    status: str
    corrupt_records: tuple[int, ...] = ()
    manifest_records: int | None = None
    actual_records: int | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"


def verify_file(
    path: str | Path, *, fs: FileSystem | None = None
) -> VerifyResult:
    """Check a data file against its manifest without modifying anything."""
    fs = fs if fs is not None else LOCAL_FS
    manifest = load_manifest(path, fs=fs)
    if manifest is None:
        return VerifyResult(path=str(path), status="missing-manifest")
    if not fs.exists(path):
        return VerifyResult(
            path=str(path),
            status="missing-file",
            manifest_records=manifest.records,
        )
    actual = build_manifest(
        path, fs=fs, records=manifest.record_crcs is not None
    )
    if actual.sha256 == manifest.sha256:
        return VerifyResult(
            path=str(path),
            status="ok",
            manifest_records=manifest.records,
            actual_records=actual.records,
        )
    corrupt: tuple[int, ...] = ()
    if manifest.record_crcs is not None and actual.record_crcs is not None:
        corrupt = tuple(
            line
            for line, (expected, found) in enumerate(
                zip(manifest.record_crcs, actual.record_crcs), start=1
            )
            if expected != found
        )
    return VerifyResult(
        path=str(path),
        status="mismatch",
        corrupt_records=corrupt,
        manifest_records=manifest.records,
        actual_records=actual.records,
    )


def write_text_with_manifest(
    path: str | Path, text: str, *, fs: FileSystem | None = None
) -> int:
    """Atomic durable write of ``text`` plus its sidecar; returns bytes.

    The manifest is built from the streamed content (no re-read), and
    written strictly after the data replace, so a crash between the two
    leaves valid data with a stale sidecar — never a sidecar describing
    data that does not exist.
    """
    with AtomicWriter(path, fs=fs) as writer:
        writer.write(text)
    manifest = Manifest(
        file=Path(path).name,
        sha256=writer.sha256_hex,
        size_bytes=writer.bytes_written,
        record_crcs=text_record_crcs(text),
    )
    write_manifest(path, manifest, fs=fs)
    return writer.bytes_written
