"""Scrub, quarantine, and repair of manifested files.

The write path leaves every durable file with an integrity sidecar
(:mod:`repro.storage.manifest`); this module is the read-side
counterpart — a scrubber that re-verifies those promises long after the
writes "succeeded", because bitrot does not announce itself.

Policy, per file (in order):

1. Whole-file SHA-256 matches the sidecar → **clean**.
2. Mismatch, but a replica under ``repair_from`` hashes to the
   manifest's digest → the replica is copied over atomically →
   **repaired** (journaled stage artifacts are exactly such replicas).
3. Mismatch with per-record CRCs available → records whose CRC fails
   are moved to a ``<file>.quarantine.jsonl`` dead-letter (line number,
   expected/actual CRC, raw payload), the file is rewritten with the
   surviving records, and the manifest is rebuilt → **quarantined**.
   Nothing is ever silently dropped: every removed byte is in the
   dead-letter.
4. All covered records intact but the file has extra trailing records →
   **stale-manifest** (a crash between an append and its sidecar
   refresh); the sidecar is rebuilt to cover the new tail.
5. All covered records intact but some are missing → **truncated**
   (data loss with no local copy to repair from).

:class:`ScrubReport` implements the :class:`repro.health.HealthReport`
protocol, so scrub results render exactly like transport/compute health
under ``repro scrub``.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import StorageError
from repro.health import rows_to_lines
from repro.obs.telemetry import current as telemetry_current
from repro.storage.atomic import atomic_write_bytes
from repro.storage.fs import LOCAL_FS, FileSystem
from repro.storage.manifest import (
    MANIFEST_SUFFIX,
    Manifest,
    build_manifest,
    data_path_for,
    is_manifest,
    load_manifest,
    write_manifest,
)

#: Dead-letter file beside the scrubbed data file.
QUARANTINE_SUFFIX = ".quarantine.jsonl"

#: Statuses that leave the file usable and verified.
_HEALTHY = frozenset({"clean", "repaired", "quarantined", "stale-manifest"})


def quarantine_path(path: str | Path) -> Path:
    data = Path(path)
    return data.with_name(data.name + QUARANTINE_SUFFIX)


@dataclass(frozen=True, slots=True)
class QuarantinedRecord:
    """One record isolated from a corrupt file — never silently dropped.

    Attributes:
        source: the file the record came from.
        line: its 1-based line number there.
        reason: why it was quarantined.
        expected_crc: CRC the manifest promised (None if uncovered).
        actual_crc: CRC found on disk.
        payload: the raw line, backslash-escaped where not valid UTF-8.
    """

    source: str
    line: int
    reason: str
    expected_crc: int | None
    actual_crc: int
    payload: str

    def to_dict(self) -> dict[str, object]:
        return {
            "source": self.source,
            "line": self.line,
            "reason": self.reason,
            "expected_crc": self.expected_crc,
            "actual_crc": self.actual_crc,
            "payload": self.payload,
        }


@dataclass(frozen=True, slots=True)
class FileScrubResult:
    """What the scrubber found (and did) for one file.

    Attributes:
        path: the data file.
        status: ``clean`` | ``repaired`` | ``quarantined`` |
            ``stale-manifest`` | ``truncated`` | ``corrupt`` |
            ``missing-file`` | ``missing-manifest`` | ``corrupt-manifest``.
        records_quarantined: records moved to the dead-letter.
        corrupt_lines: their 1-based line numbers.
        detail: one human-readable sentence.
    """

    path: str
    status: str
    records_quarantined: int = 0
    corrupt_lines: tuple[int, ...] = ()
    detail: str = ""

    @property
    def healthy(self) -> bool:
        return self.status in _HEALTHY


@dataclass(slots=True)
class ScrubReport:
    """Aggregate scrub outcome; implements the HealthReport protocol."""

    results: list[FileScrubResult] = field(default_factory=list)

    @property
    def files_scanned(self) -> int:
        return len(self.results)

    @property
    def files_clean(self) -> int:
        return sum(1 for r in self.results if r.status == "clean")

    @property
    def files_repaired(self) -> int:
        return sum(1 for r in self.results if r.status == "repaired")

    @property
    def files_quarantined(self) -> int:
        return sum(1 for r in self.results if r.status == "quarantined")

    @property
    def records_quarantined(self) -> int:
        return sum(r.records_quarantined for r in self.results)

    @property
    def failures(self) -> tuple[FileScrubResult, ...]:
        return tuple(r for r in self.results if not r.healthy)

    @property
    def all_clean(self) -> bool:
        return not self.failures

    def as_rows(self) -> list[tuple[str, str]]:
        return [
            ("files scanned", str(self.files_scanned)),
            ("files clean", str(self.files_clean)),
            ("files repaired", str(self.files_repaired)),
            ("files with quarantined records", str(self.files_quarantined)),
            ("records quarantined", str(self.records_quarantined)),
            ("unrecoverable files", str(len(self.failures))),
        ]

    def summary_lines(self) -> list[str]:
        return rows_to_lines(self.as_rows())


def _read_lines(path: str | Path, fs: FileSystem) -> tuple[list[bytes], bool]:
    """Physical lines (no newline) and whether the file ends in one."""
    with fs.open(path, "rb") as handle:
        data = handle.read()
    if not data:
        return [], True
    ends_with_newline = data.endswith(b"\n")
    lines = data.split(b"\n")
    if ends_with_newline:
        lines.pop()
    return lines, ends_with_newline


def _crc(line: bytes) -> int:
    return zlib.crc32(line) & 0xFFFFFFFF


def _try_repair(
    path: Path, manifest: Manifest, repair_from: Path, fs: FileSystem
) -> bool:
    """Copy a replica over ``path`` iff it hashes to the manifest digest."""
    candidate = repair_from / path.name
    if not fs.exists(candidate):
        return False
    replica = build_manifest(candidate, fs=fs, records=False)
    if replica.sha256 != manifest.sha256:
        return False
    with fs.open(candidate, "rb") as handle:
        atomic_write_bytes(path, handle.read(), fs=fs)
    return True


def _quarantine(
    path: Path,
    records: list[QuarantinedRecord],
    fs: FileSystem,
) -> None:
    """Append records to the file's dead-letter, with its own manifest."""
    target = quarantine_path(path)
    existing = b""
    if fs.exists(target):
        with fs.open(target, "rb") as handle:
            existing = handle.read()
    payload = existing + b"".join(
        json.dumps(record.to_dict(), ensure_ascii=False, sort_keys=True).encode(
            "utf-8"
        )
        + b"\n"
        for record in records
    )
    atomic_write_bytes(target, payload, fs=fs)
    write_manifest(target, build_manifest(target, fs=fs), fs=fs)


def scrub_file(
    path: str | Path,
    *,
    fs: FileSystem | None = None,
    repair_from: str | Path | None = None,
    quarantine: bool = True,
) -> FileScrubResult:
    """Verify one file against its sidecar; repair or quarantine on damage.

    Args:
        path: the data file (not the sidecar).
        fs: filesystem to operate through.
        repair_from: directory holding replicas by file name (e.g. a
            journaled run directory); tried before quarantining.
        quarantine: when False, report damage without modifying anything.
    """
    fs = fs if fs is not None else LOCAL_FS
    data = Path(path)
    try:
        manifest = load_manifest(data, fs=fs)
    except StorageError as exc:
        return FileScrubResult(
            path=str(data), status="corrupt-manifest", detail=str(exc)
        )
    if manifest is None:
        return FileScrubResult(
            path=str(data),
            status="missing-manifest",
            detail="no integrity sidecar; file cannot be verified",
        )
    if not fs.exists(data):
        if repair_from is not None and _try_repair(
            data, manifest, Path(repair_from), fs
        ):
            return FileScrubResult(
                path=str(data),
                status="repaired",
                detail="missing file restored from replica",
            )
        return FileScrubResult(
            path=str(data), status="missing-file", detail="data file is gone"
        )
    actual = build_manifest(
        data, fs=fs, records=manifest.record_crcs is not None
    )
    if actual.sha256 == manifest.sha256:
        return FileScrubResult(path=str(data), status="clean")
    if repair_from is not None and _try_repair(
        data, manifest, Path(repair_from), fs
    ):
        return FileScrubResult(
            path=str(data),
            status="repaired",
            detail="content restored from replica",
        )
    if manifest.record_crcs is None:
        return FileScrubResult(
            path=str(data),
            status="corrupt",
            detail="content hash mismatch and no per-record CRCs to "
            "isolate the damage",
        )
    lines, __ = _read_lines(data, fs)
    expected = manifest.record_crcs
    covered = min(len(lines), len(expected))
    corrupt = tuple(
        index
        for index in range(covered)
        if _crc(lines[index]) != expected[index]
    )
    if not corrupt:
        if len(lines) > len(expected):
            # Appends landed after the sidecar was written (crash in the
            # append-then-refresh window); the covered prefix is intact.
            if quarantine:
                write_manifest(data, build_manifest(data, fs=fs), fs=fs)
            return FileScrubResult(
                path=str(data),
                status="stale-manifest",
                detail=f"{len(lines) - len(expected)} unverified trailing "
                "record(s); sidecar rebuilt"
                if quarantine
                else f"{len(lines) - len(expected)} unverified trailing "
                "record(s)",
            )
        return FileScrubResult(
            path=str(data),
            status="truncated",
            detail=f"{len(expected) - len(lines)} record(s) missing from "
            "the tail and no replica to repair from",
        )
    if not quarantine:
        return FileScrubResult(
            path=str(data),
            status="corrupt",
            records_quarantined=0,
            corrupt_lines=tuple(index + 1 for index in corrupt),
            detail=f"{len(corrupt)} corrupt record(s) detected "
            "(quarantine disabled)",
        )
    corrupt_set = set(corrupt)
    quarantined = [
        QuarantinedRecord(
            source=str(data),
            line=index + 1,
            reason="record CRC mismatch (bitrot)",
            expected_crc=expected[index],
            actual_crc=_crc(lines[index]),
            payload=lines[index].decode("utf-8", "backslashreplace"),
        )
        for index in corrupt
    ]
    _quarantine(data, quarantined, fs)
    survivors = [
        line for index, line in enumerate(lines) if index not in corrupt_set
    ]
    content = b"".join(line + b"\n" for line in survivors)
    atomic_write_bytes(data, content, fs=fs)
    write_manifest(data, build_manifest(data, fs=fs), fs=fs)
    return FileScrubResult(
        path=str(data),
        status="quarantined",
        records_quarantined=len(quarantined),
        corrupt_lines=tuple(index + 1 for index in corrupt),
        detail=f"{len(quarantined)} record(s) moved to "
        f"{quarantine_path(data).name}",
    )


def discover_manifested(paths: list[Path], fs: FileSystem) -> list[Path]:
    """Data files with sidecars under the given files/directories."""
    found: list[Path] = []
    for path in paths:
        if path.is_dir():
            sidecars = sorted(path.rglob(f"*{MANIFEST_SUFFIX}"))
            found.extend(data_path_for(side) for side in sidecars)
        elif is_manifest(path):
            found.append(data_path_for(path))
        else:
            found.append(path)
    return sorted(set(found), key=str)


def scrub_paths(
    paths: list[str | Path],
    *,
    fs: FileSystem | None = None,
    repair_from: str | Path | None = None,
    quarantine: bool = True,
) -> ScrubReport:
    """Scrub every manifested file under ``paths``; see :func:`scrub_file`."""
    fs = fs if fs is not None else LOCAL_FS
    targets = discover_manifested([Path(p) for p in paths], fs)
    report = ScrubReport()
    telemetry = telemetry_current()
    for target in targets:
        result = scrub_file(
            target, fs=fs, repair_from=repair_from, quarantine=quarantine
        )
        report.results.append(result)
        telemetry.inc("scrub.files", status=result.status)
        if result.records_quarantined:
            telemetry.inc(
                "scrub.records_quarantined", result.records_quarantined
            )
    return report
