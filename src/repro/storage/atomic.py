"""The single atomic-durable write primitive.

Every full-file write in the system goes through :class:`AtomicWriter`:
stream into ``<name>.tmp`` → ``fsync`` the temp file → ``os.replace``
over the destination → ``fsync`` the parent directory.  After ``with``
exits cleanly the new content is durable; a crash at *any* instant
leaves either the complete old file or the complete new one — never a
torn mix, and never a destroyed destination.

Failure policy, per syscall:

* **Transient EIO** is retried up to ``retries`` times.  An errored
  write leaves no bytes behind (the fault injector guarantees this, and
  a real ``EIO`` on a buffered write is reported before the kernel
  commits), so re-issuing the same syscall is sound.
* **ENOSPC** is never retried — a full disk does not heal on a retry
  loop.  The temp file is removed, the destination is left untouched,
  and the failure surfaces as :class:`repro.errors.StorageError` so the
  caller degrades explicitly instead of crash-looping.
* Any other :class:`OSError` propagates unchanged after cleanup.
* A :class:`~repro.faults.storage.SimulatedCrash` (or any other
  ``BaseException`` like ``KeyboardInterrupt``) skips cleanup entirely:
  a dying process does not tidy its temp files, and crash-recovery
  tests must see the disk exactly as a power loss would leave it.
"""

from __future__ import annotations

import errno
import hashlib
from collections.abc import Callable
from pathlib import Path
from typing import IO, Any, TypeVar

from repro.errors import ConfigError, StorageError
from repro.obs.telemetry import current as telemetry_current
from repro.storage.fs import LOCAL_FS, FileSystem

#: Suffix of the in-flight temp file beside the destination.
TMP_SUFFIX = ".tmp"

#: Default transient-EIO retry budget per syscall.  Must be >= the fault
#: injector's ``max_eio_per_path`` for chaos runs to converge.
DEFAULT_RETRIES = 4

_T = TypeVar("_T")


class AtomicWriter:
    """Context manager streaming text atomically and durably to ``path``.

    Usage::

        with AtomicWriter(path) as writer:
            for line in lines:
                writer.write(line)

    The destination is only touched at ``__exit__``; until then all
    bytes live in ``<name>.tmp`` in the same directory (same filesystem,
    so the final ``replace`` is atomic).  ``bytes_written`` and
    ``sha256_hex`` describe the streamed content without re-reading it,
    which is how manifests are built in the same pass.

    Args:
        path: destination file.
        fs: filesystem to write through (default: the host disk).
        retries: transient-EIO retry budget per syscall.
        binary: open the temp file in binary mode; ``write`` then takes
            ``bytes`` (the scrub engine rewrites files whose corrupt
            bytes may not decode as UTF-8).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fs: FileSystem | None = None,
        retries: int = DEFAULT_RETRIES,
        binary: bool = False,
    ):
        if retries < 0:
            raise ConfigError(f"retries must be >= 0, got {retries}")
        self.path = Path(path)
        self.fs: FileSystem = fs if fs is not None else LOCAL_FS
        self.retries = retries
        self.binary = binary
        self.tmp_path = self.path.with_name(self.path.name + TMP_SUFFIX)
        self.bytes_written = 0
        self._digest = hashlib.sha256()
        self._handle: IO[Any] | None = None

    @property
    def sha256_hex(self) -> str:
        """SHA-256 of everything written so far."""
        return self._digest.hexdigest()

    def __enter__(self) -> "AtomicWriter":
        mode = "wb" if self.binary else "w"
        self._handle = self._attempt(
            "opening temp file for", lambda: self.fs.open(self.tmp_path, mode)
        )
        return self

    def write(self, text: str | bytes) -> None:
        if self._handle is None:
            raise StorageError(
                f"AtomicWriter for {self.path} used outside its context"
            )
        handle = self._handle
        self._attempt("writing", lambda: handle.write(text))
        data = text.encode("utf-8") if isinstance(text, str) else text
        self._digest.update(data)
        self.bytes_written += len(data)

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is None:
            try:
                self._finalize()
            except Exception:
                self._abort()
                raise
            except BaseException:
                self._close_handle()
                raise
        elif isinstance(exc, Exception):
            self._abort()
        else:
            # Simulated power loss (or interrupt): a dead process leaves
            # its temp file on disk for recovery to find.
            self._close_handle()

    # -- internals -------------------------------------------------------

    def _finalize(self) -> None:
        if self._handle is None:
            raise StorageError(
                f"AtomicWriter for {self.path} used outside its context"
            )
        handle = self._handle
        telemetry = telemetry_current()
        self._attempt("fsyncing", lambda: self.fs.fsync(handle))
        telemetry.inc("storage.fsyncs", target="file")
        self._close_handle()
        self._attempt(
            "replacing", lambda: self.fs.replace(self.tmp_path, self.path)
        )
        telemetry.inc("storage.replaces")
        parent = self.path.parent
        self._attempt(
            "fsyncing directory of", lambda: self.fs.fsync_dir(parent)
        )
        telemetry.inc("storage.fsyncs", target="dir")

    def _attempt(self, operation: str, call: Callable[[], _T]) -> _T:
        last: OSError | None = None
        for __ in range(self.retries + 1):
            try:
                return call()
            except OSError as exc:
                if exc.errno == errno.ENOSPC:
                    telemetry_current().inc("storage.enospc_failures")
                    raise StorageError(
                        f"no space left on device while {operation} "
                        f"{self.path}; destination left untouched, partial "
                        "temp file removed"
                    ) from exc
                if exc.errno != errno.EIO:
                    raise
                telemetry_current().inc("storage.eio_retries")
                last = exc
        raise StorageError(
            f"I/O error while {operation} {self.path} persisted through "
            f"{self.retries + 1} attempts"
        ) from last

    def _close_handle(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:  # pragma: no cover - close of a dying handle
                pass
            self._handle = None

    def _abort(self) -> None:
        """Best-effort cleanup: destination untouched, temp file gone."""
        self._close_handle()
        try:
            if self.fs.exists(self.tmp_path):
                self.fs.remove(self.tmp_path)
        except OSError:  # pragma: no cover - cleanup is best-effort
            pass


def atomic_write_text(
    path: str | Path,
    text: str,
    *,
    fs: FileSystem | None = None,
    retries: int = DEFAULT_RETRIES,
) -> int:
    """Write ``text`` to ``path`` atomically and durably; returns bytes."""
    with AtomicWriter(path, fs=fs, retries=retries) as writer:
        writer.write(text)
    return writer.bytes_written


def atomic_write_bytes(
    path: str | Path,
    data: bytes,
    *,
    fs: FileSystem | None = None,
    retries: int = DEFAULT_RETRIES,
) -> int:
    """Binary twin of :func:`atomic_write_text`."""
    with AtomicWriter(path, fs=fs, retries=retries, binary=True) as writer:
        writer.write(data)
    return writer.bytes_written
