"""Filesystem abstraction at syscall granularity.

Every byte the system persists flows through a :class:`FileSystem`:
:class:`LocalFS` is the host disk, one method per syscall the durable
write path performs, and :class:`FaultyFS` wraps any filesystem to
inject :class:`repro.faults.storage.StorageFaultPlan` faults *below*
every caller — so the atomic writer, the incremental collector, and the
run journal are all tested against the same disk-failure taxonomy
without knowing it exists.

``FaultyFS`` models durability the way a power loss does (the ALICE /
CrashMonkey model): bytes written but never fsynced live only in the
page cache, and a rename is just a directory-entry update until the
parent directory is fsynced.  An injected crash therefore truncates
every tracked file back to its last fsynced length and reverts renames
whose directory entry never reached the disk — then raises
:class:`~repro.faults.storage.SimulatedCrash`, which recovery code must
survive from the resulting on-disk state alone.
"""

from __future__ import annotations

import errno
import os
from pathlib import Path
from typing import IO, Any, NoReturn, Protocol, runtime_checkable

from repro.faults.storage import (
    InjectedStorageFaults,
    SimulatedCrash,
    StorageFaultPlan,
)

_WRITE_MODE_FLAGS = ("w", "a", "x", "+")


@runtime_checkable
class FileSystem(Protocol):
    """The syscalls a durable writer needs, and nothing else."""

    def open(self, path: str | Path, mode: str = "r") -> IO[Any]:
        """Open ``path``; text modes are always UTF-8."""
        ...  # pragma: no cover - protocol

    def fsync(self, handle: IO[Any]) -> None:
        """Flush and force ``handle``'s bytes to stable storage."""
        ...  # pragma: no cover - protocol

    def replace(self, src: str | Path, dst: str | Path) -> None:
        """Atomically rename ``src`` over ``dst``."""
        ...  # pragma: no cover - protocol

    def fsync_dir(self, path: str | Path) -> None:
        """Force a directory's entries (renames) to stable storage."""
        ...  # pragma: no cover - protocol

    def exists(self, path: str | Path) -> bool:
        ...  # pragma: no cover - protocol

    def remove(self, path: str | Path) -> None:
        ...  # pragma: no cover - protocol

    def listdir(self, path: str | Path) -> list[str]:
        """Directory entries in sorted (deterministic) order."""
        ...  # pragma: no cover - protocol


class LocalFS:
    """The host filesystem."""

    def open(self, path: str | Path, mode: str = "r") -> IO[Any]:
        if "b" in mode:
            return open(path, mode)
        return open(path, mode, encoding="utf-8")

    def fsync(self, handle: IO[Any]) -> None:
        handle.flush()
        os.fsync(handle.fileno())

    def replace(self, src: str | Path, dst: str | Path) -> None:
        os.replace(src, dst)

    def fsync_dir(self, path: str | Path) -> None:
        fd = os.open(os.fspath(path), os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def exists(self, path: str | Path) -> bool:
        return os.path.exists(path)

    def remove(self, path: str | Path) -> None:
        os.remove(path)

    def listdir(self, path: str | Path) -> list[str]:
        return sorted(os.listdir(path))


#: Shared default instance; the filesystem is stateless.
LOCAL_FS = LocalFS()


class _FaultyFile:
    """A write handle whose every ``write`` goes through the fault plan.

    Writes through to the real handle and flushes immediately, so the
    Python-level buffer is always empty and the simulated page cache
    (the gap between written and fsynced bytes) is the *only* volatile
    state — exactly like a C program calling ``write(2)`` directly.
    """

    def __init__(self, fs: "FaultyFS", real: IO[Any], path: str, binary: bool):
        self._fs = fs
        self._real = real
        self.path = path
        self.binary = binary

    def write(self, data: str | bytes) -> int:
        return self._fs._file_write(self, data)

    def flush(self) -> None:
        self._real.flush()

    def close(self) -> None:
        self._real.close()

    def fileno(self) -> int:
        return self._real.fileno()

    @property
    def closed(self) -> bool:
        return self._real.closed

    def __enter__(self) -> "_FaultyFile":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class FaultyFS:
    """A :class:`FileSystem` that injects seeded disk faults.

    Args:
        plan: the fault schedule; :meth:`StorageFaultPlan.none` still
            counts syscalls, which is how crash-matrix tests enumerate
            every possible kill point.
        inner: the wrapped filesystem (default: :data:`LOCAL_FS`).

    Attributes:
        syscalls: mutating syscalls performed so far.
        trace: operation name of each counted syscall, in order — lets a
            test aim a point fault at e.g. the first ``replace``.
        injected: counters of faults actually injected.

    Read-only opens are passed through uncounted: the fault taxonomy
    targets the write path, and read fault-tolerance is the scrub
    engine's job.  Read-write (``+``) opens are also passed through
    untracked — they belong to *recovery* code (torn-tail truncation),
    which by definition runs after the crash being simulated.
    """

    def __init__(
        self,
        plan: StorageFaultPlan | None = None,
        inner: FileSystem | None = None,
    ):
        self.plan = plan if plan is not None else StorageFaultPlan()
        self.inner: FileSystem = inner if inner is not None else LOCAL_FS
        self.syscalls = 0
        self.trace: list[str] = []
        self.injected = InjectedStorageFaults()
        self._written: dict[str, int] = {}
        self._durable: dict[str, int] = {}
        self._eio_used: dict[str, int] = {}
        #: dst -> (parent dir, pre-replace bytes or None if dst was new).
        self._pending_renames: dict[str, tuple[str, bytes | None]] = {}

    # -- fault machinery -------------------------------------------------

    def _step(self, operation: str) -> int:
        index = self.syscalls
        self.syscalls += 1
        self.trace.append(operation)
        if self.plan.crash_at is not None and index == self.plan.crash_at:
            self._crash(f"power loss at syscall #{index} ({operation})")
        return index

    def _maybe_eio(self, operation: str, index: int, path: str) -> None:
        if not self.plan.transient_eio(operation, index):
            return
        used = self._eio_used.get(path, 0)
        if used >= self.plan.max_eio_per_path:
            return
        self._eio_used[path] = used + 1
        self.injected.eio += 1
        raise OSError(
            errno.EIO, f"injected transient I/O error ({operation}): {path}"
        )

    def _crash(self, reason: str) -> NoReturn:
        """Simulate power loss: only durable state survives."""
        self.injected.crashes += 1
        # Renames whose directory entry never reached the disk revert.
        for dst, (__, old_bytes) in self._pending_renames.items():
            if old_bytes is None:
                if os.path.exists(dst):
                    os.remove(dst)
                self._written.pop(dst, None)
                self._durable.pop(dst, None)
            else:
                with open(dst, "wb") as handle:
                    handle.write(old_bytes)
                self._written[dst] = len(old_bytes)
                self._durable[dst] = len(old_bytes)
        self._pending_renames.clear()
        # Bytes written but never fsynced lived only in the page cache.
        for path, durable in self._durable.items():
            if os.path.exists(path) and os.path.getsize(path) > durable:
                os.truncate(path, durable)
        raise SimulatedCrash(reason)

    # -- FileSystem API --------------------------------------------------

    def open(self, path: str | Path, mode: str = "r") -> IO[Any]:
        if not any(flag in mode for flag in _WRITE_MODE_FLAGS):
            return self.inner.open(path, mode)
        if "+" in mode and not any(flag in mode for flag in "wax"):
            return self.inner.open(path, mode)
        spath = os.fspath(path)
        self._step(f"open:{mode}")
        real = self.inner.open(path, mode)
        if "a" in mode:
            size = os.path.getsize(spath)
            self._written[spath] = size
            # Pre-existing bytes are durable unless this FaultyFS already
            # knows better (it wrote them itself without fsync).
            self._durable.setdefault(spath, size)
        else:
            self._written[spath] = 0
            self._durable[spath] = 0
        return _FaultyFile(self, real, spath, binary="b" in mode)

    def _file_write(self, file: _FaultyFile, data: str | bytes) -> int:
        index = self._step("write")
        if self.plan.enospc_at is not None and index == self.plan.enospc_at:
            self.injected.enospc += 1
            raise OSError(
                errno.ENOSPC, f"injected: no space left on device: {file.path}"
            )
        self._maybe_eio("write", index, file.path)
        if (
            self.plan.torn_write_at is not None
            and index == self.plan.torn_write_at
        ):
            keep = self.plan.torn_length(index, len(data))
            prefix = data[:keep]
            if prefix:
                file._real.write(prefix)
                file._real.flush()
                self._written[file.path] += _byte_length(prefix)
            self.injected.torn_writes += 1
            # The prefix reached the platter: writeback was mid-flight
            # when power failed, which is what makes the write "torn"
            # rather than simply lost with the page cache.
            self._durable[file.path] = self._written[file.path]
            self._crash(f"torn write at syscall #{index} ({file.path})")
        file._real.write(data)
        file._real.flush()
        self._written[file.path] += _byte_length(data)
        return len(data)

    def fsync(self, handle: IO[Any]) -> None:
        if not isinstance(handle, _FaultyFile):
            self.inner.fsync(handle)
            return
        index = self._step("fsync")
        self._maybe_eio("fsync", index, handle.path)
        if self.plan.fsync_lie(index):
            # Reported durable, actually still in the page cache.
            self.injected.fsync_lies += 1
            return
        self.inner.fsync(handle._real)
        self._durable[handle.path] = self._written[handle.path]

    def replace(self, src: str | Path, dst: str | Path) -> None:
        source, destination = os.fspath(src), os.fspath(dst)
        index = self._step("replace")
        self._maybe_eio("replace", index, destination)
        if destination not in self._pending_renames:
            old_bytes: bytes | None = None
            if os.path.exists(destination):
                with open(destination, "rb") as handle:
                    old_bytes = handle.read()
            parent = os.path.dirname(destination) or "."
            self._pending_renames[destination] = (parent, old_bytes)
        self.inner.replace(src, dst)
        self._written[destination] = self._written.pop(
            source, os.path.getsize(destination)
        )
        self._durable[destination] = self._durable.pop(source, 0)

    def fsync_dir(self, path: str | Path) -> None:
        spath = os.fspath(path)
        index = self._step("fsync_dir")
        self._maybe_eio("fsync_dir", index, spath)
        self.inner.fsync_dir(path)
        for dst in list(self._pending_renames):
            if self._pending_renames[dst][0] == spath:
                del self._pending_renames[dst]

    def exists(self, path: str | Path) -> bool:
        return self.inner.exists(path)

    def remove(self, path: str | Path) -> None:
        spath = os.fspath(path)
        self._step("remove")
        self.inner.remove(path)
        # Unlink of an un-renamed temp file: nothing to resurrect — the
        # crash model does not bring removed files back.
        self._written.pop(spath, None)
        self._durable.pop(spath, None)

    def listdir(self, path: str | Path) -> list[str]:
        return self.inner.listdir(path)


def _byte_length(data: str | bytes) -> int:
    if isinstance(data, str):
        return len(data.encode("utf-8"))
    return len(data)
