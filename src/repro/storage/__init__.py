"""Durable storage: the layer every persisted byte flows through.

Four parts, composed bottom-up:

* :mod:`repro.storage.fs` — the syscall-granular filesystem abstraction
  (:class:`LocalFS`) and its fault-injecting wrapper (:class:`FaultyFS`).
* :mod:`repro.storage.atomic` — the single atomic-durable write
  primitive (tmp → fsync → replace → fsync dir) that replaced the
  ad-hoc copies in the incremental collector, the run journal, and the
  dataset writers.
* :mod:`repro.storage.manifest` — per-file SHA-256 + per-record CRC32
  integrity sidecars.
* :mod:`repro.storage.scrub` — the offline verifier that detects
  bitrot, quarantines corrupt records into a dead-letter, and repairs
  from replicas.

The matching fault taxonomy lives in :mod:`repro.faults.storage`.
"""

from repro.storage.atomic import (
    AtomicWriter,
    atomic_write_bytes,
    atomic_write_text,
)
from repro.storage.fs import LOCAL_FS, FaultyFS, FileSystem, LocalFS
from repro.storage.manifest import (
    MANIFEST_SUFFIX,
    Manifest,
    VerifyResult,
    build_manifest,
    load_manifest,
    manifest_path,
    verify_file,
    write_manifest,
    write_text_with_manifest,
)
from repro.storage.scrub import (
    QUARANTINE_SUFFIX,
    FileScrubResult,
    QuarantinedRecord,
    ScrubReport,
    quarantine_path,
    scrub_file,
    scrub_paths,
)

__all__ = [
    "LOCAL_FS",
    "MANIFEST_SUFFIX",
    "QUARANTINE_SUFFIX",
    "AtomicWriter",
    "FaultyFS",
    "FileScrubResult",
    "FileSystem",
    "LocalFS",
    "Manifest",
    "QuarantinedRecord",
    "ScrubReport",
    "VerifyResult",
    "atomic_write_bytes",
    "atomic_write_text",
    "build_manifest",
    "load_manifest",
    "manifest_path",
    "quarantine_path",
    "scrub_file",
    "scrub_paths",
    "verify_file",
    "write_manifest",
    "write_text_with_manifest",
]
