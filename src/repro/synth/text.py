"""Template-based tweet text generation.

Renders tweets that carry the Context × Subject vocabulary the collection
filter tracks (Fig. 1), plus off-topic tweets that must be rejected.  Organ
surface forms rotate through the alias table (plural, adjective, glued
hashtags) so the NLP matcher is exercised on realistic variety.
"""

from __future__ import annotations

import numpy as np

from repro.organs import Organ

#: Surface forms per organ: (form, weight).  All forms resolve back to the
#: organ through :data:`repro.organs.ALIASES` or hashtag substring rules.
_SURFACE_FORMS: dict[Organ, tuple[tuple[str, float], ...]] = {
    Organ.HEART: (("heart", 0.7), ("hearts", 0.15), ("cardiac", 0.15)),
    Organ.KIDNEY: (("kidney", 0.7), ("kidneys", 0.2), ("renal", 0.1)),
    Organ.LIVER: (("liver", 0.85), ("livers", 0.1), ("hepatic", 0.05)),
    Organ.LUNG: (("lung", 0.6), ("lungs", 0.3), ("pulmonary", 0.1)),
    Organ.PANCREAS: (("pancreas", 0.85), ("pancreatic", 0.15)),
    Organ.INTESTINE: (("intestine", 0.6), ("intestinal", 0.2), ("bowel", 0.2)),
}

#: On-topic templates with one organ slot.  Every template contains at
#: least one Context term (donor/donate/donation/transplant/.../organ).
_SINGLE_TEMPLATES: tuple[str, ...] = (
    "Be a {o1} donor, save a life #DonateLife",
    "My mom just got her {o1} transplant, so grateful 🙏",
    "Signed up as an organ donor today, thinking about {o1} patients",
    "Month 14 on the {o1} transplant waitlist. Staying hopeful.",
    "Please share: a local kid needs a {o1} transplant",
    "Proud {o1} donation advocate — register today!",
    "Learned so much at the {o1} transplant support group tonight",
    "One organ donor can save 8 lives. {o1} recipients need you",
    "Honoring my brother, a {o1} donor who saved three lives",
    "RT if you support {o1} donation awareness #OrganDonation",
    "Team walk for {o1} transplant recipients this weekend! Donate!",
    "The {o1} waitlist keeps growing. Become a donor.",
    "Celebrating 5 years since my {o1} transplant 🎉 thank my donor",
    "New post: what every {o1} donation recipient wishes you knew",
    "Our hospital performed its 100th {o1} transplant — donor heroes",
    "#{g1}transplant awareness week — talk to your family about donation",
    "Did you know a single {o1} donation can change a family forever?",
    "Fundraiser for {o1} transplant costs — every donation helps",
)

#: On-topic templates with two organ slots.
_DUAL_TEMPLATES: tuple[str, ...] = (
    "Rare double transplant: {o1} and {o2} from one donor 🙌",
    "Dad needs a combined {o1}-{o2} transplant. Please be a donor.",
    "Amazing story of a {o1} and {o2} recipient meeting her donor family",
    "Donor awareness day: {o1} and {o2} waitlists are the longest here",
    "She donated a {o1} and, years later, needed a {o2} transplant herself",
)

#: On-topic templates with three organ slots.
_TRIPLE_TEMPLATES: tuple[str, ...] = (
    "One donor, three lives: {o1}, {o2}, and {o3} transplants in one night",
    "Waitlist update: {o1}, {o2}, {o3} — all need donors in our region",
)

#: Off-topic templates: context-without-subject, subject-without-context,
#: or neither.  The stream filter must drop every one of these.
OFF_TOPIC_TEMPLATES: tuple[str, ...] = (
    "Please donate to the food bank this weekend",
    "Blood donor drive at the campus center tomorrow",
    "Made a small donation to the animal shelter 🐕",
    "My heart is so full right now, best day ever",
    "Ate way too much, my liver hates me",
    "Screaming my lungs out at the concert tonight",
    "This playlist goes straight to the heart",
    "Beautiful sunset tonight, no filter",
    "Coffee is the only thing keeping me alive today",
    "Charity donation receipts are so confusing",
    "New gym program is brutal on the legs",
    "Thrift store donation pile keeps growing",
)


class TweetTextGenerator:
    """Renders tweet text for a chosen multiset of organs.

    Args:
        rng: generator for template/surface-form choices.
        alias_rate: probability an organ is rendered as a non-canonical
            surface form rather than its plain name.
        retweet_rate: probability an on-topic tweet is wrapped as a
            retweet ("RT @handle: …").
        handles: handle pool for retweet attribution; a generic pool is
            used when empty.
    """

    _FALLBACK_HANDLES = ("donatelife", "unos_news", "organdonor_gov")

    def __init__(
        self,
        rng: np.random.Generator,
        alias_rate: float = 0.25,
        retweet_rate: float = 0.0,
        handles: tuple[str, ...] = (),
    ):
        self._rng = rng
        self._alias_rate = alias_rate
        self._retweet_rate = retweet_rate
        self._handles = handles or self._FALLBACK_HANDLES
        self._forms = {
            organ: (
                tuple(form for form, __ in forms),
                np.array([weight for __, weight in forms]),
            )
            for organ, forms in _SURFACE_FORMS.items()
        }

    def on_topic(self, organs: tuple[Organ, ...]) -> str:
        """Render an on-topic tweet mentioning exactly these organs."""
        body = self._body(organs)
        if self._retweet_rate and self._rng.random() < self._retweet_rate:
            handle = self._handles[int(self._rng.integers(len(self._handles)))]
            return f"RT @{handle}: {body}"
        return body

    def _body(self, organs: tuple[Organ, ...]) -> str:
        if len(organs) == 1:
            template = _SINGLE_TEMPLATES[
                int(self._rng.integers(len(_SINGLE_TEMPLATES)))
            ]
            return template.format(
                o1=self._surface(organs[0]), g1=organs[0].value
            )
        if len(organs) == 2:
            template = _DUAL_TEMPLATES[int(self._rng.integers(len(_DUAL_TEMPLATES)))]
            return template.format(
                o1=self._surface(organs[0]), o2=self._surface(organs[1])
            )
        template = _TRIPLE_TEMPLATES[int(self._rng.integers(len(_TRIPLE_TEMPLATES)))]
        return template.format(
            o1=self._surface(organs[0]),
            o2=self._surface(organs[1]),
            o3=self._surface(organs[2]),
        )

    def off_topic(self) -> str:
        """Render a tweet that must fail the Context × Subject filter."""
        return OFF_TOPIC_TEMPLATES[int(self._rng.integers(len(OFF_TOPIC_TEMPLATES)))]

    def _surface(self, organ: Organ) -> str:
        forms, weights = self._forms[organ]
        if self._rng.random() >= self._alias_rate:
            return organ.value
        index = int(self._rng.choice(len(forms), p=weights / weights.sum()))
        return forms[index]
