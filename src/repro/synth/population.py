"""Synthetic user population.

Generates the people behind the tweets: US users distributed over states
proportionally to population (with the Midwest damped, per the Twitter
demographic bias the paper cites) and foreign users who will be discarded
by the pipeline's US filter, as ~86% of the paper's collected tweets were.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geo.gazetteer import STATES, CensusRegion, StateInfo
from repro.geo.geocoder import FOREIGN_LOCATIONS
from repro.geo.noise import LocationStyler
from repro.synth.config import PopulationConfig

_HANDLE_PREFIXES = (
    "donor", "hope", "health", "life", "organ", "heart", "kind", "give",
    "care", "true", "sunny", "real", "daily", "the", "just", "mighty",
)
_HANDLE_SUFFIXES = (
    "mom", "dad", "fan", "warrior", "advocate", "nurse", "runner", "writer",
    "girl", "guy", "life", "journey", "story", "voice", "hope", "fighter",
)


@dataclass(frozen=True, slots=True)
class UserSeed:
    """A generated user before attention/activity assignment.

    Attributes:
        user_id: globally unique id.
        screen_name: Twitter handle.
        is_us: whether the user truly lives in the USA (ground truth).
        state: ground-truth USPS state code for US users, else ``None``.
        location: profile location string as the geocoder will see it;
            may be junk even for US users.
    """

    user_id: int
    screen_name: str
    is_us: bool
    state: str | None
    location: str


def state_weights(midwest_bias: float) -> np.ndarray:
    """Sampling weight per gazetteer state: population × regional bias."""
    weights = np.array([float(state.population) for state in STATES])
    for index, state in enumerate(STATES):
        if state.region is CensusRegion.MIDWEST:
            weights[index] *= midwest_bias
    return weights / weights.sum()


def generate_population(
    config: PopulationConfig, rng: np.random.Generator
) -> list[UserSeed]:
    """Generate the full user population for one synthetic world.

    US users receive a styled location string (or junk at the configured
    rate); foreign users receive a foreign location string.  The ground
    truth (``is_us``, ``state``) is retained on every seed so experiments
    can score the geocoder and the pipeline's US filter.
    """
    n_us = int(round(config.n_users * config.us_fraction))
    n_foreign = config.n_users - n_us
    styler = LocationStyler(rng)
    foreign_locations = tuple(FOREIGN_LOCATIONS)

    weights = state_weights(config.midwest_bias)
    state_indices = rng.choice(len(STATES), size=n_us, p=weights)

    seeds: list[UserSeed] = []
    for user_id, state_index in enumerate(state_indices):
        state: StateInfo = STATES[int(state_index)]
        if rng.random() < config.junk_location_rate:
            location = "" if rng.random() < 0.4 else styler.style_junk()
        else:
            location = styler.style_us(state)
        seeds.append(
            UserSeed(
                user_id=user_id,
                screen_name=_screen_name(user_id, rng),
                is_us=True,
                state=state.abbrev,
                location=location,
            )
        )

    for offset in range(n_foreign):
        user_id = n_us + offset
        location = str(rng.choice(foreign_locations)).title()
        seeds.append(
            UserSeed(
                user_id=user_id,
                screen_name=_screen_name(user_id, rng),
                is_us=False,
                state=None,
                location=location,
            )
        )
    return seeds


def _screen_name(user_id: int, rng: np.random.Generator) -> str:
    prefix = _HANDLE_PREFIXES[int(rng.integers(len(_HANDLE_PREFIXES)))]
    suffix = _HANDLE_SUFFIXES[int(rng.integers(len(_HANDLE_SUFFIXES)))]
    return f"{prefix}_{suffix}_{user_id}"
