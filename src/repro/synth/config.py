"""Configuration dataclasses for the synthetic world.

Every stochastic choice in :mod:`repro.synth` is governed by a field here,
so a :class:`SynthConfig` plus a seed fully determines a generated world.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError
from repro.organs import N_ORGANS


def _require_probability(name: str, value: float) -> None:
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True, slots=True)
class PopulationConfig:
    """Who tweets about organ donation.

    Attributes:
        n_users: total users worldwide emitting on-topic tweets.
        us_fraction: fraction of users based in the USA.
        junk_location_rate: fraction of US users whose profile location is
            a joke/empty string that cannot be geocoded.
        midwest_bias: multiplier (<1) on Midwest state weights, reproducing
            the Twitter under-representation of the Midwest the paper's
            limitations section cites (Mislove et al.).
    """

    n_users: int = 5000
    us_fraction: float = 0.158
    junk_location_rate: float = 0.10
    midwest_bias: float = 0.80

    def __post_init__(self) -> None:
        if self.n_users < 1:
            raise ConfigError(f"n_users must be >= 1, got {self.n_users}")
        _require_probability("us_fraction", self.us_fraction)
        _require_probability("junk_location_rate", self.junk_location_rate)
        if self.midwest_bias <= 0:
            raise ConfigError(f"midwest_bias must be > 0, got {self.midwest_bias}")


@dataclass(frozen=True, slots=True)
class AttentionConfig:
    """Ground-truth organ attention of the population.

    Attributes:
        national_prior: baseline probability that a user's *focal* organ is
            each of the six organs, in canonical organ order.  The default
            plants the paper's Twitter popularity order (heart first,
            intestine last) including the heart inversion vs transplant
            volume.
        state_boosts: per-state multiplicative boosts on the prior,
            ``{state_code: {organ_index: multiplier}}`` — the planted
            geographic anomalies (e.g. the Kansas kidney excess).
        archetype_probs: probability that a user is single-focus, dual-focus,
            or a broad advocate, in that order.
        focal_weight: attention mass a single-focus user puts on the focal
            organ (before Dirichlet noise).
        dual_secondary_weight: attention mass a dual-focus user puts on the
            secondary organ.
        dirichlet_concentration: sharpness of per-user Dirichlet noise
            around the archetype profile; larger = less noise.
    """

    national_prior: tuple[float, ...] = (0.34, 0.26, 0.16, 0.12, 0.08, 0.04)
    state_boosts: dict[str, dict[int, float]] = field(default_factory=dict)
    archetype_probs: tuple[float, float, float] = (0.90, 0.07, 0.03)
    focal_weight: float = 0.88
    dual_secondary_weight: float = 0.38
    dirichlet_concentration: float = 60.0

    def __post_init__(self) -> None:
        if len(self.national_prior) != N_ORGANS:
            raise ConfigError(
                f"national_prior must have {N_ORGANS} entries, "
                f"got {len(self.national_prior)}"
            )
        if any(p < 0 for p in self.national_prior):
            raise ConfigError("national_prior entries must be >= 0")
        if abs(sum(self.national_prior) - 1.0) > 1e-6:
            raise ConfigError("national_prior must sum to 1")
        if abs(sum(self.archetype_probs) - 1.0) > 1e-6:
            raise ConfigError("archetype_probs must sum to 1")
        _require_probability("focal_weight", self.focal_weight)
        _require_probability("dual_secondary_weight", self.dual_secondary_weight)
        if self.dirichlet_concentration <= 0:
            raise ConfigError("dirichlet_concentration must be > 0")


@dataclass(frozen=True, slots=True)
class ActivityConfig:
    """How much users tweet.

    Attributes:
        zipf_exponent: exponent of the per-user tweet-count Zipf law;
            2.53 calibrates the mean to the paper's 1.88 tweets/user
            (ζ(1.53)/ζ(2.53) = 1.88) while keeping the heavy tail (a few
            users post hundreds of tweets).
        max_tweets_per_user: tail cap, bounding worst-case generation cost.
        multi_organ_tweet_rate: probability a tweet mentions more than one
            organ; 0.03 calibrates organs/tweet to the paper's 1.03.
        days: collection window length (Table I: 385 days).
    """

    zipf_exponent: float = 2.53
    max_tweets_per_user: int = 500
    multi_organ_tweet_rate: float = 0.03
    days: int = 385

    def __post_init__(self) -> None:
        if self.zipf_exponent <= 2.0:
            # mean of the Zipf law diverges at 2; keep it finite.
            raise ConfigError(
                f"zipf_exponent must be > 2, got {self.zipf_exponent}"
            )
        if self.max_tweets_per_user < 1:
            raise ConfigError("max_tweets_per_user must be >= 1")
        _require_probability("multi_organ_tweet_rate", self.multi_organ_tweet_rate)
        if self.days < 1:
            raise ConfigError(f"days must be >= 1, got {self.days}")


@dataclass(frozen=True, slots=True)
class TextConfig:
    """How tweet text is rendered.

    Attributes:
        off_topic_rate: fraction of firehose tweets that are off-topic
            (fail the Context × Subject filter); exercises collection.
        geotag_rate: fraction of tweets carrying a GPS place object
            (Morstatter et al. report ~1.4%).
        alias_rate: probability an organ is rendered as a non-canonical
            surface form (plural, adjective, glued hashtag).
        retweet_rate: probability an on-topic tweet is rendered as a
            retweet ("RT @handle: …").  The retweeted content is sampled
            from the retweeter's own attention (people amplify content
            aligned with their interests), so every calibrated statistic
            is unchanged while the NLP layer sees realistic RT syntax.
        reply_rate: probability an on-topic tweet replies to a recent
            on-topic tweet about the same organ (support-group threads,
            the conversation structure of the paper's ref [13]).  Reply
            text is generated like any on-topic tweet, so calibrated
            statistics are unchanged.
    """

    off_topic_rate: float = 0.15
    geotag_rate: float = 0.014
    alias_rate: float = 0.25
    retweet_rate: float = 0.12
    reply_rate: float = 0.10

    def __post_init__(self) -> None:
        _require_probability("off_topic_rate", self.off_topic_rate)
        _require_probability("geotag_rate", self.geotag_rate)
        _require_probability("alias_rate", self.alias_rate)
        _require_probability("retweet_rate", self.retweet_rate)
        _require_probability("reply_rate", self.reply_rate)


@dataclass(frozen=True, slots=True)
class SynthConfig:
    """Full synthetic-world configuration."""

    population: PopulationConfig = field(default_factory=PopulationConfig)
    attention: AttentionConfig = field(default_factory=AttentionConfig)
    activity: ActivityConfig = field(default_factory=ActivityConfig)
    text: TextConfig = field(default_factory=TextConfig)
    seed: int = 0
