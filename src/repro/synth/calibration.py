"""Calibration checking: does a generated world match Table I?

Used by the ``repro calibrate`` CLI command and by tests.  Each check
compares a measured statistic of a pipeline run against the paper's
target with a tolerance, so drift introduced by future changes to the
generative model is caught immediately.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper import PAPER_DATASET_STATS
from repro.dataset.corpus import TweetCorpus
from repro.dataset.stats import compute_stats
from repro.pipeline.runner import PipelineReport


@dataclass(frozen=True, slots=True)
class CalibrationCheck:
    """One target comparison.

    Attributes:
        name: statistic name.
        target: the paper's value.
        measured: this world's value.
        tolerance: accepted absolute deviation.
        ok: whether the check passed.
    """

    name: str
    target: float
    measured: float
    tolerance: float

    @property
    def ok(self) -> bool:
        return abs(self.measured - self.target) <= self.tolerance

    def render(self) -> str:
        flag = "ok " if self.ok else "FAIL"
        return (
            f"[{flag}] {self.name}: measured {self.measured:.3f} "
            f"vs target {self.target:.3f} (±{self.tolerance:.3f})"
        )


@dataclass(frozen=True, slots=True)
class CalibrationReport:
    """All checks for one world/pipeline run."""

    checks: tuple[CalibrationCheck, ...]

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    def render(self) -> str:
        lines = [check.render() for check in self.checks]
        verdict = "CALIBRATED" if self.ok else "OUT OF CALIBRATION"
        lines.append(f"=> {verdict}")
        return "\n".join(lines)


def check_calibration(
    corpus: TweetCorpus, report: PipelineReport
) -> CalibrationReport:
    """Compare a pipeline run against the paper's Table I targets.

    Scale-free statistics only: ratios and per-user/per-tweet means.
    Absolute volumes are excluded because they scale with the world size
    by construction.
    """
    stats = compute_stats(corpus)
    target_yield = (
        PAPER_DATASET_STATS["tweets_collected"]
        / PAPER_DATASET_STATS["tweets_raw"]
    )
    checks = (
        CalibrationCheck(
            name="us_yield",
            target=float(target_yield),
            measured=report.us_yield,
            tolerance=0.03,
        ),
        CalibrationCheck(
            name="avg_tweets_per_user",
            target=float(PAPER_DATASET_STATS["avg_tweets_per_user"]),
            measured=stats.avg_tweets_per_user,
            tolerance=0.25,
        ),
        CalibrationCheck(
            name="organs_per_tweet",
            target=float(PAPER_DATASET_STATS["organs_per_tweet"]),
            measured=stats.organs_per_tweet,
            tolerance=0.05,
        ),
        CalibrationCheck(
            name="organs_per_user",
            target=float(PAPER_DATASET_STATS["organs_per_user"]),
            measured=stats.organs_per_user,
            tolerance=0.09,
        ),
        CalibrationCheck(
            name="collection_days",
            target=float(PAPER_DATASET_STATS["days"]),
            measured=float(stats.days),
            tolerance=2.0,
        ),
    )
    return CalibrationReport(checks=checks)
