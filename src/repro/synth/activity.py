"""Heavy-tailed tweet activity model.

Twitter activity is extremely heterogeneous — the paper motivates its
user-level characterization precisely because "a few heavily-active users"
would bias tweet-level statistics (§III-B).  Tweet counts follow a
truncated Zipf law: ~83% of users post a single on-topic tweet, while a
handful post hundreds, and the calibrated mean matches Table I's 1.88
tweets/user.
"""

from __future__ import annotations

import numpy as np

from repro.synth.config import ActivityConfig


def sample_tweet_counts(
    n_users: int, config: ActivityConfig, rng: np.random.Generator
) -> np.ndarray:
    """Number of on-topic tweets for each of ``n_users`` users (>= 1)."""
    counts = rng.zipf(config.zipf_exponent, size=n_users)
    return np.minimum(counts, config.max_tweets_per_user).astype(np.int64)


def sample_timestamps_days(
    n_tweets: int, config: ActivityConfig, rng: np.random.Generator
) -> np.ndarray:
    """Fractional day offsets (in [0, days)) for each tweet, sorted."""
    offsets = rng.random(n_tweets) * config.days
    offsets.sort()
    return offsets


def expected_tweets_per_user(config: ActivityConfig) -> float:
    """Analytic mean of the (untruncated) Zipf law, ζ(a−1)/ζ(a)."""
    from scipy.special import zeta

    a = config.zipf_exponent
    return float(zeta(a - 1) / zeta(a))
