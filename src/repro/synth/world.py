"""The synthetic world: population + attention + activity + text → firehose.

:class:`SyntheticWorld` deterministically generates a population and
exposes a :meth:`~SyntheticWorld.firehose` of
:class:`repro.twitter.models.Tweet` records in timestamp order — the
stand-in for the Twitter Streaming API's undifferentiated output.  The
planted :class:`GroundTruth` stays accessible so experiments can verify
that the paper's pipeline *recovers* what was planted.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterator
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone

import numpy as np

from repro.geo.cities import cities_in_state
from repro.organs import N_ORGANS, ORGANS, Organ
from repro.synth.activity import sample_tweet_counts
from repro.synth.attention import AttentionModel, UserAttention
from repro.synth.config import SynthConfig
from repro.synth.population import UserSeed, generate_population
from repro.synth.text import TweetTextGenerator
from repro.twitter.models import Place, Tweet, UserProfile

#: Collection start date (Table I).
COLLECTION_START = datetime(2015, 4, 22, tzinfo=timezone.utc)


@dataclass(frozen=True, slots=True)
class GroundTruth:
    """Everything that was planted, for scoring recovery.

    Attributes:
        seeds: user seeds, indexed by user id.
        attentions: ground-truth attention per user, aligned with seeds.
        tweet_counts: on-topic tweets per user, aligned with seeds.
        config: the generating configuration (includes state boosts).
    """

    seeds: tuple[UserSeed, ...]
    attentions: tuple[UserAttention, ...]
    tweet_counts: np.ndarray
    config: SynthConfig

    def focal_organ(self, user_id: int) -> Organ:
        return self.attentions[user_id].focal

    def us_user_ids(self) -> list[int]:
        return [seed.user_id for seed in self.seeds if seed.is_us]

    def state_of(self, user_id: int) -> str | None:
        return self.seeds[user_id].state

    def planted_boosts(self) -> dict[str, dict[Organ, float]]:
        """Per-state planted anomaly multipliers, keyed by organ."""
        return {
            state: {ORGANS[index]: factor for index, factor in boosts.items()}
            for state, boosts in self.config.attention.state_boosts.items()
        }


class SyntheticWorld:
    """A fully generated organ-donation twittersphere.

    Construction generates the population, attentions, and activity
    (everything except tweet text, which is rendered lazily by
    :meth:`firehose`).  All randomness derives from ``config.seed``.
    """

    def __init__(self, config: SynthConfig):
        self.config = config
        self._rng = np.random.default_rng(config.seed)
        seeds = generate_population(config.population, self._rng)

        attention_model = AttentionModel(config.attention, self._rng)
        attentions = tuple(
            attention_model.sample(seed.state if seed.is_us else None)
            for seed in seeds
        )
        tweet_counts = sample_tweet_counts(
            len(seeds), config.activity, self._rng
        )
        self.ground_truth = GroundTruth(
            seeds=tuple(seeds),
            attentions=attentions,
            tweet_counts=tweet_counts,
            config=config,
        )
        self._profiles = tuple(
            UserProfile(
                user_id=seed.user_id,
                screen_name=seed.screen_name,
                location=seed.location,
            )
            for seed in seeds
        )

    @property
    def n_users(self) -> int:
        return len(self.ground_truth.seeds)

    @property
    def n_on_topic_tweets(self) -> int:
        return int(self.ground_truth.tweet_counts.sum())

    def firehose(self) -> Iterator[Tweet]:
        """Yield every tweet of the collection window in timestamp order.

        Includes both on-topic tweets (which the Fig. 1 keyword filter must
        admit) and off-topic tweets (which it must reject), interleaved.
        """
        config = self.config
        rng = np.random.default_rng(config.seed + 1)
        handle_pool = tuple(
            profile.screen_name for profile in self._profiles[:200]
        )
        text_gen = TweetTextGenerator(
            rng,
            alias_rate=config.text.alias_rate,
            retweet_rate=config.text.retweet_rate,
            handles=handle_pool,
        )

        counts = self.ground_truth.tweet_counts
        on_topic_authors = np.repeat(np.arange(self.n_users), counts)
        n_on_topic = on_topic_authors.size
        off_rate = config.text.off_topic_rate
        n_off_topic = int(round(n_on_topic * off_rate / max(1e-9, 1.0 - off_rate)))
        off_topic_authors = rng.integers(0, self.n_users, size=n_off_topic)

        authors = np.concatenate([on_topic_authors, off_topic_authors])
        is_off_topic = np.zeros(authors.size, dtype=bool)
        is_off_topic[n_on_topic:] = True
        order = rng.permutation(authors.size)
        authors = authors[order]
        is_off_topic = is_off_topic[order]
        day_offsets = np.sort(rng.random(authors.size) * config.activity.days)

        # Recent on-topic tweets per organ: reply targets for
        # support-group threads (bounded ring buffers).  Reply decisions
        # draw from their own stream so enabling/disabling them leaves
        # every other realization choice untouched.
        recent_by_organ: dict[Organ, deque[int]] = {
            organ: deque(maxlen=50) for organ in ORGANS
        }
        reply_rng = np.random.default_rng(config.seed + 2)
        reply_rate = config.text.reply_rate
        for tweet_index in range(authors.size):
            author = int(authors[tweet_index])
            in_reply_to: int | None = None
            if is_off_topic[tweet_index]:
                text = text_gen.off_topic()
            else:
                organs = self._sample_tweet_organs(author, rng)
                text = text_gen.on_topic(organs)
                pool = recent_by_organ[organs[0]]
                if reply_rng.random() < reply_rate and pool:
                    in_reply_to = int(
                        pool[int(reply_rng.integers(len(pool)))]
                    )
                recent_by_organ[organs[0]].append(tweet_index)
            place = self._maybe_place(author, rng)
            yield Tweet(
                tweet_id=tweet_index,
                user=self._profiles[author],
                text=text,
                created_at=COLLECTION_START
                + timedelta(days=float(day_offsets[tweet_index])),
                place=place,
                in_reply_to=in_reply_to,
            )

    def _sample_tweet_organs(
        self, author: int, rng: np.random.Generator
    ) -> tuple[Organ, ...]:
        """Organs mentioned by one tweet, drawn from the author's attention."""
        attention = self.ground_truth.attentions[author].distribution
        if rng.random() >= self.config.activity.multi_organ_tweet_rate:
            # Single-mention fast path (~97% of tweets): inverse-CDF draw.
            cumulative = np.cumsum(attention)
            index = int(np.searchsorted(cumulative, rng.random() * cumulative[-1]))
            return (ORGANS[min(index, N_ORGANS - 1)],)
        n_mentions = 2 if rng.random() < 0.8 else 3
        n_mentions = min(n_mentions, int(np.count_nonzero(attention)))
        indices = rng.choice(
            N_ORGANS, size=n_mentions, replace=False, p=attention
        )
        return tuple(ORGANS[int(index)] for index in indices)

    def _maybe_place(self, author: int, rng: np.random.Generator) -> Place | None:
        """Attach a GPS place to ~1.4% of tweets, as on real Twitter."""
        if rng.random() >= self.config.text.geotag_rate:
            return None
        seed = self.ground_truth.seeds[author]
        if seed.is_us and seed.state is not None:
            cities = cities_in_state(seed.state)
            if cities:
                city = str(rng.choice(cities)).title()
            else:
                city = seed.state
            return Place(full_name=f"{city}, {seed.state}", country_code="US")
        return Place(full_name=seed.location or "Unknown", country_code="XX")
