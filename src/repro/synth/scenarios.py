"""Named, calibrated synthetic-world scenarios.

:func:`paper2016_scenario` is the reproduction workload: calibrated to
Table I of the paper and planted with the geographic anomalies its §IV
reports.  ``scale=1.0`` approximates the paper's full dataset (~72k located
US users, ~975k on-topic tweets); tests and default benchmarks run smaller
scales of the *same* distribution.
"""

from __future__ import annotations

from repro.organs import Organ
from repro.synth.config import (
    ActivityConfig,
    AttentionConfig,
    PopulationConfig,
    SynthConfig,
    TextConfig,
)

#: Users generated at scale=1.0.  With us_fraction 0.158, a 10% junk
#: location rate, and ~97% geocoder success on styled locations, this
#: yields ≈ 72k located US users and ≈ 975k on-topic tweets — Table I.
_FULL_SCALE_USERS = 521_000

_H, _K, _LI, _LU, _P, _I = (organ.index for organ in Organ)

#: Planted per-state anomalies.  The first block reproduces states the
#: paper names explicitly (§IV-B); the second block enriches the map so
#: Fig. 5 has the paper's "most states have at least one highlighted
#: organ" texture.  Kansas is deliberately the *only* Midwest state with a
#: kidney boost, reproducing the Cao et al. cross-check.
PAPER_STATE_BOOSTS: dict[str, dict[int, float]] = {
    # --- named in the paper ---
    "KS": {_K: 2.2},
    "LA": {_K: 1.9},
    "MA": {_K: 1.6, _LU: 1.9},
    "DE": {_LI: 2.1},
    "RI": {_LI: 2.1},
    "CO": {_LI: 2.0},
    "OR": {_LU: 2.0},
    "GA": {_LU: 1.9},
    "VA": {_LU: 1.9},
    "ND": {_LI: 2.1, _K: 0.85},
    "WI": {_LU: 1.7, _K: 0.85},
    # --- synthetic enrichment (plausible texture, not paper claims) ---
    "NY": {_K: 1.35},
    "TN": {_K: 1.45},
    "AL": {_K: 1.5},
    "FL": {_H: 1.25},
    "CA": {_H: 1.2},
    "TX": {_LI: 1.4},
    "AZ": {_LI: 1.5},
    "NC": {_LI: 1.45},
    "WA": {_LU: 1.5},
    "PA": {_P: 1.8},
    # --- Midwest (except Kansas): mild kidney damping, reflecting the
    # Cao et al. 2016 geography the paper cites (the region trails in
    # deceased kidney donation, Kansas being the lone surplus state);
    # this keeps the Kansas anomaly regionally unique under sampling
    # noise.  Other organs keep their enrichment boosts ---
    "IL": {_K: 0.85},
    "IN": {_K: 0.85},
    "IA": {_K: 0.85},
    "SD": {_K: 0.85},
    "MI": {_K: 0.85, _LU: 1.4},
    "MN": {_K: 0.85, _H: 1.3},
    "MO": {_K: 0.85, _H: 1.35},
    "NE": {_K: 0.85, _LI: 1.7},
    "OH": {_K: 0.85, _P: 1.7},
}


def paper2016_scenario(scale: float = 0.01, seed: int = 0) -> SynthConfig:
    """The calibrated reproduction scenario.

    Args:
        scale: dataset size relative to the paper (1.0 ≈ Table I volumes).
        seed: world RNG seed.
    """
    if scale <= 0:
        raise ValueError(f"scale must be > 0, got {scale}")
    n_users = max(50, int(round(_FULL_SCALE_USERS * scale)))
    return SynthConfig(
        population=PopulationConfig(
            n_users=n_users,
            us_fraction=0.158,
            junk_location_rate=0.10,
            midwest_bias=0.80,
        ),
        attention=AttentionConfig(state_boosts=dict(PAPER_STATE_BOOSTS)),
        activity=ActivityConfig(),
        text=TextConfig(),
        seed=seed,
    )


def null_uniform_scenario(n_users: int = 5000, seed: int = 0) -> SynthConfig:
    """A null world: uniform organ prior, no geographic anomalies.

    Used by ablations to measure false-positive rates — with nothing
    planted, relative-risk detection should highlight (almost) nothing.
    """
    uniform = (1 / 6,) * 6
    return SynthConfig(
        population=PopulationConfig(n_users=n_users),
        attention=AttentionConfig(national_prior=uniform, state_boosts={}),
        activity=ActivityConfig(),
        text=TextConfig(),
        seed=seed,
    )
