"""Generative model of the organ-donation twittersphere.

The paper's raw material — 975k keyword-matched tweets from Apr 2015 to May
2016 — is not publicly available and the open Streaming API no longer
exists.  This package substitutes a calibrated generative model:

* a synthetic population of US and foreign users with realistic profile
  locations (:mod:`repro.synth.population`),
* per-user ground-truth organ attention with planted real-world structure
  — national popularity order, directed co-attention, and per-state
  anomalies such as the Kansas kidney excess (:mod:`repro.synth.attention`),
* a heavy-tailed tweet activity model (:mod:`repro.synth.activity`),
* template-based tweet text that carries the Context × Subject vocabulary
  (:mod:`repro.synth.text`), and
* :class:`repro.synth.world.SyntheticWorld`, which assembles them into a
  firehose of :class:`repro.twitter.models.Tweet` records and exposes the
  planted ground truth so experiments can verify recovery.

Calibration targets are Table I of the paper; named configurations live in
:mod:`repro.synth.scenarios`.
"""

from repro.synth.config import (
    ActivityConfig,
    AttentionConfig,
    PopulationConfig,
    SynthConfig,
    TextConfig,
)
from repro.synth.scenarios import null_uniform_scenario, paper2016_scenario
from repro.synth.world import GroundTruth, SyntheticWorld

__all__ = [
    "ActivityConfig",
    "AttentionConfig",
    "GroundTruth",
    "PopulationConfig",
    "SynthConfig",
    "SyntheticWorld",
    "TextConfig",
    "null_uniform_scenario",
    "paper2016_scenario",
]
