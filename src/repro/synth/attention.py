"""Ground-truth organ attention.

Each user carries a latent attention distribution over the six organs —
the quantity the paper *estimates* from tweets via the Û matrix.  Planting
it explicitly lets every experiment be scored against known truth:

* the focal organ follows a national popularity prior (heart first) with
  per-state multiplicative boosts (the geographic anomalies of Fig. 5);
* the mass a user spreads to non-focal organs follows a directed
  co-attention matrix encoding the paper's Fig. 3 reading (kidney is the
  top co-mention for heart/liver/pancreas users; heart for the others —
  deliberately non-reciprocal);
* archetypes control concentration: single-focus patients/advocates,
  dual-focus users (weighted toward the common dual transplants), and
  broad advocates who mention everything.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.organs import N_ORGANS, ORGANS, Organ
from repro.synth.config import AttentionConfig


class Archetype(enum.Enum):
    """Latent user role, controlling attention concentration."""

    SINGLE_FOCUS = "single"
    DUAL_FOCUS = "dual"
    BROAD = "broad"


#: Directed co-attention: row = focal organ, column = share of the user's
#: *non-focal* attention going to each other organ.  Diagonal is zero; rows
#: sum to 1.  Encodes the paper's Fig. 3 claims.
CO_ATTENTION: np.ndarray = np.array(
    [
        # heart   kidney  liver   lung    pancr.  intest.
        [0.00, 0.45, 0.25, 0.18, 0.08, 0.04],  # heart   -> kidney first
        [0.42, 0.00, 0.28, 0.15, 0.11, 0.04],  # kidney  -> heart first
        [0.27, 0.45, 0.00, 0.16, 0.08, 0.04],  # liver   -> kidney first
        [0.45, 0.27, 0.16, 0.00, 0.08, 0.04],  # lung    -> heart first
        [0.22, 0.48, 0.18, 0.08, 0.00, 0.04],  # pancreas-> kidney first
        [0.40, 0.25, 0.20, 0.10, 0.05, 0.00],  # intestine->heart first
    ]
)

#: Secondary-organ preference for dual-focus users, biased toward the
#: common dual transplants (heart–kidney, liver–kidney, kidney–pancreas).
DUAL_PARTNER = CO_ATTENTION  # same directed structure


@dataclass(frozen=True, slots=True)
class UserAttention:
    """Ground-truth attention of one user.

    Attributes:
        archetype: latent role.
        focal: most-attended organ.
        secondary: second organ for dual-focus users, else ``None``.
        distribution: attention vector over organs, sums to 1.
    """

    archetype: Archetype
    focal: Organ
    secondary: Organ | None
    distribution: np.ndarray


class AttentionModel:
    """Samples ground-truth attention vectors.

    Args:
        config: attention configuration (priors, boosts, archetype mix).
        rng: generator all sampling flows through.
    """

    def __init__(self, config: AttentionConfig, rng: np.random.Generator):
        self._config = config
        self._rng = rng
        self._state_priors: dict[str | None, np.ndarray] = {}

    def focal_prior(self, state: str | None) -> np.ndarray:
        """Focal-organ distribution for a state (boosted, renormalized)."""
        cached = self._state_priors.get(state)
        if cached is not None:
            return cached
        prior = np.array(self._config.national_prior, dtype=float)
        boosts = self._config.state_boosts.get(state or "", {})
        for organ_index, multiplier in boosts.items():
            prior[organ_index] *= multiplier
        prior = prior / prior.sum()
        self._state_priors[state] = prior
        return prior

    def sample(self, state: str | None) -> UserAttention:
        """Sample one user's ground-truth attention."""
        config = self._config
        roll = self._rng.random()
        prior = self.focal_prior(state)
        focal_index = int(self._rng.choice(N_ORGANS, p=prior))

        if roll < config.archetype_probs[0]:
            archetype = Archetype.SINGLE_FOCUS
            secondary_index = None
            base = (
                config.focal_weight * _one_hot(focal_index)
                + (1.0 - config.focal_weight) * CO_ATTENTION[focal_index]
            )
        elif roll < config.archetype_probs[0] + config.archetype_probs[1]:
            archetype = Archetype.DUAL_FOCUS
            secondary_index = int(
                self._rng.choice(N_ORGANS, p=DUAL_PARTNER[focal_index])
            )
            primary_weight = 1.0 - config.dual_secondary_weight
            base = primary_weight * _one_hot(focal_index)
            base = base + config.dual_secondary_weight * _one_hot(secondary_index)
            # A sliver of background attention so dual users occasionally
            # mention a third organ.
            base = 0.96 * base + 0.04 * CO_ATTENTION[focal_index]
        else:
            archetype = Archetype.BROAD
            secondary_index = None
            # Broad advocates track the national conversation with a mild
            # tilt toward their own focal organ.
            national = np.array(config.national_prior)
            base = 0.75 * national + 0.25 * _one_hot(focal_index)

        distribution = self._rng.dirichlet(base * config.dirichlet_concentration)
        # Dirichlet noise can displace the intended focal organ; restore it
        # so the planted ground truth stays exact for single/dual users.
        if archetype is not Archetype.BROAD:
            top = int(np.argmax(distribution))
            if top != focal_index:
                distribution[[top, focal_index]] = distribution[[focal_index, top]]
        return UserAttention(
            archetype=archetype,
            focal=ORGANS[focal_index],
            secondary=None if secondary_index is None else ORGANS[secondary_index],
            distribution=distribution,
        )


def _one_hot(index: int) -> np.ndarray:
    vec = np.zeros(N_ORGANS)
    vec[index] = 1.0
    return vec
