"""Pipeline composition with provenance accounting.

Runs collect → augment → US-filter over a tweet source and produces a
:class:`repro.dataset.corpus.TweetCorpus`, recording how many tweets each
stage dropped and why — the numbers behind Table I's footnote ("134,986 out
of 975,021 tweets could be identified as from USA users").

The per-tweet stage logic lives in :func:`process_matched`; the batched
hot path in :mod:`repro.pipeline.batch` runs the same funnel chunk-wise,
and both the serial loop here and the sharded workers in
:mod:`repro.pipeline.parallel` drive that one engine, so every execution
mode runs exactly the same code path.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field, fields

from repro import obs
from repro.config import CollectionConfig, ResiliencePolicy
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.errors import ConfigError, PipelineError
from repro.geo.geocoder import Geocoder
from repro.nlp.matcher import OrganMatcher
from repro.nlp.keywords import build_query_set, track_phrases
from repro.pipeline.augment import augment_location
from repro.pipeline.usfilter import is_us_located
from repro.twitter.stream import TrackFilter
from repro.twitter.faults import FaultPlan, FaultySource
from repro.twitter.models import Tweet
from repro.faults.compute import WorkerFaultPlan
from repro.supervise import RunHealth, SupervisorPolicy
from repro.twitter.resilient import (
    ReliabilityReport,
    ResilientStream,
    ensure_compatible,
)


@dataclass(slots=True)
class PipelineReport:
    """Provenance counters for one pipeline run.

    Attributes:
        stream_dropped: tweets the keyword filter rejected (off-topic).
        collected: keyword-matched tweets ("tweets collected" worldwide).
        located_gps: collected tweets located via geo-tag.
        located_profile: collected tweets located via profile geocoding.
        unresolved: collected tweets with no resolvable location.
        non_us: collected tweets resolved outside the USA (or to the USA
            without a state).
        us_located: collected tweets resolved to a US state — the paper's
            "identified as from USA users" population, regardless of
            whether an organ mention was extractable afterwards.
        no_mentions: US-located tweets where no organ mention could be
            extracted (keyword matched inside a URL or mention handle).
        retained: tweets surviving the US filter — the analysis dataset.
        reliability: transport-level counters when the run was resilient
            (chaos mode); ``None`` for a plain run.
        compute: supervised-pool counters when the run fanned out through
            :func:`repro.supervise.run_supervised`; ``None`` for an
            in-process run.
    """

    stream_dropped: int = 0
    collected: int = 0
    located_gps: int = 0
    located_profile: int = 0
    unresolved: int = 0
    non_us: int = 0
    us_located: int = 0
    no_mentions: int = 0
    retained: int = 0
    reliability: ReliabilityReport | None = None
    compute: RunHealth | None = None

    @property
    def us_yield(self) -> float:
        """Fraction of collected tweets attributable to US users.

        The paper's 134,986 / 975,021 footnote counts every tweet located
        to a US state, including ones later dropped because no organ
        mention survived extraction; retention is reported separately.
        """
        return self.us_located / self.collected if self.collected else 0.0

    @property
    def retention(self) -> float:
        """Fraction of collected tweets that reached the analysis set."""
        return self.retained / self.collected if self.collected else 0.0

    def merge(self, other: "PipelineReport") -> "PipelineReport":
        """Combine two shard reports into one (counters sum).

        Reliability counters are transport-level and belong to the single
        resilient consumer, and compute counters belong to the single
        supervising parent, so at most one side may carry each.

        Raises:
            PipelineError: if both reports carry a reliability or a
                compute report.
        """
        if self.reliability is not None and other.reliability is not None:
            raise PipelineError(
                "cannot merge two reports that both carry reliability data"
            )
        if self.compute is not None and other.compute is not None:
            raise PipelineError(
                "cannot merge two reports that both carry compute health"
            )
        merged = PipelineReport(
            reliability=self.reliability or other.reliability,
            compute=self.compute or other.compute,
        )
        for spec in fields(PipelineReport):
            if spec.name in ("reliability", "compute"):
                continue
            setattr(
                merged,
                spec.name,
                getattr(self, spec.name) + getattr(other, spec.name),
            )
        return merged

    def as_rows(self) -> list[tuple[str, str]]:
        rows = [
            ("Rejected by keyword filter", f"{self.stream_dropped:,}"),
            ("Collected (keyword-matched)", f"{self.collected:,}"),
            ("Located via GPS geo-tag", f"{self.located_gps:,}"),
            ("Located via profile geocoding", f"{self.located_profile:,}"),
            ("Unresolvable location", f"{self.unresolved:,}"),
            ("Resolved outside US states", f"{self.non_us:,}"),
            ("Located in a US state", f"{self.us_located:,}"),
            ("No extractable organ mention", f"{self.no_mentions:,}"),
            ("Retained (US analysis set)", f"{self.retained:,}"),
            ("US yield", f"{self.us_yield:.1%}"),
            ("Retention", f"{self.retention:.1%}"),
        ]
        if self.reliability is not None:
            rows.extend(self.reliability.as_rows())
        if self.compute is not None:
            rows.extend(self.compute.as_rows())
        return rows

    def to_dict(self) -> dict[str, object]:
        """Round-trippable form, including any attached health reports."""
        data: dict[str, object] = {
            spec.name: getattr(self, spec.name)
            for spec in fields(PipelineReport)
            if spec.name not in ("reliability", "compute")
        }
        data["reliability"] = (
            self.reliability.to_dict() if self.reliability is not None else None
        )
        data["compute"] = (
            self.compute.to_dict() if self.compute is not None else None
        )
        return data

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "PipelineReport":
        report = cls()
        for spec in fields(cls):
            if spec.name in ("reliability", "compute"):
                continue
            setattr(report, spec.name, int(data[spec.name]))  # type: ignore[call-overload]
        if data.get("reliability") is not None:
            report.reliability = ReliabilityReport.from_dict(
                data["reliability"]  # type: ignore[arg-type]
            )
        if data.get("compute") is not None:
            report.compute = RunHealth.from_dict(
                data["compute"]  # type: ignore[arg-type]
            )
        return report


def emit_funnel_metrics(
    report: PipelineReport, telemetry: "obs.Telemetry"
) -> None:
    """Mirror a finished report's funnel counters into telemetry.

    Emitted once per run from the authoritative :class:`PipelineReport`
    rather than incremented per tweet: zero hot-path cost, and the
    metric lines can never disagree with the report they describe.
    """
    telemetry.inc(
        "pipeline.tweets_seen", report.stream_dropped + report.collected
    )
    telemetry.inc("pipeline.collected", report.collected)
    telemetry.inc("pipeline.dropped", report.stream_dropped, stage="keyword")
    telemetry.inc("pipeline.dropped", report.unresolved, stage="unresolved")
    telemetry.inc("pipeline.dropped", report.non_us, stage="non_us")
    telemetry.inc(
        "pipeline.dropped", report.no_mentions, stage="no_mentions"
    )
    telemetry.inc("pipeline.located", report.located_gps, source="gps")
    telemetry.inc(
        "pipeline.located", report.located_profile, source="profile"
    )
    telemetry.inc("pipeline.retained", report.retained)


def process_matched(
    tweet: Tweet,
    geocoder: Geocoder,
    matcher: OrganMatcher,
    config: CollectionConfig,
    report: PipelineReport,
) -> CollectedTweet | None:
    """Augment → US-filter → mention-extraction for one collected tweet.

    Updates ``report`` counters in place and returns the surviving record,
    or ``None`` when the tweet was dropped.  ``report.collected`` is the
    caller's responsibility (the keyword filter runs upstream).
    """
    match = augment_location(tweet, geocoder, config)
    if not match.resolved:
        report.unresolved += 1
        return None
    if match.source == "gps":
        report.located_gps += 1
    else:
        report.located_profile += 1
    if not is_us_located(match, config):
        report.non_us += 1
        return None
    report.us_located += 1
    mentions = matcher.mentions(tweet.text)
    if not mentions:
        report.no_mentions += 1
        return None
    report.retained += 1
    return CollectedTweet(tweet=tweet, location=match, mentions=dict(mentions))


@dataclass(slots=True)
class CollectionPipeline:
    """The three-step pipeline of §III-A as a reusable object.

    Attributes:
        config: collection configuration.
        geocoder: shared geocoder instance.
        matcher: shared organ-mention matcher.
        resilience: reconnect/dedup policy used when a run injects faults.
    """

    config: CollectionConfig = field(default_factory=CollectionConfig)
    geocoder: Geocoder = field(default_factory=Geocoder)
    matcher: OrganMatcher = field(default_factory=OrganMatcher)
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)

    def run(
        self,
        source: Iterable[Tweet],
        fault_plan: FaultPlan | None = None,
        workers: int = 1,
        supervisor: SupervisorPolicy | None = None,
        worker_faults: WorkerFaultPlan | None = None,
    ) -> tuple[TweetCorpus, PipelineReport]:
        """Run the full pipeline over a tweet source.

        Args:
            source: tweet iterable (firehose).
            fault_plan: when given, the source is wrapped in a
                :class:`FaultySource` injecting that plan's faults and
                consumed through a :class:`ResilientStream`; the chaos
                run retains exactly the records of a fault-free run and
                ``report.reliability`` documents what it survived.
            workers: processes to shard the collect→augment→US-filter
                loop across.  ``1`` (default) runs serially in-process;
                any value produces a byte-identical corpus and identical
                counters (see :mod:`repro.pipeline.parallel`).  Fault
                recovery is transport-level and always runs in the parent
                before sharding.
            supervisor: retry/deadline policy for the supervised pool;
                forces the sharded path even at ``workers=1``.
            worker_faults: compute-fault plan injected into the workers
                (chaos testing); forces the sharded path even at
                ``workers=1``.  ``report.compute`` documents what the
                pool survived.

        Raises:
            PipelineError: if no tweet survives (nothing to analyze).
            repro.errors.ConfigError: if ``fault_plan`` is incompatible
                with this pipeline's resilience policy, ``worker_faults``
                is not absorbable by ``supervisor``, or ``workers`` is
                not a positive integer.
        """
        if workers < 1:
            raise ConfigError(f"workers must be >= 1, got {workers}")
        telemetry = obs.current()
        resilient: ResilientStream | None = None
        if fault_plan is not None:
            ensure_compatible(self.resilience, fault_plan)
            resilient = ResilientStream(
                FaultySource(source, fault_plan), self.resilience
            )
            source = resilient
        if workers > 1 or supervisor is not None or worker_faults is not None:
            from repro.pipeline.parallel import run_sharded

            with telemetry.span(
                "pipeline.sharded", workers=workers, chaos=resilient is not None
            ):
                records, report = run_sharded(
                    source,
                    self.config,
                    workers,
                    policy=supervisor,
                    worker_faults=worker_faults,
                )
        else:
            with telemetry.span(
                "pipeline.serial", chaos=resilient is not None
            ):
                records, report = self._run_serial(source)
        if resilient is not None:
            report.reliability = resilient.report
        emit_funnel_metrics(report, telemetry)
        if not records:
            raise PipelineError("pipeline retained zero tweets")
        return TweetCorpus(records), report

    def _run_serial(
        self, source: Iterable[Tweet]
    ) -> tuple[list[CollectedTweet], PipelineReport]:
        from repro.pipeline.batch import process_stream

        report = PipelineReport()
        track = TrackFilter(
            track_phrases(
                build_query_set(
                    self.config.context_terms, self.config.subject_terms
                )
            )
        )
        tagged = process_stream(
            enumerate(source),
            self.config,
            track,
            self.geocoder,
            self.matcher,
            report,
        )
        # Positions from enumerate() are already ascending — no sort.
        return [record for __, record in tagged], report
