"""Pipeline composition with provenance accounting.

Runs collect → augment → US-filter over a tweet source and produces a
:class:`repro.dataset.corpus.TweetCorpus`, recording how many tweets each
stage dropped and why — the numbers behind Table I's footnote ("134,986 out
of 975,021 tweets could be identified as from USA users").
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.config import CollectionConfig, ResiliencePolicy
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.errors import PipelineError
from repro.geo.geocoder import Geocoder
from repro.nlp.matcher import OrganMatcher
from repro.pipeline.augment import augment_location
from repro.pipeline.collect import collect
from repro.pipeline.usfilter import is_us_located
from repro.twitter.faults import FaultPlan, FaultySource
from repro.twitter.models import Tweet
from repro.twitter.resilient import (
    ReliabilityReport,
    ResilientStream,
    ensure_compatible,
)


@dataclass(slots=True)
class PipelineReport:
    """Provenance counters for one pipeline run.

    Attributes:
        stream_dropped: tweets the keyword filter rejected (off-topic).
        collected: keyword-matched tweets ("tweets collected" worldwide).
        located_gps: collected tweets located via geo-tag.
        located_profile: collected tweets located via profile geocoding.
        unresolved: collected tweets with no resolvable location.
        non_us: collected tweets resolved outside the USA (or to the USA
            without a state).
        no_mentions: US-located tweets where no organ mention could be
            extracted (keyword matched inside a URL or mention handle).
        retained: tweets surviving the US filter — the analysis dataset.
        reliability: transport-level counters when the run was resilient
            (chaos mode); ``None`` for a plain run.
    """

    stream_dropped: int = 0
    collected: int = 0
    located_gps: int = 0
    located_profile: int = 0
    unresolved: int = 0
    non_us: int = 0
    no_mentions: int = 0
    retained: int = 0
    reliability: ReliabilityReport | None = None

    @property
    def us_yield(self) -> float:
        """Fraction of collected tweets attributable to US users."""
        return self.retained / self.collected if self.collected else 0.0

    def as_rows(self) -> list[tuple[str, str]]:
        rows = [
            ("Rejected by keyword filter", f"{self.stream_dropped:,}"),
            ("Collected (keyword-matched)", f"{self.collected:,}"),
            ("Located via GPS geo-tag", f"{self.located_gps:,}"),
            ("Located via profile geocoding", f"{self.located_profile:,}"),
            ("Unresolvable location", f"{self.unresolved:,}"),
            ("Resolved outside US states", f"{self.non_us:,}"),
            ("No extractable organ mention", f"{self.no_mentions:,}"),
            ("Retained (US analysis set)", f"{self.retained:,}"),
            ("US yield", f"{self.us_yield:.1%}"),
        ]
        if self.reliability is not None:
            rows.extend(self.reliability.as_rows())
        return rows


@dataclass(slots=True)
class CollectionPipeline:
    """The three-step pipeline of §III-A as a reusable object.

    Attributes:
        config: collection configuration.
        geocoder: shared geocoder instance.
        matcher: shared organ-mention matcher.
        resilience: reconnect/dedup policy used when a run injects faults.
    """

    config: CollectionConfig = field(default_factory=CollectionConfig)
    geocoder: Geocoder = field(default_factory=Geocoder)
    matcher: OrganMatcher = field(default_factory=OrganMatcher)
    resilience: ResiliencePolicy = field(default_factory=ResiliencePolicy)

    def run(
        self,
        source: Iterable[Tweet],
        fault_plan: FaultPlan | None = None,
    ) -> tuple[TweetCorpus, PipelineReport]:
        """Run the full pipeline over a tweet source.

        Args:
            source: tweet iterable (firehose).
            fault_plan: when given, the source is wrapped in a
                :class:`FaultySource` injecting that plan's faults and
                consumed through a :class:`ResilientStream`; the chaos
                run retains exactly the records of a fault-free run and
                ``report.reliability`` documents what it survived.

        Raises:
            PipelineError: if no tweet survives (nothing to analyze).
            repro.errors.ConfigError: if ``fault_plan`` is incompatible
                with this pipeline's resilience policy.
        """
        report = PipelineReport()
        resilient: ResilientStream | None = None
        if fault_plan is not None:
            ensure_compatible(self.resilience, fault_plan)
            resilient = ResilientStream(
                FaultySource(source, fault_plan), self.resilience
            )
            source = resilient
        records: list[CollectedTweet] = []
        stream = collect(source, self.config)
        for tweet in stream:
            report.collected += 1
            match = augment_location(tweet, self.geocoder, self.config)
            if not match.resolved:
                report.unresolved += 1
                continue
            if match.source == "gps":
                report.located_gps += 1
            else:
                report.located_profile += 1
            if not is_us_located(match, self.config):
                report.non_us += 1
                continue
            mentions = self.matcher.mentions(tweet.text)
            if not mentions:
                report.no_mentions += 1
                continue
            records.append(
                CollectedTweet(
                    tweet=tweet, location=match, mentions=dict(mentions)
                )
            )
            report.retained += 1
        report.stream_dropped = stream.dropped
        if resilient is not None:
            report.reliability = resilient.report
        if not records:
            raise PipelineError("pipeline retained zero tweets")
        return TweetCorpus(records), report
