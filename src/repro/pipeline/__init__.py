"""The paper's three-step collection pipeline (§III-A).

1. **Collect** — filter a tweet stream with the Context × Subject keyword
   set Q (:mod:`repro.pipeline.collect`).
2. **Augment** — attach a location to every tweet, preferring the GPS
   geo-tag and falling back to geocoding the profile location string
   (:mod:`repro.pipeline.augment`).
3. **Filter** — retain only tweets from users located in the USA
   (:mod:`repro.pipeline.usfilter`).

:class:`repro.pipeline.runner.CollectionPipeline` composes the three steps
and keeps provenance counters for every drop reason.
"""

from repro.pipeline.augment import augment_location
from repro.pipeline.collect import collect
from repro.pipeline.parallel import process_shard, run_sharded, shard_by_id
from repro.pipeline.runner import CollectionPipeline, PipelineReport
from repro.pipeline.usfilter import is_us_located

__all__ = [
    "CollectionPipeline",
    "PipelineReport",
    "augment_location",
    "collect",
    "is_us_located",
    "process_shard",
    "run_sharded",
    "shard_by_id",
]
