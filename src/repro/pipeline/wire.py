"""Slim IPC wire format for sharded pipeline results.

The supervised pool originally shipped each shard's results back to the
parent as one pickled Python object graph: a list of
:class:`~repro.dataset.records.CollectedTweet` records, each holding a
:class:`~repro.twitter.models.Tweet`, a user, and a mention dict — tens
of objects per record for the pickler to walk, memoize, and rebuild.
This module replaces that with a framed byte format the worker encodes
once and the parent decodes once:

* the bulk payload — the surviving records — travels as **raw JSON
  lines**, the same stable dict form the on-disk corpus uses
  (:meth:`CollectedTweet.to_dict`), so the wire format is versionable
  and independent of pickle's per-interpreter details;
* the shard's :class:`~repro.pipeline.runner.PipelineReport` rides in
  the frame header (it is a flat counter dict);
* the optional telemetry snapshot — small, deeply structured, and
  parent-internal — stays pickled in a length-prefixed binary tail.

Frame layout (``encode_shard_result``)::

    {"v": 1, "records": N, "report": {...}, "snapshot": M}\\n
    [position, {collected tweet dict}]\\n     × N
    <M bytes of pickled TelemetrySnapshot>    (M == 0 when untraced)

Input direction: under the ``fork`` start method workers inherit the
parent's shard lists for free (copy-on-write), so the dispatch payload
shrinks to a bare shard *index* (see
:func:`repro.pipeline.parallel.run_sharded`) and nothing tweet-shaped is
ever pickled in either direction.

Decoding rebuilds records through :meth:`CollectedTweet.from_dict`, the
same validated path the durable corpus reader uses, so a corrupt frame
surfaces as a :class:`~repro.errors.SerializationError`, never as a
silently wrong record.
"""

from __future__ import annotations

import json
import pickle
from typing import TYPE_CHECKING

from repro.dataset.records import CollectedTweet
from repro.errors import SerializationError
from repro.pipeline.runner import PipelineReport

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.telemetry import TelemetrySnapshot

#: Wire format version; bump on any frame-layout change.
WIRE_VERSION = 1

_SEPARATORS = (",", ":")


def encode_records(records: list[tuple[int, CollectedTweet]]) -> bytes:
    """Encode position-tagged records as compact JSON lines."""
    lines = [
        json.dumps([position, record.to_dict()], separators=_SEPARATORS)
        for position, record in records
    ]
    if not lines:
        return b""
    return ("\n".join(lines) + "\n").encode("utf-8")


def decode_records(data: bytes) -> list[tuple[int, CollectedTweet]]:
    """Decode :func:`encode_records` output back into records.

    Raises:
        SerializationError: on malformed JSON or a malformed record.
    """
    records: list[tuple[int, CollectedTweet]] = []
    for line in data.splitlines():
        if not line:
            continue
        try:
            position, payload = json.loads(line)
        except (json.JSONDecodeError, ValueError) as exc:
            raise SerializationError(f"malformed record line: {exc}") from exc
        records.append((int(position), CollectedTweet.from_dict(payload)))
    return records


def encode_shard_result(
    records: list[tuple[int, CollectedTweet]],
    report: PipelineReport,
    snapshot: "TelemetrySnapshot | None",
) -> bytes:
    """Frame one shard's full result for the supervisor's result pipe."""
    snapshot_blob = (
        pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        if snapshot is not None
        else b""
    )
    header = json.dumps(
        {
            "v": WIRE_VERSION,
            "records": len(records),
            "report": report.to_dict(),
            "snapshot": len(snapshot_blob),
        },
        separators=_SEPARATORS,
    ).encode("utf-8")
    return b"".join(
        (header, b"\n", encode_records(records), snapshot_blob)
    )


def decode_shard_result(
    data: bytes,
) -> tuple[
    list[tuple[int, CollectedTweet]],
    PipelineReport,
    "TelemetrySnapshot | None",
]:
    """Decode one shard-result frame.

    Raises:
        SerializationError: on a truncated, corrupt, or wrong-version
            frame.
    """
    try:
        end = data.index(b"\n")
    except ValueError as exc:
        raise SerializationError("shard frame has no header line") from exc
    try:
        header = json.loads(data[:end])
    except json.JSONDecodeError as exc:
        raise SerializationError(f"malformed shard header: {exc}") from exc
    if header.get("v") != WIRE_VERSION:
        raise SerializationError(
            f"shard frame version {header.get('v')!r}, expected {WIRE_VERSION}"
        )
    offset = end + 1
    records: list[tuple[int, CollectedTweet]] = []
    for __ in range(int(header["records"])):
        try:
            end = data.index(b"\n", offset)
        except ValueError as exc:
            raise SerializationError(
                "shard frame truncated mid-records"
            ) from exc
        try:
            position, payload = json.loads(data[offset:end])
        except (json.JSONDecodeError, ValueError) as exc:
            raise SerializationError(f"malformed record line: {exc}") from exc
        records.append((int(position), CollectedTweet.from_dict(payload)))
        offset = end + 1
    snapshot_size = int(header["snapshot"])
    tail = data[offset:]
    if len(tail) != snapshot_size:
        raise SerializationError(
            f"shard frame tail is {len(tail)} bytes, header promised "
            f"{snapshot_size}"
        )
    report = PipelineReport.from_dict(header["report"])
    snapshot = pickle.loads(tail) if snapshot_size else None
    return records, report, snapshot
