"""Step 2: location augmentation.

Attaches a :class:`repro.geo.geocoder.GeoMatch` to each tweet.  Following
the paper, the GPS geo-tag is preferred when present (more precise, ~1.4%
coverage); otherwise the free-text profile location is geocoded — the
abundant-but-noisy source the paper resolves with OpenStreetMap.
"""

from __future__ import annotations

from repro.config import CollectionConfig
from repro.geo.geocoder import GeoMatch, Geocoder
from repro.twitter.models import Place, Tweet


def augment_location(
    tweet: Tweet, geocoder: Geocoder, config: CollectionConfig
) -> GeoMatch:
    """Resolve the best-available location for one tweet."""
    if config.prefer_geotag and tweet.place is not None:
        match = _from_place(tweet.place, geocoder)
        if match.resolved:
            return match
    return geocoder.geocode(tweet.user.location)


def _from_place(place: Place, geocoder: Geocoder) -> GeoMatch:
    """Resolve the geo-tag place; GPS matches carry top confidence."""
    if place.country_code != "US":
        return GeoMatch(
            country=place.country_code, state=None, confidence=1.0, source="gps"
        )
    named = geocoder.geocode(place.full_name)
    if named.is_us_state:
        return GeoMatch(
            country="US", state=named.state, confidence=1.0, source="gps"
        )
    # US geo-tag without a resolvable state (e.g. "USA" point place).
    return GeoMatch(country="US", state=None, confidence=0.9, source="gps")
