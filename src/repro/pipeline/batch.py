"""Batched hot-path execution of the collect → geocode → match funnel.

The per-tweet cost of the original loops was dominated by Python-level
overhead, not by the work itself: generator machinery per tweet, a
method lookup per stage call, and an attribute store per counter
increment.  This module is the single shared inner engine both the
serial runner and the sharded workers drive (preserving the invariant
that both paths run *exactly* the same code):

* tweets are consumed in chunks of :data:`BATCH_SIZE`, so stream
  overhead is paid per batch rather than per tweet;
* the stage callables (track match, geocode, mention extraction) are
  hoisted into locals once per batch; and
* provenance counters accumulate in local integers and flush into the
  shared :class:`~repro.pipeline.runner.PipelineReport` once per batch —
  the merged totals are identical because every counter is a plain sum.

Byte-identity with the unbatched formulation is the oracle: the
parallel/chaos equivalence property suites compare corpora produced
through this engine at every worker count.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import islice
from typing import TYPE_CHECKING

from repro.config import CollectionConfig
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import Geocoder
from repro.nlp.matcher import OrganMatcher
from repro.pipeline.augment import augment_location
from repro.twitter.models import Tweet
from repro.twitter.stream import TrackFilter

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.pipeline.runner import PipelineReport

#: Tweets processed per batch.  Large enough to amortize per-batch
#: setup to noise, small enough that a batch of position-tagged records
#: stays cache-friendly.
BATCH_SIZE = 2048


def iter_batches(
    source: Iterable[tuple[int, Tweet]], size: int = BATCH_SIZE
) -> Iterator[list[tuple[int, Tweet]]]:
    """Chunk a position-tagged tweet stream into lists of ``size``."""
    iterator = iter(source)
    while True:
        batch = list(islice(iterator, size))
        if not batch:
            return
        yield batch


def process_batch(
    batch: list[tuple[int, Tweet]],
    config: CollectionConfig,
    track: TrackFilter,
    geocoder: Geocoder,
    matcher: OrganMatcher,
    report: "PipelineReport",
) -> list[tuple[int, CollectedTweet]]:
    """Run the full funnel over one batch; flush counters once at the end.

    Semantics are exactly the keyword filter followed by
    :func:`repro.pipeline.runner.process_matched` per tweet; the body is
    a tight loop over hoisted locals with the counters accumulated in
    integers and added to ``report`` in one flush.
    """
    track_matches = track.matches
    geocode_tweet = augment_location
    extract_mentions = matcher.mentions
    min_confidence = config.min_confidence
    out: list[tuple[int, CollectedTweet]] = []
    append = out.append
    stream_dropped = 0
    collected = 0
    located_gps = 0
    located_profile = 0
    unresolved = 0
    non_us = 0
    us_located = 0
    no_mentions = 0
    retained = 0
    for position, tweet in batch:
        text = tweet.text
        if not track_matches(text):
            stream_dropped += 1
            continue
        collected += 1
        match = geocode_tweet(tweet, geocoder, config)
        if match.country is None:
            unresolved += 1
            continue
        if match.source == "gps":
            located_gps += 1
        else:
            located_profile += 1
        # is_us_located, inlined: a specific US state at sufficient
        # confidence (kept in lockstep by tests/pipeline/test_batch.py).
        if not (
            match.country == "US"
            and match.state is not None
            and match.confidence >= min_confidence
        ):
            non_us += 1
            continue
        us_located += 1
        mentions = extract_mentions(text)
        if not mentions:
            no_mentions += 1
            continue
        retained += 1
        append(
            (
                position,
                CollectedTweet(
                    tweet=tweet, location=match, mentions=dict(mentions)
                ),
            )
        )
    report.stream_dropped += stream_dropped
    report.collected += collected
    report.located_gps += located_gps
    report.located_profile += located_profile
    report.unresolved += unresolved
    report.non_us += non_us
    report.us_located += us_located
    report.no_mentions += no_mentions
    report.retained += retained
    return out


def process_stream(
    source: Iterable[tuple[int, Tweet]],
    config: CollectionConfig,
    track: TrackFilter,
    geocoder: Geocoder,
    matcher: OrganMatcher,
    report: "PipelineReport",
    batch_size: int = BATCH_SIZE,
) -> list[tuple[int, CollectedTweet]]:
    """Drive the batched engine over a whole position-tagged stream.

    ``batch_size`` only affects counter-flush granularity, never results
    — the lockstep suite runs pathological sizes to prove it.
    """
    records: list[tuple[int, CollectedTweet]] = []
    for batch in iter_batches(source, batch_size):
        records.extend(
            process_batch(batch, config, track, geocoder, matcher, report)
        )
    return records
