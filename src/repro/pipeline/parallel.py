"""Sharded parallel execution of the collection pipeline.

The collect → augment → US-filter loop is embarrassingly parallel: every
tweet is processed independently and the provenance counters are plain
sums.  This module shards a firehose across worker processes and merges
the results so that the outcome is *indistinguishable* from a serial run:

* **Deterministic sharding** — tweets are routed to shard
  ``tweet_id % workers``, so shard membership depends only on the data,
  never on timing or scheduler interleaving.
* **Per-worker state** — each worker builds its own
  :class:`~repro.geo.geocoder.Geocoder` and
  :class:`~repro.nlp.matcher.OrganMatcher`; nothing is shared, so there
  is no cross-process cache coherence to reason about.
* **Ordered merge** — each retained record carries its position in the
  original stream; the merged corpus is sorted by that position, making
  it byte-identical to the serial corpus.
* **Counter merge** — per-shard :class:`PipelineReport` objects are
  combined with :meth:`PipelineReport.merge`; every counter is a sum over
  disjoint shards, so totals equal the serial run exactly.
* **Slim IPC** — under the ``fork`` start method workers inherit the
  shard lists by copy-on-write and are dispatched a bare shard *index*;
  results come back as raw JSON-line frames
  (:mod:`repro.pipeline.wire`) via the supervisor's tagged-bytes path,
  so no tweet object graph is pickled in either direction.

*Transport*-level fault injection / resilient consumption happens in the
parent *before* sharding (a reconnecting stream is inherently a single
consumer); see :meth:`CollectionPipeline.run`.  *Compute*-level faults —
workers crashing, hanging, or erroring mid-shard — are absorbed by the
supervised pool (:mod:`repro.supervise`) this module fans out through:
failed shards are retried deterministically, and a shard that exhausts
its retries is quarantined, leaving a run that completes *degraded* with
the gap named in ``report.compute`` rather than aborting or hanging.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro import obs
from repro.config import CollectionConfig
from repro.dataset.records import CollectedTweet
from repro.errors import ConfigError
from repro.faults.compute import WorkerFaultPlan
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, track_phrases
from repro.nlp.matcher import OrganMatcher
from repro.pipeline.batch import process_stream
from repro.pipeline.runner import PipelineReport
from repro.pipeline.wire import decode_shard_result, encode_shard_result
from repro.procpool import pick_start_method
from repro.supervise import RawResult, SupervisorPolicy, run_supervised
from repro.twitter.models import Tweet
from repro.twitter.stream import TrackFilter

#: One shard is a list of (original stream position, tweet).
Shard = list[tuple[int, Tweet]]


def shard_by_id(source: Iterable[Tweet], workers: int) -> list[Shard]:
    """Partition a tweet stream into ``workers`` deterministic shards.

    Routing is round-robin on ``tweet_id % workers`` — stable across runs
    and machines — and each tweet keeps its position in the original
    stream so the merge can restore exact serial order.

    Raises:
        ConfigError: if ``workers`` is not a positive integer.
    """
    if workers < 1:
        raise ConfigError(f"workers must be >= 1, got {workers}")
    shards: list[Shard] = [[] for __ in range(workers)]
    for position, tweet in enumerate(source):
        shards[tweet.tweet_id % workers].append((position, tweet))
    return shards


def process_shard(
    shard: Shard, config: CollectionConfig
) -> tuple[list[tuple[int, CollectedTweet]], PipelineReport]:
    """Run collect → augment → US-filter over one shard.

    Executed inside a worker process: constructs its own geocoder and
    matcher, drives the shared batched engine
    (:func:`repro.pipeline.batch.process_stream`), and returns position-
    tagged surviving records plus the shard's provenance counters.
    """
    geocoder = Geocoder()
    matcher = OrganMatcher()
    track = TrackFilter(
        track_phrases(
            build_query_set(config.context_terms, config.subject_terms)
        )
    )
    report = PipelineReport()
    out = process_stream(shard, config, track, geocoder, matcher, report)
    return out, report


def _run_shard(
    index: int, shard: Shard, config: CollectionConfig, trace_enabled: bool
) -> tuple[
    list[tuple[int, CollectedTweet]],
    PipelineReport,
    "obs.TelemetrySnapshot | None",
]:
    """Process one shard inside a worker, with optional tracing.

    When the parent ran with tracing enabled, the worker builds its own
    telemetry buffer (the per-worker-buffer model: nothing shared while
    work is in flight), wraps the shard in a span, and freezes a
    snapshot for the parent to absorb in shard order.
    """
    if not trace_enabled:
        records, report = process_shard(shard, config)
        return records, report, None
    telemetry = obs.Telemetry(worker=f"shard-{index}")
    with obs.activate(telemetry):
        with telemetry.span("shard", index=index, tweets=len(shard)):
            records, report = process_shard(shard, config)
    telemetry.observe(
        "shard.wall_seconds", telemetry.tracer.spans[-1].duration, shard=index
    )
    telemetry.inc("shard.tweets_in", len(shard), shard=index)
    telemetry.inc("shard.records_out", len(records), shard=index)
    return records, report, telemetry.snapshot()


#: Parent-side stash the fork-inherited workers read their shards from;
#: set only while one ``run_sharded`` fan-out is dispatching.  Under the
#: ``fork`` start method every child inherits this by copy-on-write, so
#: the dispatch payload shrinks to a bare shard index and no tweet is
#: ever pickled toward a worker.
_FORK_STATE: tuple[list[Shard], CollectionConfig, bool] | None = None


def _shard_task_fork(index: int) -> RawResult:
    """Fork-mode worker entry point: look the shard up, return a frame.

    The result is wire-encoded in the worker
    (:func:`repro.pipeline.wire.encode_shard_result`) and shipped as a
    :class:`~repro.supervise.RawResult`, so the record graph crosses the
    result pipe as raw JSON lines, not pickle.
    """
    state = _FORK_STATE
    if state is None:  # pragma: no cover - dispatch bug guard
        raise RuntimeError("fork shard state is not set in this process")
    shards, config, trace_enabled = state
    return RawResult(
        encode_shard_result(
            *_run_shard(index, shards[index], config, trace_enabled)
        )
    )


def _shard_task(
    payload: tuple[int, Shard, CollectionConfig, bool],
) -> RawResult:
    """Spawn-compatible worker entry point carrying the shard itself."""
    index, shard, config, trace_enabled = payload
    return RawResult(
        encode_shard_result(*_run_shard(index, shard, config, trace_enabled))
    )


def run_sharded(
    source: Iterable[Tweet],
    config: CollectionConfig,
    workers: int,
    *,
    policy: SupervisorPolicy | None = None,
    worker_faults: WorkerFaultPlan | None = None,
) -> tuple[list[CollectedTweet], PipelineReport]:
    """Shard ``source`` across supervised workers and merge the results.

    Returns records in original stream order and the merged report; both
    are identical to what the serial loop produces, for any worker count
    and any recoverable fault schedule.  ``workers=1`` with no policy and
    no fault plan processes the single shard in-process (no pool), which
    keeps the sharded path testable without multiprocessing overhead;
    otherwise shards run under :func:`repro.supervise.run_supervised` and
    ``report.compute`` records what the pool survived.

    A shard quarantined after exhausting its retries (a poison shard) is
    an explicit, named gap: its records are absent, the merged counters
    cover the surviving shards only, and ``report.compute.dead_letters``
    identifies the shard — the run never aborts and never hides the loss.

    Raises:
        ConfigError: if ``workers`` is not a positive integer or the
            fault plan is not absorbable by the policy.
    """
    telemetry = obs.current()
    shards = shard_by_id(source, workers)
    report = PipelineReport()
    results: list[tuple[list[tuple[int, CollectedTweet]], PipelineReport]]
    if workers == 1 and policy is None and worker_faults is None:
        with telemetry.span("shard", index=0, tweets=len(shards[0])):
            results = [process_shard(shards[0], config)]
    else:
        global _FORK_STATE
        labels = [f"shard {index}" for index in range(len(shards))]
        fork = pick_start_method() == "fork"
        outcomes: list[RawResult | None]
        if fork:
            # Slim dispatch: workers inherit the shards via fork and
            # receive only their index over the pipe.
            _FORK_STATE = (shards, config, telemetry.enabled)
            try:
                outcomes, health = run_supervised(
                    _shard_task_fork,
                    list(range(len(shards))),
                    workers=workers,
                    policy=policy,
                    fault_plan=worker_faults,
                    labels=labels,
                )
            finally:
                _FORK_STATE = None
        else:  # pragma: no cover - non-fork platforms only
            outcomes, health = run_supervised(
                _shard_task,
                [
                    (index, shard, config, telemetry.enabled)
                    for index, shard in enumerate(shards)
                ],
                workers=workers,
                policy=policy,
                fault_plan=worker_faults,
                labels=labels,
            )
        # Absorb worker buffers in shard-index order (outcomes align
        # with payloads), so the merged telemetry is deterministic no
        # matter how the scheduler interleaved the workers.
        results = []
        for outcome in outcomes:
            if outcome is None:
                continue
            shard_records, shard_report, snapshot = decode_shard_result(
                outcome.payload
            )
            telemetry.absorb(snapshot)
            results.append((shard_records, shard_report))
        report.compute = health
    tagged: list[tuple[int, CollectedTweet]] = []
    for shard_records, shard_report in results:
        report = report.merge(shard_report)
        tagged.extend(shard_records)
    tagged.sort(key=lambda item: item[0])
    return [record for __, record in tagged], report
