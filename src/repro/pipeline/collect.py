"""Step 1: keyword-filtered collection.

Builds the query set Q = Context × Subject (Fig. 1) and opens a filtered
stream over the tweet source with Twitter ``track`` semantics.  Every tweet
the stream delivers contains at least one Context term and at least one
Subject term, so the collected dataset is conceived in the organ-donation
context, exactly as the paper argues.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.config import CollectionConfig
from repro.nlp.keywords import build_query_set, track_phrases
from repro.twitter.models import Tweet
from repro.twitter.stream import FilteredStream


def collect(source: Iterable[Tweet], config: CollectionConfig) -> FilteredStream:
    """Open a keyword-filtered stream over ``source``.

    Returns the stream object (not a list) so callers can consume lazily
    and read the delivered/dropped counters afterwards.
    """
    queries = build_query_set(config.context_terms, config.subject_terms)
    return FilteredStream(source, track=track_phrases(queries))
