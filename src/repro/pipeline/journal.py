"""Stage-checkpointed, kill-resumable end-to-end analysis runs.

:mod:`repro.pipeline.incremental` makes *collection* resumable at record
granularity; this module makes the *whole analysis run* resumable at
stage granularity.  A run directory accumulates one artifact file per
stage (firehose → collect → attention matrix → Table I → Figs. 2–7) plus
a ``journal.json`` recording, for every completed stage, the SHA-256 of
each artifact it wrote — under a fingerprint of the run parameters.

The recovery contract:

* The journal is only updated *after* a stage's artifacts are fully
  written, and the update itself is atomic (temp file + ``os.replace``).
  A kill at any instant — mid-artifact, mid-journal-write — therefore
  leaves a journal describing only stages whose artifacts are complete.
* ``resume`` re-runs the first stage the journal does not record as
  complete (a torn artifact belongs to exactly such a stage) and every
  stage after it; completed stages are verified by re-hashing their
  artifacts and skipped.
* Every stage reads its inputs from *artifacts on disk*, never from
  in-memory state of earlier stages, so an interrupted-and-resumed run
  produces byte-identical artifacts to an uninterrupted one.
* Resuming under different parameters is refused (fingerprint mismatch):
  mixing stages computed under different configurations would produce
  artifacts no single configuration can explain.

``fault_hook`` is called between an artifact write and its journal
record — the torn window — so the kill-and-resume integration test can
SIGKILL the process at the worst possible instant.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Callable
from dataclasses import dataclass, fields
from pathlib import Path

import numpy as np

from repro.config import (
    AnalysisConfig,
    RelativeRiskConfig,
    UserClusteringConfig,
)
from repro.core.attention import AttentionMatrix
from repro.dataset.corpus import TweetCorpus
from repro.dataset.io import (
    read_jsonl,
    read_tweets_jsonl,
    write_jsonl,
    write_tweets_jsonl,
)
from repro.errors import PipelineError
from repro.faults.compute import WorkerFaultPlan
from repro.obs import NULL_TELEMETRY, Telemetry, activate
from repro.obs.export import TRACE_FILENAME, write_trace
from repro.pipeline.runner import CollectionPipeline, PipelineReport
from repro.storage.atomic import atomic_write_text
from repro.storage.fs import LOCAL_FS, FileSystem
from repro.storage.manifest import write_text_with_manifest
from repro.supervise import SupervisorPolicy


@dataclass(frozen=True, slots=True)
class RunParams:
    """Everything that determines a run's artifacts, fingerprinted.

    Attributes:
        scale: synthetic-world scale factor.
        seed: synthetic-world seed.
        workers: worker processes for the sharded collect.
        k: user-clustering k (Fig. 7).
        alpha: relative-risk significance level (Fig. 5).
        chaos: inject transport faults (resilient-stream chaos mode).
        chaos_seed: transport fault-plan seed.
        worker_chaos: inject compute faults into the supervised pool.
        worker_chaos_seed: compute fault-plan seed.
    """

    scale: float = 0.01
    seed: int = 0
    workers: int = 1
    k: int = 12
    alpha: float = 0.05
    chaos: bool = False
    chaos_seed: int = 0
    worker_chaos: bool = False
    worker_chaos_seed: int = 0

    def to_dict(self) -> dict[str, object]:
        return {spec.name: getattr(self, spec.name) for spec in fields(self)}

    @classmethod
    def from_dict(cls, data: dict[str, object]) -> "RunParams":
        kwargs: dict[str, object] = {}
        for spec in fields(cls):
            value = data[spec.name]
            if spec.name in ("scale", "alpha"):
                kwargs[spec.name] = float(value)  # type: ignore[arg-type]
            elif spec.name in ("chaos", "worker_chaos"):
                kwargs[spec.name] = bool(value)
            else:
                kwargs[spec.name] = int(value)  # type: ignore[arg-type]
        return cls(**kwargs)  # type: ignore[arg-type]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON form of the parameters."""
        canonical = json.dumps(self.to_dict(), sort_keys=True)
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


#: Stage execution order.  Each stage writes exactly the artifact files
#: named here, inside the run directory.
STAGE_ARTIFACTS: tuple[tuple[str, tuple[str, ...]], ...] = (
    ("firehose", ("firehose.jsonl",)),
    ("collect", ("corpus.jsonl", "report.json")),
    ("attention", ("attention.json",)),
    ("table1", ("table1.txt",)),
    ("fig2", ("fig2.txt",)),
    ("fig3", ("fig3.txt",)),
    ("fig4", ("fig4.txt",)),
    ("fig5", ("fig5.txt",)),
    ("fig6", ("fig6.txt",)),
    ("fig7", ("fig7.txt",)),
)

STAGES: tuple[str, ...] = tuple(name for name, __ in STAGE_ARTIFACTS)


def _hash_file(path: Path) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for block in iter(lambda: handle.read(1 << 20), b""):
            digest.update(block)
    return digest.hexdigest()


class RunJournal:
    """The on-disk record of which stages of a run are complete.

    Args:
        run_dir: directory holding ``journal.json`` and all artifacts.
        params: the run's parameters; their fingerprint binds the
            journal to exactly one configuration.
        fs: filesystem the journal file is written through.
    """

    def __init__(
        self, run_dir: Path, params: RunParams, fs: FileSystem | None = None
    ):
        self.run_dir = Path(run_dir)
        self.params = params
        self.fs: FileSystem = fs if fs is not None else LOCAL_FS
        self.path = self.run_dir / "journal.json"
        self._stages: dict[str, dict[str, str]] = {}

    @classmethod
    def load(cls, run_dir: Path, fs: FileSystem | None = None) -> "RunJournal":
        """Load an existing journal from a run directory.

        Raises:
            PipelineError: when no journal exists or it is unreadable.
        """
        path = Path(run_dir) / "journal.json"
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            raise PipelineError(
                f"no journal at {path}; not a resumable run directory"
            ) from None
        except (OSError, json.JSONDecodeError) as exc:
            raise PipelineError(f"unreadable journal at {path}: {exc}") from exc
        journal = cls(Path(run_dir), RunParams.from_dict(data["params"]), fs=fs)
        if data["fingerprint"] != journal.params.fingerprint():
            raise PipelineError(
                f"journal at {path} is internally inconsistent: recorded "
                "fingerprint does not match recorded parameters"
            )
        journal._stages = {
            name: dict(artifacts)
            for name, artifacts in data["stages"].items()
        }
        return journal

    def completed_stages(self) -> tuple[str, ...]:
        """Completed stage names, in execution order."""
        return tuple(name for name in STAGES if name in self._stages)

    def is_complete(self, stage: str) -> bool:
        return stage in self._stages

    def verify_artifacts(self, stage: str) -> None:
        """Re-hash a completed stage's artifacts against the journal.

        Raises:
            PipelineError: when an artifact is missing or its content no
                longer matches the recorded hash.
        """
        for name, recorded in self._stages[stage].items():
            path = self.run_dir / name
            if not path.exists():
                raise PipelineError(
                    f"journaled artifact {name} of stage '{stage}' is "
                    "missing; the run directory was modified — re-run "
                    "without --resume"
                )
            actual = _hash_file(path)
            if actual != recorded:
                raise PipelineError(
                    f"journaled artifact {name} of stage '{stage}' changed "
                    "on disk (hash mismatch); the run directory was "
                    "modified — re-run without --resume"
                )

    def record_stage(self, stage: str, artifacts: tuple[str, ...]) -> None:
        """Mark a stage complete, hashing its just-written artifacts.

        The journal write is atomic: a kill during ``record_stage``
        leaves either the previous journal (stage re-runs on resume) or
        the new one (stage is skipped) — never a torn file.
        """
        self._stages[stage] = {
            name: _hash_file(self.run_dir / name) for name in artifacts
        }
        self._write()

    def _write(self) -> None:
        """Atomic-durable journal replace; no sidecar for the journal
        itself — it *is* the integrity record for the artifacts, and the
        resume tests hand-edit it to simulate crashes."""
        payload = {
            "fingerprint": self.params.fingerprint(),
            "params": self.params.to_dict(),
            "stages": {
                name: self._stages[name]
                for name in STAGES
                if name in self._stages
            },
        }
        atomic_write_text(
            self.path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            fs=self.fs,
        )


def _write_attention_json(
    attention: AttentionMatrix, path: Path, fs: FileSystem | None = None
) -> None:
    """Serialize Û's inputs deterministically (floats via ``repr``).

    Only ``counts`` is persisted; ``normalized`` is recomputed on load by
    the same expression :func:`repro.core.attention.build_attention_matrix`
    uses, so the loaded matrix is bit-identical to the built one (JSON
    float ``repr`` round-trips exactly).
    """
    payload = {
        "user_ids": list(attention.user_ids),
        "states": list(attention.states),
        "counts": [[float(v) for v in row] for row in attention.counts],
    }
    write_text_with_manifest(
        path, json.dumps(payload, ensure_ascii=False) + "\n", fs=fs
    )


def _read_attention_json(path: Path) -> AttentionMatrix:
    data = json.loads(path.read_text(encoding="utf-8"))
    counts = np.asarray(data["counts"], dtype=float)
    row_sums = counts.sum(axis=1)
    normalized = counts / row_sums[:, None]
    return AttentionMatrix(
        user_ids=tuple(int(uid) for uid in data["user_ids"]),
        states=tuple(
            state if state is None else str(state) for state in data["states"]
        ),
        counts=counts,
        normalized=normalized,
    )


@dataclass(frozen=True, slots=True)
class RunSummary:
    """What one journaled run did.

    Attributes:
        run_dir: the run directory.
        stages_run: stages executed in this invocation.
        stages_skipped: stages skipped because the journal proved them
            complete (always empty for a fresh run).
        report: the collection report, loaded from the journaled
            artifact (carries reliability/compute health when the run
            injected faults).
    """

    run_dir: Path
    stages_run: tuple[str, ...]
    stages_skipped: tuple[str, ...]
    report: PipelineReport


class _StageRunner:
    """Executes stages against a run directory, loading inputs lazily.

    Every input is read from the stage artifact on disk (never carried
    over in memory), which is what makes resumption byte-identical: a
    stage cannot observe whether its predecessor ran in this process or
    a previous one.
    """

    def __init__(
        self, run_dir: Path, params: RunParams, fs: FileSystem | None = None
    ):
        self.run_dir = run_dir
        self.params = params
        self.fs: FileSystem = fs if fs is not None else LOCAL_FS
        self._corpus: TweetCorpus | None = None
        self._report: PipelineReport | None = None
        self._attention: AttentionMatrix | None = None

    # -- lazy artifact loaders ------------------------------------------

    def corpus(self) -> TweetCorpus:
        if self._corpus is None:
            self._corpus = TweetCorpus(
                read_jsonl(self.run_dir / "corpus.jsonl")
            )
        return self._corpus

    def report(self) -> PipelineReport:
        if self._report is None:
            data = json.loads(
                (self.run_dir / "report.json").read_text(encoding="utf-8")
            )
            self._report = PipelineReport.from_dict(data)
        return self._report

    def attention(self) -> AttentionMatrix:
        if self._attention is None:
            self._attention = _read_attention_json(
                self.run_dir / "attention.json"
            )
        return self._attention

    def _suite(self) -> "object":
        from repro.report.experiments import ExperimentSuite

        suite = ExperimentSuite(
            self.corpus(),
            report=self.report(),
            config=AnalysisConfig(
                relative_risk=RelativeRiskConfig(alpha=self.params.alpha),
                user_clustering=UserClusteringConfig(k=self.params.k),
            ),
        )
        # Serve the journaled attention artifact through the suite's
        # cache, so Fig. 7 consumes exactly the stage-3 matrix.
        suite.__dict__["attention"] = self.attention()
        return suite

    # -- stages ---------------------------------------------------------

    def run_stage(self, stage: str) -> None:
        getattr(self, f"_stage_{stage}")()

    def _stage_firehose(self) -> None:
        from repro.synth.scenarios import paper2016_scenario
        from repro.synth.world import SyntheticWorld

        world = SyntheticWorld(
            paper2016_scenario(scale=self.params.scale, seed=self.params.seed)
        )
        write_tweets_jsonl(
            world.firehose(), self.run_dir / "firehose.jsonl", fs=self.fs
        )

    def _stage_collect(self) -> None:
        fault_plan = None
        pipeline = CollectionPipeline()
        if self.params.chaos:
            from repro.twitter.faults import FaultPlan

            fault_plan = FaultPlan.chaos(seed=self.params.chaos_seed)
        worker_faults = (
            WorkerFaultPlan.chaos(seed=self.params.worker_chaos_seed)
            if self.params.worker_chaos
            else None
        )
        supervisor = (
            SupervisorPolicy() if worker_faults is not None else None
        )
        corpus, report = pipeline.run(
            read_tweets_jsonl(self.run_dir / "firehose.jsonl"),
            fault_plan=fault_plan,
            workers=self.params.workers,
            supervisor=supervisor,
            worker_faults=worker_faults,
        )
        write_jsonl(corpus.records, self.run_dir / "corpus.jsonl", fs=self.fs)
        write_text_with_manifest(
            self.run_dir / "report.json",
            json.dumps(report.to_dict(), indent=2, sort_keys=True) + "\n",
            fs=self.fs,
        )

    def _stage_attention(self) -> None:
        from repro.core.attention import build_attention_matrix

        _write_attention_json(
            build_attention_matrix(self.corpus()),
            self.run_dir / "attention.json",
            fs=self.fs,
        )

    def _render_stage(self, stage: str) -> None:
        suite = self._suite()
        text: str = getattr(suite, f"run_{stage}")().render()
        write_text_with_manifest(
            self.run_dir / f"{stage}.txt", text + "\n", fs=self.fs
        )

    def _stage_table1(self) -> None:
        self._render_stage("table1")

    def _stage_fig2(self) -> None:
        self._render_stage("fig2")

    def _stage_fig3(self) -> None:
        self._render_stage("fig3")

    def _stage_fig4(self) -> None:
        self._render_stage("fig4")

    def _stage_fig5(self) -> None:
        self._render_stage("fig5")

    def _stage_fig6(self) -> None:
        self._render_stage("fig6")

    def _stage_fig7(self) -> None:
        self._render_stage("fig7")


def run_stages(
    run_dir: Path,
    params: RunParams,
    *,
    resume: bool = False,
    trace: bool = False,
    fault_hook: Callable[[str], None] | None = None,
    log: Callable[[str], None] | None = None,
    fs: FileSystem | None = None,
) -> RunSummary:
    """Execute (or resume) a journaled end-to-end analysis run.

    Args:
        run_dir: run directory; created for a fresh run, required to
            exist (with a journal) for a resumed one.
        params: the run's parameters; on resume they must fingerprint-
            match the journal's.
        resume: skip stages the journal proves complete (artifacts
            re-hashed) and continue from the first incomplete stage.
        trace: record run telemetry and flush it to ``trace.jsonl`` in
            the run directory after every stage.  Deliberately *not* a
            :class:`RunParams` field: telemetry never influences an
            artifact byte, so a traced run may resume an untraced one
            (and vice versa) without a fingerprint mismatch.
        fault_hook: called with the stage name *after* its artifacts are
            written but *before* the journal records them — the torn
            window a crash-recovery test wants to kill the process in.
        log: per-stage progress sink (e.g. ``print``); silent when None.
        fs: filesystem every artifact and journal write goes through; a
            :class:`repro.storage.fs.FaultyFS` subjects the whole run to
            injected disk faults.

    Raises:
        PipelineError: on a fresh run into a directory that already has
            a journal, a resume without one, a parameter mismatch, or a
            modified artifact.
    """
    run_dir = Path(run_dir)
    emit = log if log is not None else (lambda message: None)
    if resume:
        journal = RunJournal.load(run_dir, fs=fs)
        if journal.params.fingerprint() != params.fingerprint():
            raise PipelineError(
                "cannot resume: run parameters differ from the journaled "
                f"ones ({journal.params.to_dict()}); stages computed under "
                "different configurations cannot be mixed"
            )
    else:
        run_dir.mkdir(parents=True, exist_ok=True)
        if (run_dir / "journal.json").exists():
            raise PipelineError(
                f"{run_dir} already contains a journaled run; pass "
                "resume=True (--resume) to continue it or choose a fresh "
                "directory"
            )
        journal = RunJournal(run_dir, params, fs=fs)
    runner = _StageRunner(run_dir, params, fs=fs)
    telemetry = Telemetry() if trace else NULL_TELEMETRY

    def flush_trace(last_stage: str) -> None:
        # Atomic replace after every stage: a kill mid-run leaves the
        # newest complete flush on disk, never a torn trace.
        if trace:
            write_trace(
                telemetry,
                run_dir / TRACE_FILENAME,
                fs=fs,
                fingerprint=params.fingerprint(),
                last_stage=last_stage,
            )

    stages_run: list[str] = []
    stages_skipped: list[str] = []
    with activate(telemetry):
        for stage, artifacts in STAGE_ARTIFACTS:
            if journal.is_complete(stage):
                journal.verify_artifacts(stage)
                stages_skipped.append(stage)
                telemetry.inc("journal.stages_skipped")
                telemetry.event("stage.skipped", stage=stage)
                emit(f"stage {stage}: complete, skipping")
                continue
            emit(f"stage {stage}: running")
            with telemetry.span(f"stage.{stage}"):
                runner.run_stage(stage)
            if fault_hook is not None:
                fault_hook(stage)
            journal.record_stage(stage, artifacts)
            telemetry.inc("journal.stages_run")
            stages_run.append(stage)
            flush_trace(stage)
    flush_trace(stages_run[-1] if stages_run else "none")
    return RunSummary(
        run_dir=run_dir,
        stages_run=tuple(stages_run),
        stages_skipped=tuple(stages_skipped),
        report=runner.report(),
    )
