"""Step 3: retain only tweets from users located in a US state.

The paper keeps only tweets attributable to USA users (134,986 of 975,021
collected).  A tweet survives when its resolved location is a specific US
state or territory with sufficient confidence — country-level "USA" matches
are not enough, because every downstream characterization is per-state.
"""

from __future__ import annotations

from repro.config import CollectionConfig
from repro.geo.geocoder import GeoMatch


def is_us_located(match: GeoMatch, config: CollectionConfig) -> bool:
    """True when the tweet should be retained by the US filter."""
    return match.is_us_state and match.confidence >= config.min_confidence
