"""Resumable, checkpointed collection.

The paper's dataset took 385 days of continuous collection; any real
collector restarts many times in such a window.  This module wraps the
pipeline in an append-only JSONL sink plus a JSON checkpoint (last
processed tweet id and cumulative counters), so a collection can stop at
any point and resume exactly where it left off without duplicating or
dropping records.
"""

from __future__ import annotations

import json
from collections.abc import Iterable
from dataclasses import asdict, dataclass
from pathlib import Path

from repro.config import CollectionConfig
from repro.dataset.io import read_jsonl
from repro.dataset.records import CollectedTweet
from repro.errors import PipelineError
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, matches_query_set
from repro.nlp.matcher import OrganMatcher
from repro.pipeline.augment import augment_location
from repro.pipeline.usfilter import is_us_located
from repro.twitter.models import Tweet


@dataclass(slots=True)
class Checkpoint:
    """Resumption state for one collection.

    Attributes:
        last_tweet_id: highest tweet id fully processed (−1 initially).
        seen: tweets inspected, cumulative.
        retained: records written, cumulative.
    """

    last_tweet_id: int = -1
    seen: int = 0
    retained: int = 0


class IncrementalCollector:
    """Append-only collection with checkpointed resume.

    Args:
        corpus_path: JSONL sink; appended to across runs.
        checkpoint_path: JSON checkpoint beside the corpus (defaults to
            ``<corpus_path>.checkpoint.json``).
        config: collection configuration (must stay identical across
            resumed runs; changing vocabularies mid-collection would make
            the corpus inconsistent).

    Tweets with ids at or below the checkpoint are skipped, so re-feeding
    an overlapping stream slice is safe and idempotent.
    """

    def __init__(
        self,
        corpus_path: str | Path,
        checkpoint_path: str | Path | None = None,
        config: CollectionConfig | None = None,
    ):
        self.corpus_path = Path(corpus_path)
        self.checkpoint_path = (
            Path(checkpoint_path)
            if checkpoint_path is not None
            else self.corpus_path.with_suffix(
                self.corpus_path.suffix + ".checkpoint.json"
            )
        )
        self.config = config or CollectionConfig()
        self._queries = build_query_set(
            self.config.context_terms, self.config.subject_terms
        )
        self._geocoder = Geocoder()
        self._matcher = OrganMatcher()
        self.checkpoint = self._load_checkpoint()

    def _load_checkpoint(self) -> Checkpoint:
        if not self.checkpoint_path.exists():
            return Checkpoint()
        try:
            data = json.loads(self.checkpoint_path.read_text())
            return Checkpoint(
                last_tweet_id=int(data["last_tweet_id"]),
                seen=int(data["seen"]),
                retained=int(data["retained"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise PipelineError(
                f"corrupt checkpoint {self.checkpoint_path}: {exc}"
            ) from exc

    def _save_checkpoint(self) -> None:
        self.checkpoint_path.write_text(json.dumps(asdict(self.checkpoint)))

    def run(
        self, source: Iterable[Tweet], checkpoint_every: int = 500
    ) -> int:
        """Process a stream slice; returns records written this run.

        The checkpoint is saved every ``checkpoint_every`` inspected
        tweets and once at the end, so a crash loses at most one batch of
        progress (and re-processing that batch is idempotent).
        """
        if checkpoint_every < 1:
            raise PipelineError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        written = 0
        since_checkpoint = 0
        with open(self.corpus_path, "a", encoding="utf-8") as sink:
            for tweet in source:
                if tweet.tweet_id <= self.checkpoint.last_tweet_id:
                    continue  # already processed in a previous run
                self.checkpoint.seen += 1
                record = self._process(tweet)
                if record is not None:
                    sink.write(
                        json.dumps(record.to_dict(), ensure_ascii=False)
                    )
                    sink.write("\n")
                    self.checkpoint.retained += 1
                    written += 1
                self.checkpoint.last_tweet_id = tweet.tweet_id
                since_checkpoint += 1
                if since_checkpoint >= checkpoint_every:
                    sink.flush()
                    self._save_checkpoint()
                    since_checkpoint = 0
        self._save_checkpoint()
        return written

    def _process(self, tweet: Tweet) -> CollectedTweet | None:
        if not matches_query_set(tweet.text, self._queries):
            return None
        match = augment_location(tweet, self._geocoder, self.config)
        if not is_us_located(match, self.config):
            return None
        mentions = self._matcher.mentions(tweet.text)
        if not mentions:
            return None
        return CollectedTweet(
            tweet=tweet, location=match, mentions=dict(mentions)
        )

    def load_corpus(self):
        """The accumulated corpus across all runs.

        Raises:
            repro.errors.DatasetError: if nothing has been retained yet.
        """
        from repro.dataset.corpus import TweetCorpus

        return TweetCorpus(read_jsonl(self.corpus_path))
