"""Resumable, checkpointed collection.

The paper's dataset took 385 days of continuous collection; any real
collector restarts many times in such a window.  This module wraps the
pipeline in an append-only JSONL sink plus a JSON checkpoint (last
processed tweet id and cumulative counters), so a collection can stop at
any point and resume exactly where it left off without duplicating or
dropping records.

Crash safety: all writes go through :mod:`repro.storage` — the sink is
fsynced *before* every checkpoint save (so a durable checkpoint always
describes a durable corpus prefix), the checkpoint itself is written
atomically-durably with an integrity sidecar, and construction
reconciles the checkpoint with the corpus file in both directions:

* corpus ahead of checkpoint (killed before the periodic save, or a
  torn trailing JSONL line) — the tail is truncated/adopted, exactly as
  before;
* checkpoint ahead of corpus (a lying fsync acknowledged bytes that a
  later power loss dropped) — the checkpoint is *rewound* to the
  surviving corpus, so the lost tweets are re-processed instead of
  silently skipped.

Either way a kill at *any* instant — mid-batch, mid-checkpoint-write,
mid-JSONL-line, even under injected disk faults — resumes to a
byte-identical corpus.
"""

from __future__ import annotations

import json
import os
import warnings
from collections.abc import Iterable
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.dataset.corpus import TweetCorpus

from repro.config import CollectionConfig, ResiliencePolicy
from repro.dataset.io import read_jsonl
from repro.dataset.records import CollectedTweet
from repro.errors import PipelineError, SerializationError
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, matches_query_set
from repro.nlp.matcher import OrganMatcher
from repro.pipeline.augment import augment_location
from repro.pipeline.usfilter import is_us_located
from repro.storage.fs import LOCAL_FS, FileSystem
from repro.storage.manifest import (
    build_manifest,
    write_manifest,
    write_text_with_manifest,
)
from repro.twitter.faults import FaultPlan, FaultySource
from repro.twitter.models import Tweet
from repro.twitter.resilient import (
    ReliabilityReport,
    ResilientStream,
    ensure_compatible,
)


@dataclass(slots=True)
class Checkpoint:
    """Resumption state for one collection.

    Attributes:
        last_tweet_id: highest tweet id fully processed (−1 initially).
        seen: tweets inspected, cumulative (a lower bound after a crash).
        retained: records written, cumulative.
    """

    last_tweet_id: int = -1
    seen: int = 0
    retained: int = 0


class IncrementalCollector:
    """Append-only collection with checkpointed resume.

    Args:
        corpus_path: JSONL sink; appended to across runs.
        checkpoint_path: JSON checkpoint beside the corpus (defaults to
            ``<corpus_path>.checkpoint.json``).
        config: collection configuration (must stay identical across
            resumed runs; changing vocabularies mid-collection would make
            the corpus inconsistent).
        resilience: reconnect/dedup policy applied when ``run`` is given
            a fault plan.
        fs: filesystem all persistence goes through; a
            :class:`repro.storage.fs.FaultyFS` here subjects the whole
            collection to injected disk faults.

    Tweets with ids at or below the checkpoint are skipped, so re-feeding
    an overlapping stream slice is safe and idempotent.
    """

    def __init__(
        self,
        corpus_path: str | Path,
        checkpoint_path: str | Path | None = None,
        config: CollectionConfig | None = None,
        resilience: ResiliencePolicy | None = None,
        fs: FileSystem | None = None,
    ):
        self.corpus_path = Path(corpus_path)
        self.checkpoint_path = (
            Path(checkpoint_path)
            if checkpoint_path is not None
            else self.corpus_path.with_suffix(
                self.corpus_path.suffix + ".checkpoint.json"
            )
        )
        self.fs: FileSystem = fs if fs is not None else LOCAL_FS
        self.config = config or CollectionConfig()
        self.resilience = resilience or ResiliencePolicy()
        self.reliability: ReliabilityReport | None = None
        self._queries = build_query_set(
            self.config.context_terms, self.config.subject_terms
        )
        self._geocoder = Geocoder()
        self._matcher = OrganMatcher()
        self.checkpoint = self._load_checkpoint()
        self._recover()

    def _load_checkpoint(self) -> Checkpoint:
        if not self.checkpoint_path.exists():
            return Checkpoint()
        try:
            data = json.loads(self.checkpoint_path.read_text())
            return Checkpoint(
                last_tweet_id=int(data["last_tweet_id"]),
                seen=int(data["seen"]),
                retained=int(data["retained"]),
            )
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            if self.corpus_path.exists():
                # The corpus itself is the ground truth; a garbage
                # checkpoint (bitrot, torn write on a legacy layout) is
                # rebuilt from it instead of bricking the resume.
                warnings.warn(
                    f"corrupt checkpoint {self.checkpoint_path} ({exc}); "
                    "rebuilding it from a corpus scan",
                    stacklevel=3,
                )
                return Checkpoint()
            raise PipelineError(
                f"corrupt checkpoint {self.checkpoint_path}: {exc}"
            ) from exc

    def _save_checkpoint(self) -> None:
        """Atomically-durably replace the checkpoint (crash mid-write can
        never leave a corrupt checkpoint that bricks a resume), leaving
        an integrity sidecar for ``repro scrub``."""
        write_text_with_manifest(
            self.checkpoint_path,
            json.dumps(asdict(self.checkpoint)) + "\n",
            fs=self.fs,
        )

    def _write_corpus_manifest(self) -> None:
        if self.corpus_path.exists():
            write_manifest(
                self.corpus_path,
                build_manifest(self.corpus_path, fs=self.fs),
                fs=self.fs,
            )

    def _recover(self) -> None:
        """Reconcile the checkpoint with the corpus file after a crash.

        Three gaps can open between sink and checkpoint when a run dies:

        * a torn trailing JSONL line (killed mid-write) — truncated away;
          the record's tweet id is above the checkpoint, so the tweet is
          simply re-processed on the next run;
        * complete records flushed after the last checkpoint (killed
          before the periodic save) — adopted into the checkpoint so
          re-feeding the stream cannot duplicate them;
        * records the checkpoint counts but the corpus no longer holds
          (an fsync lie followed by power loss) — the checkpoint is
          rewound to the surviving corpus so the lost tweets are
          re-processed instead of silently skipped.

        The ``seen`` counter cannot recover tweets that were inspected
        and rejected after the last checkpoint, so after a crash it is a
        lower bound.
        """
        self._truncate_torn_tail()
        if not self.corpus_path.exists():
            if self.checkpoint.retained > 0:
                warnings.warn(
                    f"checkpoint claims {self.checkpoint.retained} retained "
                    f"record(s) but {self.corpus_path} is gone; rewound to "
                    "an empty corpus (lost unsynced writes?)",
                    stacklevel=2,
                )
                self.checkpoint = Checkpoint()
                self._save_checkpoint()
            return
        total = 0
        adopted = 0
        max_id = self.checkpoint.last_tweet_id
        with open(self.corpus_path, encoding="utf-8") as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    tweet_id = int(json.loads(line)["tweet"]["tweet_id"])
                except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                    raise SerializationError(
                        f"{self.corpus_path}:{line_number}: corrupt record "
                        f"during crash recovery: {exc}"
                    ) from exc
                total += 1
                if tweet_id > max_id:
                    adopted += 1
                    max_id = tweet_id
        if total < self.checkpoint.retained:
            warnings.warn(
                f"corpus holds {total} record(s) but the checkpoint claims "
                f"{self.checkpoint.retained}; rewound the checkpoint to the "
                "surviving corpus (an acknowledged write was lost?)",
                stacklevel=2,
            )
            self.checkpoint = Checkpoint(
                last_tweet_id=max_id if total else -1,
                seen=total,
                retained=total,
            )
            self._save_checkpoint()
            return
        if adopted:
            warnings.warn(
                f"adopted {adopted} record(s) flushed after the last "
                f"checkpoint (crash recovery); resuming from tweet id "
                f"{max_id}",
                stacklevel=2,
            )
            self.checkpoint.retained += adopted
            self.checkpoint.seen += adopted
            self.checkpoint.last_tweet_id = max_id
            self._save_checkpoint()

    def _truncate_torn_tail(self) -> None:
        """Drop a partial trailing line left by a crash mid-append.

        Every complete record ends with a newline, so a file not ending
        in ``\\n`` was torn by a crash; the tail is cut back to the last
        complete line (the torn record's tweet is re-processed on the
        next run because its id is above the checkpoint).
        """
        if not self.corpus_path.exists():
            return
        # In-place surgical truncation of an existing file — the one
        # repair that atomic replacement cannot express.
        with open(self.corpus_path, "rb+") as handle:  # reprolint: disable=RPL008
            size = handle.seek(0, os.SEEK_END)
            if size == 0:
                return
            handle.seek(-1, os.SEEK_END)
            if handle.read(1) == b"\n":
                return
            # Scan backwards in blocks for the last newline.
            keep = 0
            position = size
            while position > 0:
                step = min(4096, position)
                position -= step
                handle.seek(position)
                block = handle.read(step)
                newline = block.rfind(b"\n")
                if newline != -1:
                    keep = position + newline + 1
                    break
            handle.truncate(keep)
        warnings.warn(
            f"{self.corpus_path}: truncated torn trailing record "
            f"({size - keep} bytes) left by a crash mid-write",
            stacklevel=2,
        )

    def run(
        self,
        source: Iterable[Tweet],
        checkpoint_every: int = 500,
        fault_plan: FaultPlan | None = None,
    ) -> int:
        """Process a stream slice; returns records written this run.

        The sink is fsynced and the checkpoint saved every
        ``checkpoint_every`` inspected tweets and once at the end, so a
        crash loses at most one batch of progress (and re-processing
        that batch is idempotent).  The fsync strictly precedes the
        checkpoint save: a durable checkpoint therefore always describes
        a durable corpus prefix, which is what recovery relies on.

        Args:
            source: tweet iterable (stream slice).
            checkpoint_every: inspected tweets between checkpoint saves.
            fault_plan: when given, the slice is consumed through a
                :class:`ResilientStream` over a fault-injecting wrapper;
                ``self.reliability`` afterwards reports what the run
                survived.
        """
        if checkpoint_every < 1:
            raise PipelineError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        if fault_plan is not None:
            ensure_compatible(self.resilience, fault_plan)
            resilient = ResilientStream(
                FaultySource(source, fault_plan), self.resilience
            )
            self.reliability = resilient.report
            source = resilient
        written = 0
        since_checkpoint = 0
        # Sanctioned raw append (DESIGN §15): the corpus sink is an
        # append-only journal whose durability contract is fsync-before-
        # checkpoint plus torn-tail recovery on resume — AtomicWriter's
        # whole-file rewrite would turn O(batch) appends into O(corpus).
        # reprolint: disable-next-line=RPL103
        with self.fs.open(self.corpus_path, "a") as sink:
            for tweet in source:
                if tweet.tweet_id <= self.checkpoint.last_tweet_id:
                    continue  # already processed in a previous run
                self.checkpoint.seen += 1
                record = self._process(tweet)
                if record is not None:
                    sink.write(
                        json.dumps(record.to_dict(), ensure_ascii=False)
                    )
                    sink.write("\n")
                    self.checkpoint.retained += 1
                    written += 1
                self.checkpoint.last_tweet_id = tweet.tweet_id
                since_checkpoint += 1
                if since_checkpoint >= checkpoint_every:
                    self.fs.fsync(sink)
                    self._save_checkpoint()
                    since_checkpoint = 0
            self.fs.fsync(sink)
        self._save_checkpoint()
        self._write_corpus_manifest()
        return written

    def _process(self, tweet: Tweet) -> CollectedTweet | None:
        if not matches_query_set(tweet.text, self._queries):
            return None
        match = augment_location(tweet, self._geocoder, self.config)
        if not is_us_located(match, self.config):
            return None
        mentions = self._matcher.mentions(tweet.text)
        if not mentions:
            return None
        return CollectedTweet(
            tweet=tweet, location=match, mentions=dict(mentions)
        )

    def load_corpus(self) -> TweetCorpus:
        """The accumulated corpus across all runs.

        A torn trailing record (crash mid-write) is skipped with a
        warning rather than failing the whole corpus.

        Raises:
            repro.errors.DatasetError: if nothing has been retained yet.
        """
        from repro.dataset.corpus import TweetCorpus

        return TweetCorpus(
            read_jsonl(self.corpus_path, tolerate_torn_tail=True)
        )
