"""Shared process-pool plumbing for the parallel execution layer.

Used by the sharded collection pipeline
(:mod:`repro.pipeline.parallel`), parallel K-Means restarts
(:mod:`repro.cluster.kmeans`), and the parallel k-sweep
(:mod:`repro.core.user_clusters`).  Centralizing the start-method choice
keeps every fan-out site consistent: ``fork`` where available (Linux) —
a worker inherits the parent's imports, so there is no per-process
re-import cost — falling back to the platform default elsewhere.
"""

from __future__ import annotations

import multiprocessing
from typing import TypeVar

T = TypeVar("T")


def pick_start_method() -> str:
    """``fork`` when the platform offers it, else the platform default."""
    available = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in available else available[0]


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every repro pool should use."""
    return multiprocessing.get_context(pick_start_method())


def split_chunks(items: list[T], parts: int) -> list[list[T]]:
    """Split items into at most ``parts`` contiguous non-empty chunks.

    Sizes differ by at most one, largest first — the standard balanced
    partition for fanning a fixed work list across workers.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    parts = min(parts, len(items))
    size, extra = divmod(len(items), parts)
    chunks: list[list[T]] = []
    start = 0
    for part in range(parts):
        end = start + size + (1 if part < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks
