"""Shared process-pool plumbing for the parallel execution layer.

Used by the supervised pool (:mod:`repro.supervise`) behind the sharded
collection pipeline (:mod:`repro.pipeline.parallel`), parallel K-Means
restarts (:mod:`repro.cluster.kmeans`), and the parallel k-sweep
(:mod:`repro.core.user_clusters`).  Centralizing the start-method choice
keeps every fan-out site consistent: ``fork`` where available (Linux) —
a worker inherits the parent's imports, so there is no per-process
re-import cost — falling back to the platform default elsewhere.

:func:`reaped` is the unified teardown every fan-out site runs under: a
parent that dies mid-fan-out (a raised quarantine, a test failure, a
``KeyboardInterrupt``) must never strand live child processes, so every
child is registered at spawn time and terminated + joined on *every*
exit path.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.process
from collections.abc import Iterator
from contextlib import contextmanager
from typing import TypeVar

T = TypeVar("T")


def pick_start_method() -> str:
    """``fork`` when the platform offers it, else the platform default."""
    available = multiprocessing.get_all_start_methods()
    return "fork" if "fork" in available else available[0]


def pool_context() -> multiprocessing.context.BaseContext:
    """The multiprocessing context every repro pool should use."""
    return multiprocessing.get_context(pick_start_method())


@contextmanager
def reaped() -> Iterator[list[multiprocessing.process.BaseProcess]]:
    """Guarantee no spawned child outlives the block.

    Yields a registry list; append every child process to it right after
    ``start()``.  On exit — normal or exceptional — any registered child
    still alive is terminated (SIGTERM), escalated to ``kill()`` if it
    ignores that, and joined, so an interrupted parallel run never
    strands live workers.
    """
    registry: list[multiprocessing.process.BaseProcess] = []
    try:
        yield registry
    finally:
        for proc in registry:
            if proc.is_alive():
                proc.terminate()
        for proc in registry:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - SIGTERM ignored
                proc.kill()
                proc.join(timeout=5.0)


def split_chunks(items: list[T], parts: int) -> list[list[T]]:
    """Split items into at most ``parts`` contiguous non-empty chunks.

    Sizes differ by at most one, largest first — the standard balanced
    partition for fanning a fixed work list across workers.
    """
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts}")
    parts = min(parts, len(items))
    size, extra = divmod(len(items), parts)
    chunks: list[list[T]] = []
    start = 0
    for part in range(parts):
        end = start + size + (1 if part < extra else 0)
        chunks.append(items[start:end])
        start = end
    return chunks
