"""Aligned plain-text tables."""

from __future__ import annotations

from collections.abc import Sequence


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as an aligned text table.

    Numeric-looking cells are right-aligned, text cells left-aligned.

    >>> print(render_table(["a", "b"], [["x", 1], ["y", 22]]))
    a | b
    --+---
    x |  1
    y | 22
    """
    cells = [[str(cell) for cell in row] for row in rows]
    n_columns = len(headers)
    for row in cells:
        if len(row) != n_columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {n_columns}: {row}"
            )
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in cells)) if cells
        else len(headers[col])
        for col in range(n_columns)
    ]
    right_align = [
        all(_is_numeric(row[col]) for row in cells) if cells else False
        for col in range(n_columns)
    ]

    def format_row(row: Sequence[str]) -> str:
        parts = []
        for col, cell in enumerate(row):
            if right_align[col]:
                parts.append(cell.rjust(widths[col]))
            else:
                parts.append(cell.ljust(widths[col]))
        return " | ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in cells)
    return "\n".join(lines)


def _is_numeric(cell: str) -> bool:
    stripped = cell.replace(",", "").replace("%", "").strip()
    if not stripped:
        return False
    try:
        float(stripped)
    except ValueError:
        return False
    return True
