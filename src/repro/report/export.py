"""CSV export of every paper artifact.

Text renderings are for reading; these emitters produce the underlying
data as CSV so downstream users can plot the figures with their own
tooling.  One file per artifact, written through
:func:`export_all_csv`, or individually via the ``*_csv`` functions
(each returns the CSV text).
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.organs import ORGANS
from repro.report.experiments import ExperimentSuite


def _render(header: list[str], rows: list[list[object]]) -> str:
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(header)
    writer.writerows(rows)
    return buffer.getvalue()


def table1_csv(suite: ExperimentSuite) -> str:
    stats = suite.run_table1().stats
    return _render(
        ["statistic", "value"],
        [list(row) for row in stats.as_rows()],
    )


def fig2_csv(suite: ExperimentSuite) -> str:
    result = suite.run_fig2()
    rows: list[list[object]] = [
        ["users_per_organ", organ.value, count, ""]
        for organ, count in result.users_by_organ.items()
    ]
    rows += [
        ["mention_histogram", k, tweets, users]
        for k, (tweets, users) in sorted(result.mention_histogram.items())
        if tweets or users
    ]
    rows.append(
        ["spearman_vs_transplants", "", result.correlation.r,
         result.correlation.p_value]
    )
    return _render(["series", "key", "value_a", "value_b"], rows)


def fig3_csv(suite: ExperimentSuite) -> str:
    aggregation = suite.organ_characterization.aggregation
    rows = [
        [label, *map(float, aggregation.matrix[index])]
        for index, label in enumerate(aggregation.group_labels)
    ]
    return _render(
        ["focal_organ", *(organ.value for organ in ORGANS)], rows
    )


def fig4_csv(suite: ExperimentSuite) -> str:
    aggregation = suite.region_characterization.aggregation
    rows = [
        [label, *map(float, aggregation.matrix[index])]
        for index, label in enumerate(aggregation.group_labels)
    ]
    return _render(["state", *(organ.value for organ in ORGANS)], rows)


def fig5_csv(suite: ExperimentSuite) -> str:
    result = suite.run_fig5()
    rows = [
        [
            risk.state,
            risk.organ.value,
            risk.result.rr,
            risk.result.ci_low,
            risk.result.ci_high,
            risk.highlighted,
            risk.n_state_users,
        ]
        for risk in result.risks
    ]
    return _render(
        ["state", "organ", "rr", "ci_low", "ci_high", "highlighted",
         "n_users"],
        rows,
    )


def fig6_csv(suite: ExperimentSuite) -> str:
    clustering = suite.run_fig6().clustering
    states = clustering.states
    rows = [
        [states[i], states[j], float(clustering.distance_matrix[i, j])]
        for i in range(len(states))
        for j in range(len(states))
        if i < j
    ]
    return _render(["state_a", "state_b", "bhattacharyya_distance"], rows)


def fig7_csv(suite: ExperimentSuite) -> str:
    clustering = suite.run_fig7().clustering
    sizes = clustering.relative_sizes()
    rows = [
        [
            cluster,
            float(sizes[cluster]),
            *map(float, clustering.result.centers[cluster]),
        ]
        for cluster in range(clustering.k)
    ]
    return _render(
        ["cluster", "relative_size", *(organ.value for organ in ORGANS)],
        rows,
    )


_EMITTERS = {
    "table1": table1_csv,
    "fig2": fig2_csv,
    "fig3": fig3_csv,
    "fig4": fig4_csv,
    "fig5": fig5_csv,
    "fig6": fig6_csv,
    "fig7": fig7_csv,
}


def export_all_csv(suite: ExperimentSuite, directory: str | Path) -> list[Path]:
    """Write every artifact's CSV into ``directory``; returns the paths."""
    from repro.storage.atomic import atomic_write_text

    target = Path(directory)
    target.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []
    for name, emitter in _EMITTERS.items():
        path = target / f"{name}.csv"
        atomic_write_text(path, emitter(suite))
        written.append(path)
    return written
