"""ASCII figure rendering: bar charts, ranked profiles, heatmaps."""

from __future__ import annotations

import math
from collections.abc import Sequence


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    log_scale: bool = False,
    title: str | None = None,
) -> str:
    """Horizontal bar chart.

    Args:
        labels: one per bar.
        values: non-negative bar magnitudes.
        width: maximum bar width in characters.
        log_scale: scale bars by log10(1 + value), matching the paper's
            log-scale histograms.
        title: optional heading line.
    """
    if len(labels) != len(values):
        raise ValueError(
            f"{len(labels)} labels but {len(values)} values"
        )
    if any(value < 0 for value in values):
        raise ValueError("bar values must be non-negative")
    scaled = [math.log10(1 + value) if log_scale else value for value in values]
    peak = max(scaled, default=0.0)
    label_width = max((len(label) for label in labels), default=0)
    lines = [] if title is None else [title]
    for label, value, magnitude in zip(labels, values, scaled):
        bar_length = int(round(width * magnitude / peak)) if peak > 0 else 0
        display = f"{value:,.4g}" if isinstance(value, float) else f"{value:,}"
        lines.append(
            f"{label.ljust(label_width)} |{'█' * bar_length} {display}"
        )
    return "\n".join(lines)


def ranked_bars(
    profile: Sequence[tuple[object, float]],
    width: int = 40,
    log_scale: bool = True,
    title: str | None = None,
) -> str:
    """A Fig. 3/4-style ranked attention profile (highest bar first)."""
    labels = [str(item) for item, __ in profile]
    values = [value for __, value in profile]
    return bar_chart(labels, values, width=width, log_scale=log_scale, title=title)


def dendrogram_text(
    labels: Sequence[str],
    merges: Sequence[tuple[int, int, float]],
    width: int = 48,
    title: str | None = None,
) -> str:
    """Render a dendrogram as indented text, one leaf per line.

    Args:
        labels: leaf labels, indexed by leaf id.
        merges: (left, right, height) triples in SciPy id convention
            (merge i creates cluster ``len(labels) + i``).
        width: horizontal resolution for the height axis.
        title: optional heading.

    Leaves appear in tree order; each line shows the label and a bar whose
    length is proportional to the height at which the leaf's cluster last
    merged — adjacent short bars are tight clusters (Fig. 6's zones).
    """
    n = len(labels)
    if len(merges) != n - 1:
        raise ValueError(
            f"{n} leaves require {n - 1} merges, got {len(merges)}"
        )
    children: dict[int, tuple[int, int]] = {}
    join_height: dict[int, float] = {}
    for index, (left, right, height) in enumerate(merges):
        node = n + index
        children[node] = (left, right)
        join_height[left] = height
        join_height[right] = height

    order: list[int] = []
    stack = [n + len(merges) - 1] if merges else [0]
    while stack:
        node = stack.pop()
        if node < n:
            order.append(node)
        else:
            left, right = children[node]
            stack.append(right)
            stack.append(left)

    peak = max((height for __, __, height in merges), default=1.0) or 1.0
    label_width = max(len(label) for label in labels)
    lines = [] if title is None else [title]
    for leaf in order:
        height = join_height.get(leaf, peak)
        bar = int(round(width * height / peak))
        lines.append(
            f"{labels[leaf].rjust(label_width)} ├{'─' * bar}┤ {height:.4f}"
        )
    return "\n".join(lines)


def heatmap(
    labels: Sequence[str],
    matrix: Sequence[Sequence[float]],
    title: str | None = None,
) -> str:
    """Character-shade heatmap of a square matrix (Fig. 6's similarity).

    Darker glyphs mean larger values.  Row/column order is the caller's
    (e.g. dendrogram leaf order).
    """
    shades = " .:-=+*#%@"
    values = [list(map(float, row)) for row in matrix]
    n = len(labels)
    if any(len(row) != n for row in values) or len(values) != n:
        raise ValueError("heatmap requires a square matrix matching labels")
    flat = [cell for row in values for cell in row]
    low, high = min(flat), max(flat)
    span = high - low or 1.0

    def shade(value: float) -> str:
        index = int((value - low) / span * (len(shades) - 1))
        return shades[index]

    label_width = max(len(label) for label in labels)
    lines = [] if title is None else [title]
    header = " " * (label_width + 1) + "".join(label[:1] for label in labels)
    lines.append(header)
    for label, row in zip(labels, values):
        lines.append(
            label.rjust(label_width) + " " + "".join(shade(cell) for cell in row)
        )
    return "\n".join(lines)
