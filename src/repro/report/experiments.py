"""One entry point per paper table/figure.

:class:`ExperimentSuite` wraps a collected corpus and regenerates every
artifact of the paper's evaluation — Table I and Figs. 2–7 — sharing the
expensive intermediates (Û, K) across experiments.  Each ``run_*`` method
returns a result object carrying both the raw data (for tests/benches to
assert on) and a ``render()`` text view (for the examples and logs).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.bias import RepresentationBias
    from repro.analysis.co_occurrence import CoOccurrenceResult
    from repro.analysis.consistency import ZoneConsistency

from repro.config import AnalysisConfig
from repro.core.attention import AttentionMatrix, build_attention_matrix
from repro.core.characterize import (
    OrganCharacterization,
    RegionCharacterization,
    characterize_organs,
    characterize_regions,
)
from repro.core.relative_risk import StateOrganRisk, highlighted_organs, state_organ_risks
from repro.core.state_clusters import StateClustering, cluster_states
from repro.core.user_clusters import UserClustering, cluster_users
from repro.data.transplants import TRANSPLANTS_2012
from repro.dataset.corpus import TweetCorpus
from repro.dataset.stats import (
    DatasetStats,
    compute_stats,
    organ_mention_histogram,
    users_per_organ,
)
from repro.organs import ORGANS, Organ
from repro.pipeline.runner import PipelineReport
from repro.report.figures import bar_chart, dendrogram_text, heatmap, ranked_bars
from repro.report.tables import render_table
from repro.stats.correlation import CorrelationResult, spearman


@dataclass(frozen=True)
class Table1Result:
    """Table I: dataset statistics (plus pipeline provenance when known)."""

    stats: DatasetStats
    report: PipelineReport | None

    def render(self) -> str:
        parts = [
            render_table(
                ["Statistic", "Value"],
                self.stats.as_rows(),
                title="TABLE I — dataset statistics",
            )
        ]
        if self.report is not None:
            parts.append(
                render_table(
                    ["Pipeline stage", "Tweets"],
                    self.report.as_rows(),
                    title="Collection provenance",
                )
            )
        return "\n\n".join(parts)


@dataclass(frozen=True)
class Fig1Result:
    """Fig. 1: the query set Q = Context × Subject."""

    context_terms: tuple[str, ...]
    subject_terms: tuple[str, ...]
    n_queries: int

    def render(self) -> str:
        return "\n".join([
            "Fig. 1 — collection query set Q = Context × Subject",
            f"Context ({len(self.context_terms)}): "
            + ", ".join(self.context_terms),
            f"Subject ({len(self.subject_terms)}): "
            + ", ".join(self.subject_terms),
            f"|Q| = {self.n_queries} conjunctive phrases "
            "(every tweet matches ≥ 1 Context AND ≥ 1 Subject term)",
        ])


@dataclass(frozen=True)
class SecondaryResult:
    """The analyses §IV discusses without plotting: co-occurrence vs the
    dual-transplant pairs, the §V demographic bias, and the Fig. 5↔6
    consistency."""

    co_occurrence: "CoOccurrenceResult"
    bias: "RepresentationBias"
    consistency: "ZoneConsistency"

    def render(self) -> str:
        top = self.co_occurrence.top_pairs(k=5)
        pair_rows = [
            (f"{a.value}+{b.value}", count, f"{lift:.2f}")
            for a, b, count, lift in top
        ]
        from repro.geo.gazetteer import CensusRegion

        region_rows = [
            (region.value, f"{self.bias.region_ratio.get(region, 0.0):.2f}")
            for region in CensusRegion
            if region in self.bias.region_ratio
        ]
        return "\n\n".join([
            render_table(
                ["Organ pair", "Co-mentioning users", "Lift"],
                pair_rows,
                title="§IV-A — top organ co-mentions "
                f"(dual-transplant mean rank: "
                f"{self.co_occurrence.dual_transplant_rank():.1f})",
            ),
            render_table(
                ["Census region", "Representation ratio"],
                region_rows,
                title="§V — Twitter representation vs population "
                "(1.0 = proportional)",
            ),
            (
                "§IV-B2 — Fig.5↔Fig.6 consistency: "
                f"{self.consistency.pairs_co_clustered}/"
                f"{self.consistency.same_highlight_pairs} same-highlight "
                f"state pairs co-clustered "
                f"(expected {self.consistency.expected_co_clustered:.1f}; "
                f"enrichment {self.consistency.enrichment:.2f}×)"
            ),
        ])


@dataclass(frozen=True)
class Fig2Result:
    """Fig. 2: organ popularity and multi-organ mention histograms."""

    users_by_organ: dict[Organ, int]
    mention_histogram: dict[int, tuple[int, int]]
    correlation: CorrelationResult

    def popularity_order(self) -> list[Organ]:
        return sorted(self.users_by_organ, key=lambda o: -self.users_by_organ[o])

    def render(self) -> str:
        order = self.popularity_order()
        chart_a = bar_chart(
            [organ.value for organ in order],
            [float(self.users_by_organ[organ]) for organ in order],
            log_scale=True,
            title="Fig. 2(a) — users per organ (log scale)",
        )
        rows = [
            (k, tweets, users)
            for k, (tweets, users) in sorted(self.mention_histogram.items())
            if tweets or users
        ]
        chart_b = render_table(
            ["#organs", "tweets", "users"],
            rows,
            title="Fig. 2(b) — records mentioning exactly k organs",
        )
        corr = (
            f"Spearman r = {self.correlation.r:.2f} "
            f"(p = {self.correlation.p_value:.3f}) vs 2012 transplant counts"
        )
        return "\n\n".join([chart_a, chart_b, corr])


@dataclass(frozen=True)
class Fig3Result:
    """Fig. 3: organ co-attention characterization."""

    characterization: OrganCharacterization

    def render(self) -> str:
        parts = ["Fig. 3 — organ characterization (rows of K, Eq. 1 + 3)"]
        for organ in self.characterization.characterized_organs():
            parts.append(
                ranked_bars(
                    self.characterization.profile(organ),
                    title=f"[{organ.value}] focal users (ranked co-attention)",
                )
            )
        return "\n\n".join(parts)


@dataclass(frozen=True)
class Fig4Result:
    """Fig. 4: per-state organ signatures."""

    characterization: RegionCharacterization

    def render(self, states: tuple[str, ...] | None = None) -> str:
        chosen = states or self.characterization.states
        parts = ["Fig. 4 — state organ signatures (rows of K, Eq. 2 + 3)"]
        for state in chosen:
            parts.append(
                ranked_bars(
                    self.characterization.signature(state),
                    title=f"[{state}]",
                )
            )
        return "\n\n".join(parts)


@dataclass(frozen=True)
class Fig5Result:
    """Fig. 5: highlighted organs per state via relative risk."""

    highlights: dict[str, tuple[Organ, ...]]
    risks: list[StateOrganRisk]

    def render(self) -> str:
        rows = []
        for state, organs in self.highlights.items():
            label = ", ".join(organ.value for organ in organs) if organs else "—"
            rows.append((state, label))
        return render_table(
            ["State", "Highlighted organs (95% CI of RR above 1)"],
            rows,
            title="Fig. 5 — significant organ-conversation excess per state",
        )

    def significant_states(self) -> dict[str, tuple[Organ, ...]]:
        return {s: o for s, o in self.highlights.items() if o}


@dataclass(frozen=True)
class Fig6Result:
    """Fig. 6: hierarchical state clustering on Bhattacharyya affinity."""

    clustering: StateClustering

    def render(self, n_clusters: int = 4) -> str:
        order = self.clustering.leaf_order()
        index = {state: i for i, state in enumerate(self.clustering.states)}
        matrix = self.clustering.distance_matrix
        reordered = [
            [matrix[index[a], index[b]] for b in order] for a in order
        ]
        parts = [
            heatmap(
                order,
                reordered,
                title="Fig. 6 — state distance matrix (dendrogram order; "
                "darker = farther)",
            ),
            dendrogram_text(
                list(self.clustering.states),
                [
                    (merge.left, merge.right, merge.height)
                    for merge in self.clustering.dendrogram.merges
                ],
                title="Dendrogram (bar length = last merge height)",
            ),
            "Flat cut into zones: "
            + " | ".join(
                ",".join(zone) for zone in self.clustering.clusters(n_clusters)
            ),
        ]
        return "\n\n".join(parts)


@dataclass(frozen=True)
class Fig7Result:
    """Fig. 7: K-Means user clusters."""

    clustering: UserClustering

    def render(self) -> str:
        parts = [
            "Fig. 7 — K-Means user clusters "
            f"(k = {self.clustering.k}, silhouette = "
            f"{self.clustering.silhouette:.3f}, avg size = "
            f"{self.clustering.avg_cluster_size:.1f}, inertia = "
            f"{self.clustering.result.inertia:.2f})"
        ]
        sizes = self.clustering.relative_sizes()
        order = sorted(range(self.clustering.k), key=lambda c: -sizes[c])
        for cluster in order:
            parts.append(
                ranked_bars(
                    self.clustering.cluster_profile(cluster),
                    title=f"[cluster {cluster}] {sizes[cluster]:.1%} of users, "
                    f"{self.clustering.n_focus_organs(cluster)} focus organ(s)",
                )
            )
        return "\n\n".join(parts)


class ExperimentSuite:
    """All paper experiments over one corpus, with shared intermediates."""

    def __init__(
        self,
        corpus: TweetCorpus,
        report: PipelineReport | None = None,
        config: AnalysisConfig | None = None,
    ):
        self.corpus = corpus
        self.report = report
        self.config = config or AnalysisConfig()

    @cached_property
    def attention(self) -> AttentionMatrix:
        return build_attention_matrix(self.corpus)

    @cached_property
    def organ_characterization(self) -> OrganCharacterization:
        return characterize_organs(self.corpus)

    @cached_property
    def region_characterization(self) -> RegionCharacterization:
        return characterize_regions(self.corpus)

    def run_table1(self) -> Table1Result:
        return Table1Result(stats=compute_stats(self.corpus), report=self.report)

    def run_fig1(self) -> Fig1Result:
        from repro.nlp.keywords import CONTEXT_TERMS, SUBJECT_TERMS, build_query_set

        return Fig1Result(
            context_terms=CONTEXT_TERMS,
            subject_terms=SUBJECT_TERMS,
            n_queries=len(build_query_set()),
        )

    def run_secondary(self) -> SecondaryResult:
        from repro.analysis.bias import representation_bias
        from repro.analysis.co_occurrence import organ_co_occurrence
        from repro.analysis.consistency import highlight_cluster_consistency

        clustering = cluster_states(
            self.region_characterization, self.config.state_clustering
        )
        return SecondaryResult(
            co_occurrence=organ_co_occurrence(self.corpus, level="user"),
            bias=representation_bias(self.corpus),
            consistency=highlight_cluster_consistency(
                clustering,
                highlighted_organs(self.corpus, self.config.relative_risk),
            ),
        )

    def run_fig2(self) -> Fig2Result:
        users_by_organ = users_per_organ(self.corpus)
        twitter_counts = [float(users_by_organ[organ]) for organ in ORGANS]
        transplant_counts = [float(TRANSPLANTS_2012[organ]) for organ in ORGANS]
        return Fig2Result(
            users_by_organ=users_by_organ,
            mention_histogram=organ_mention_histogram(self.corpus),
            correlation=spearman(twitter_counts, transplant_counts),
        )

    def run_fig3(self) -> Fig3Result:
        return Fig3Result(characterization=self.organ_characterization)

    def run_fig4(self) -> Fig4Result:
        return Fig4Result(characterization=self.region_characterization)

    def run_fig5(self) -> Fig5Result:
        return Fig5Result(
            highlights=highlighted_organs(self.corpus, self.config.relative_risk),
            risks=state_organ_risks(self.corpus, self.config.relative_risk),
        )

    def run_fig6(self) -> Fig6Result:
        return Fig6Result(
            clustering=cluster_states(
                self.region_characterization, self.config.state_clustering
            )
        )

    def run_fig7(self) -> Fig7Result:
        return Fig7Result(
            clustering=cluster_users(self.attention, self.config.user_clustering)
        )
