"""Programmatic reproduction verdicts.

EXPERIMENTS.md as executable code: every shape claim the paper makes is a
named check against a collected corpus, each returning pass/fail with the
measured evidence.  ``python -m repro reproduce`` runs the full battery.

Checks assert *shape* (orders, signs, anomaly identities), never absolute
counts — the same criteria the benchmark suite enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.paper import (
    PAPER_ORGAN_CO_ATTENTION,
    PAPER_SPEARMAN_R,
    PAPER_TWITTER_POPULARITY_ORDER,
)
from repro.geo.gazetteer import CensusRegion, state_by_abbrev
from repro.organs import Organ
from repro.report.experiments import ExperimentSuite
from repro.report.tables import render_table


@dataclass(frozen=True, slots=True)
class Verdict:
    """Outcome of one reproduction check.

    Attributes:
        check: short identifier (matches EXPERIMENTS.md rows).
        artifact: which paper artifact the check belongs to.
        passed: whether the claim reproduced.
        evidence: human-readable measured values.
    """

    check: str
    artifact: str
    passed: bool
    evidence: str


@dataclass(frozen=True)
class ReproductionReport:
    """All verdicts for one corpus."""

    verdicts: tuple[Verdict, ...]

    @property
    def n_passed(self) -> int:
        return sum(verdict.passed for verdict in self.verdicts)

    @property
    def all_passed(self) -> bool:
        return self.n_passed == len(self.verdicts)

    def render(self) -> str:
        rows = [
            (
                "PASS" if verdict.passed else "FAIL",
                verdict.artifact,
                verdict.check,
                verdict.evidence,
            )
            for verdict in self.verdicts
        ]
        table = render_table(
            ["", "Artifact", "Check", "Evidence"],
            rows,
            title="Reproduction verdicts (shape criteria)",
        )
        summary = (
            f"\n{self.n_passed}/{len(self.verdicts)} checks passed"
            + ("" if self.all_passed else " — see FAIL rows")
        )
        return table + summary


def evaluate_reproduction(suite: ExperimentSuite) -> ReproductionReport:
    """Run every shape check against a suite's corpus."""
    verdicts: list[Verdict] = []

    # --- Fig. 2 ---
    fig2 = suite.run_fig2()
    order = tuple(fig2.popularity_order())
    verdicts.append(Verdict(
        check="popularity order heart…intestine",
        artifact="Fig.2a",
        passed=order == PAPER_TWITTER_POPULARITY_ORDER,
        evidence=" > ".join(organ.value for organ in order),
    ))
    correlation = fig2.correlation
    verdicts.append(Verdict(
        check=f"Spearman ≈ {PAPER_SPEARMAN_R} vs transplants, p < .05",
        artifact="Fig.2a",
        passed=abs(correlation.r - PAPER_SPEARMAN_R) <= 0.08
        and correlation.significant,
        evidence=f"r = {correlation.r:.2f}, p = {correlation.p_value:.3f}",
    ))
    histogram = fig2.mention_histogram
    single_ok = histogram[1][0] > histogram[1][1]
    multi_ok = all(
        histogram[k][0] <= histogram[k][1] for k in range(2, 7)
    )
    verdicts.append(Verdict(
        check="tweets > users only at k = 1 mention",
        artifact="Fig.2b",
        passed=single_ok and multi_ok,
        evidence=f"k=1: {histogram[1][0]} tweets vs {histogram[1][1]} users",
    ))

    # --- Table I shape ---
    stats = suite.run_table1().stats
    verdicts.append(Verdict(
        check="organs/user exceeds organs/tweet",
        artifact="Table I",
        passed=stats.organs_per_user > stats.organs_per_tweet,
        evidence=f"{stats.organs_per_user:.2f} vs {stats.organs_per_tweet:.2f}",
    ))

    # --- Fig. 3 ---
    characterization = suite.organ_characterization
    hits = []
    for focal, expected in PAPER_ORGAN_CO_ATTENTION.items():
        if focal is Organ.INTESTINE:
            continue  # the paper's own unreliability caveat
        measured = characterization.top_co_organ(focal)
        hits.append((focal, measured, measured is expected))
    verdicts.append(Verdict(
        check="top co-organs match §IV-A (excl. intestine)",
        artifact="Fig.3",
        passed=all(ok for __, __, ok in hits),
        evidence=", ".join(
            f"{focal.value}→{measured.value}" for focal, measured, __ in hits
        ),
    ))
    verdicts.append(Verdict(
        check="co-occurrences not reciprocal",
        artifact="Fig.3",
        passed=not all(characterization.reciprocity().values()),
        evidence=f"{sum(characterization.reciprocity().values())} of "
        f"{len(characterization.reciprocity())} reciprocal",
    ))

    # --- Fig. 4 ---
    regions = suite.region_characterization
    heart_first = sum(
        regions.signature(state)[0][0] is Organ.HEART
        for state in regions.states
    )
    verdicts.append(Verdict(
        check="heart first in most states",
        artifact="Fig.4",
        passed=heart_first >= 0.6 * len(regions.states),
        evidence=f"{heart_first}/{len(regions.states)} states heart-first",
    ))

    # --- Fig. 5 ---
    highlights = suite.run_fig5().highlights
    ks = highlights.get("KS", ())
    verdicts.append(Verdict(
        check="Kansas kidney excess",
        artifact="Fig.5",
        passed=Organ.KIDNEY in ks,
        evidence=f"KS: {', '.join(o.value for o in ks) or 'none'}",
    ))
    midwest_kidney = [
        state
        for state, organs in highlights.items()
        if Organ.KIDNEY in organs
        and state_by_abbrev(state).region is CensusRegion.MIDWEST
    ]
    verdicts.append(Verdict(
        check="Kansas unique in the Midwest",
        artifact="Fig.5",
        passed=midwest_kidney == ["KS"],
        evidence=f"Midwest kidney states: {midwest_kidney or 'none'}",
    ))
    verdicts.append(Verdict(
        check="some states have no highlighted organ",
        artifact="Fig.5",
        passed=any(not organs for organs in highlights.values()),
        evidence=f"{sum(1 for o in highlights.values() if not o)} states "
        "unhighlighted",
    ))

    # --- Fig. 6 ---
    from repro.analysis.consistency import highlight_cluster_consistency
    from repro.core.state_clusters import cluster_states

    clustering = cluster_states(regions, suite.config.state_clustering)
    consistency = highlight_cluster_consistency(clustering, highlights)
    verdicts.append(Verdict(
        check="clusters consistent with highlights",
        artifact="Fig.6",
        passed=consistency.enrichment > 1.0
        or consistency.same_highlight_pairs < 3,
        evidence=f"enrichment {consistency.enrichment:.2f}× over "
        f"{consistency.same_highlight_pairs} pairs",
    ))

    # --- Fig. 7 ---
    fig7 = suite.run_fig7().clustering
    verdicts.append(Verdict(
        check="k = 12 silhouette high (paper: 0.953)",
        artifact="Fig.7",
        passed=fig7.silhouette > 0.85,
        evidence=f"silhouette = {fig7.silhouette:.3f}",
    ))
    import numpy as np

    dominant = {int(np.argmax(fig7.result.centers[c])) for c in range(fig7.k)}
    verdicts.append(Verdict(
        check="every organ owns a cluster",
        artifact="Fig.7",
        passed=dominant == set(range(6)),
        evidence=f"{len(dominant)}/6 organs dominate a cluster",
    ))

    return ReproductionReport(verdicts=tuple(verdicts))
