"""Text rendering of the paper's tables and figures.

Plotting libraries are unavailable offline, so every figure is rendered as
aligned text: bar charts for the histogram figures, a heatmap for the
similarity matrix, and a state table for the choropleth.  The experiment
entry points in :mod:`repro.report.experiments` regenerate each paper
artifact end to end.
"""

from repro.report.figures import bar_chart, dendrogram_text, heatmap, ranked_bars
from repro.report.tables import render_table

__all__ = [
    "bar_chart",
    "dendrogram_text",
    "heatmap",
    "ranked_bars",
    "render_table",
]
