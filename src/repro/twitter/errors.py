"""Error types for the simulated Twitter stream."""

from __future__ import annotations

from repro.errors import ReproError


class StreamError(ReproError):
    """Base class for streaming failures."""


class StreamClosedError(StreamError):
    """The stream was read after being closed."""


class InvalidTrackError(StreamError):
    """A ``track`` phrase list is empty or malformed."""
