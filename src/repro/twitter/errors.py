"""Error types for the simulated Twitter stream."""

from __future__ import annotations

from repro.errors import ReproError


class StreamError(ReproError):
    """Base class for streaming failures."""


class StreamClosedError(StreamError):
    """The stream was read after being closed."""


class InvalidTrackError(StreamError):
    """A ``track`` phrase list is empty or malformed."""


class StreamDisconnectError(StreamError):
    """The connection dropped mid-stream (network-level failure).

    Models a TCP reset or half-open connection dying — the dominant
    failure mode of a 385-day Streaming API collection.  Twitter's
    reconnect guidance for this class is *linear* backoff.
    """


class HTTPStreamError(StreamError):
    """An HTTP-level rejection when (re)connecting to the stream.

    Twitter's reconnect guidance for this class is *exponential* backoff.

    Attributes:
        status: the HTTP status code (e.g. 503).
    """

    def __init__(self, status: int, message: str | None = None):
        super().__init__(message or f"stream connect rejected: HTTP {status}")
        self.status = status


class RateLimitError(HTTPStreamError):
    """HTTP 420 "Enhance Your Calm": the client is being rate limited.

    Twitter's guidance: exponential backoff starting at a full minute.
    """

    def __init__(self, message: str | None = None):
        super().__init__(420, message or "stream connect rejected: HTTP 420")
