"""Tweet, user-profile, and place records.

These mirror the subset of the Twitter API v1.1 object model the paper's
pipeline reads: tweet text and timestamp, the author's self-reported
profile location, and the optional geo-tag ``place`` attached to ~1.4% of
tweets.  Records are immutable and JSON-serializable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any

from repro.errors import SerializationError


@dataclass(frozen=True, slots=True)
class Place:
    """A Twitter geo-tag place (attached to a minority of tweets).

    Attributes:
        full_name: Human-readable place name, e.g. ``"Wichita, KS"``.
        country_code: ISO country code, e.g. ``"US"``.
    """

    full_name: str
    country_code: str

    def to_dict(self) -> dict[str, Any]:
        return {"full_name": self.full_name, "country_code": self.country_code}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Place":
        try:
            return cls(full_name=data["full_name"], country_code=data["country_code"])
        except KeyError as exc:
            raise SerializationError(f"place record missing field: {exc}") from exc


@dataclass(frozen=True, slots=True)
class UserProfile:
    """A Twitter user profile.

    Attributes:
        user_id: Numeric user identifier (stable across tweets).
        screen_name: Handle without the ``@``.
        location: Self-reported free-text location field; may be empty.
    """

    user_id: int
    screen_name: str
    location: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "user_id": self.user_id,
            "screen_name": self.screen_name,
            "location": self.location,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "UserProfile":
        try:
            return cls(
                user_id=int(data["user_id"]),
                screen_name=data["screen_name"],
                location=data.get("location", ""),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed user record: {exc}") from exc


@dataclass(frozen=True, slots=True)
class Tweet:
    """One tweet as delivered by the (simulated) Streaming API.

    Attributes:
        tweet_id: Numeric tweet identifier.
        user: Author profile snapshot at delivery time.
        text: Tweet text (≤ 140 characters in the paper's era).
        created_at: UTC timestamp.
        place: Geo-tag place, present on ~1.4% of tweets.
        in_reply_to: tweet id this tweet replies to, or ``None`` —
            reply chains are the conversation structure of the paper's
            refs [13]/[22].
    """

    tweet_id: int
    user: UserProfile
    text: str
    created_at: datetime = field(
        default_factory=lambda: datetime(2015, 4, 22, tzinfo=timezone.utc)
    )
    place: Place | None = None
    in_reply_to: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "tweet_id": self.tweet_id,
            "user": self.user.to_dict(),
            "text": self.text,
            "created_at": self.created_at.isoformat(),
            "place": self.place.to_dict() if self.place is not None else None,
            "in_reply_to": self.in_reply_to,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Tweet":
        try:
            place_data = data.get("place")
            reply = data.get("in_reply_to")
            return cls(
                tweet_id=int(data["tweet_id"]),
                user=UserProfile.from_dict(data["user"]),
                text=data["text"],
                created_at=datetime.fromisoformat(data["created_at"]),
                place=Place.from_dict(place_data) if place_data else None,
                in_reply_to=int(reply) if reply is not None else None,
            )
        except SerializationError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SerializationError(f"malformed tweet record: {exc}") from exc
