"""Filtered stream with Twitter ``track`` semantics.

Reproduces the matching rules of the Streaming API ``statuses/filter``
endpoint the paper used: each track phrase is an AND of its space-separated
terms, the phrase list is an OR, matching is case-insensitive against the
tweet's tokenized text, and terms match inside hashtags.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.nlp.automaton import TermVocabulary
from repro.nlp.tokenize import present_terms
from repro.twitter.errors import InvalidTrackError, StreamClosedError
from repro.twitter.models import Tweet


class TrackFilter:
    """Twitter ``track`` phrase matcher.

    Matching runs on the automaton hot path: term presence is resolved
    by a compiled :class:`repro.nlp.automaton.TermVocabulary` (one
    tokenizer sweep + one automaton sweep per hashtag, instead of a
    Python loop over every vocabulary term), and phrases are indexed by
    an *anchor* term so only phrases whose anchor is present are subset-
    checked.  :meth:`matches_naive` keeps the original per-term scan as
    the equivalence oracle.

    Args:
        phrases: Track phrases; each phrase's space-separated terms must all
            appear in a tweet for the phrase to match, and any matching
            phrase admits the tweet.

    Raises:
        InvalidTrackError: on an empty phrase list or a blank phrase.
    """

    def __init__(self, phrases: Iterable[str]):
        parsed = [tuple(phrase.lower().split()) for phrase in phrases]
        if not parsed:
            raise InvalidTrackError("track phrase list is empty")
        if any(not terms for terms in parsed):
            raise InvalidTrackError("track phrase list contains a blank phrase")
        self._phrases: tuple[tuple[str, ...], ...] = tuple(parsed)
        self._phrase_sets = tuple(frozenset(terms) for terms in parsed)
        # Terms are tested for presence once per tweet; phrases are then
        # checked as subset tests against the present-term set.
        self._vocabulary = tuple(
            sorted({term for terms in self._phrases for term in terms})
        )
        self._term_vocabulary = TermVocabulary(self._vocabulary)
        # A phrase can only match when its anchor term (lexicographic
        # minimum — any fixed member works) is present, so the per-tweet
        # subset checks shrink from every phrase to the phrases anchored
        # on a present term.
        anchored: dict[str, list[frozenset[str]]] = {}
        for phrase_set in self._phrase_sets:
            anchored.setdefault(min(phrase_set), []).append(phrase_set)
        self._phrases_by_anchor = {
            anchor: tuple(sets) for anchor, sets in anchored.items()
        }

    @property
    def phrases(self) -> tuple[tuple[str, ...], ...]:
        return self._phrases

    def matches(self, text: str) -> bool:
        """True when any track phrase fully matches the tweet text.

        Terms match tokens exactly and substring-match only inside
        hashtag bodies (``#kidneydonor`` matches ``kidney donor``); a
        term embedded in a longer plain word (``organized``) does not
        count.
        """
        present = self._term_vocabulary.present(text)
        if not present:
            return False
        phrases_by_anchor = self._phrases_by_anchor
        for term in present:
            for phrase_set in phrases_by_anchor.get(term, ()):
                if phrase_set <= present:
                    return True
        return False

    def matches_naive(self, text: str) -> bool:
        """Reference implementation via :func:`present_terms`.

        Kept off the hot path as the oracle the automaton path is
        property-tested against.
        """
        present = present_terms(text, self._vocabulary)
        if not present:
            return False
        return any(terms <= present for terms in self._phrase_sets)


class FilteredStream:
    """A ``statuses/filter``-like stream over a tweet source.

    Wraps any iterable of :class:`Tweet` (normally the firehose of a
    :class:`repro.synth.world.SyntheticWorld`) and yields only tweets that
    match the track filter, counting both delivered and dropped tweets so
    collection yield can be reported the way Table I's footnote does.

    The stream is single-use, like a network stream: iterating after
    :meth:`close` raises :class:`StreamClosedError`.
    """

    def __init__(self, source: Iterable[Tweet], track: Iterable[str]):
        self._source = iter(source)
        self._filter = TrackFilter(track)
        self._closed = False
        self.delivered = 0
        self.dropped = 0

    def __iter__(self) -> Iterator[Tweet]:
        return self

    def __next__(self) -> Tweet:
        if self._closed:
            raise StreamClosedError("stream is closed")
        for tweet in self._source:
            if self._filter.matches(tweet.text):
                self.delivered += 1
                return tweet
            self.dropped += 1
        raise StopIteration

    def close(self) -> None:
        """Close the stream; further reads raise."""
        self._closed = True

    def __enter__(self) -> "FilteredStream":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()
