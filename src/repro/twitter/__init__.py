"""Simulated Twitter platform substrate.

The paper consumes the public Twitter Streaming API, which is no longer
openly available (and the 2015–16 dataset was never released).  This
package models the platform surface the paper's pipeline touched: tweet and
user-profile records (:mod:`repro.twitter.models`), a filtered stream
with Twitter ``track`` keyword semantics (:mod:`repro.twitter.stream`),
a fault-injecting substrate reproducing the Streaming API failure
taxonomy (:mod:`repro.twitter.faults`), and a resilient client that
provably recovers from it (:mod:`repro.twitter.resilient`).
The content flowing through it comes from :mod:`repro.synth`.
"""

from repro.twitter.errors import (
    HTTPStreamError,
    RateLimitError,
    StreamClosedError,
    StreamDisconnectError,
    StreamError,
)
from repro.twitter.faults import FaultPlan, FaultySource
from repro.twitter.models import Place, Tweet, UserProfile
from repro.twitter.resilient import (
    DeadLetter,
    ReliabilityReport,
    ResilientStream,
)
from repro.twitter.stream import FilteredStream, TrackFilter

__all__ = [
    "DeadLetter",
    "FaultPlan",
    "FaultySource",
    "FilteredStream",
    "HTTPStreamError",
    "Place",
    "RateLimitError",
    "ReliabilityReport",
    "ResilientStream",
    "StreamClosedError",
    "StreamDisconnectError",
    "StreamError",
    "TrackFilter",
    "Tweet",
    "UserProfile",
]
