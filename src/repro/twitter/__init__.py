"""Simulated Twitter platform substrate.

The paper consumes the public Twitter Streaming API, which is no longer
openly available (and the 2015–16 dataset was never released).  This
package models the platform surface the paper's pipeline touched: tweet and
user-profile records (:mod:`repro.twitter.models`) and a filtered stream
with Twitter ``track`` keyword semantics (:mod:`repro.twitter.stream`).
The content flowing through it comes from :mod:`repro.synth`.
"""

from repro.twitter.errors import StreamClosedError, StreamError
from repro.twitter.models import Place, Tweet, UserProfile
from repro.twitter.stream import FilteredStream, TrackFilter

__all__ = [
    "FilteredStream",
    "Place",
    "StreamClosedError",
    "StreamError",
    "TrackFilter",
    "Tweet",
    "UserProfile",
]
