"""Deterministic fault injection for the simulated Streaming API.

The paper's dataset came from 385 days of continuous Streaming API
collection; any collector surviving that window rides out hundreds of
disconnects, HTTP 420 rate-limit windows, stalls, and torn payloads.  The
plain :class:`repro.twitter.stream.FilteredStream` substrate is perfectly
reliable, so none of that failure handling would ever be exercised —
this module makes the substrate *able to fail* the way production does.

:class:`FaultySource` wraps any tweet iterable and exposes the
connection-oriented surface of the real Streaming API: :meth:`connect`
returns an iterator of raw payload *frames* (JSON strings, plus blank
keep-alive frames), and both connecting and reading can fail.  Every
fault class is independently configurable through :class:`FaultPlan` and
every decision is drawn from a seeded RNG, so a chaos run is exactly
reproducible.

Injected failure taxonomy (mirroring the documented Streaming API):

* **Disconnects** — :class:`repro.twitter.errors.StreamDisconnectError`
  raised mid-read (TCP reset).
* **HTTP 420 / 503** — :class:`repro.twitter.errors.RateLimitError` /
  :class:`repro.twitter.errors.HTTPStreamError` raised from
  :meth:`FaultySource.connect`.
* **Stalls** — bursts of blank keep-alive frames, mirroring the
  condition behind Twitter's ``stall_warning``.
* **Backfill duplicates and bounded out-of-order delivery** — each
  reconnect re-delivers the last ``backfill_depth`` records, shuffled
  together with up to ``reorder_span`` new records.
* **Torn frames** — a payload truncated mid-JSON immediately followed by
  a disconnect; the intact record is re-delivered by reconnect backfill.
* **Garbage frames** — malformed payloads that never correspond to a
  record (noise a long-lived HTTP stream inevitably delivers).

The invariant the design protects: *no fault ever loses a record*.  Torn
records reappear intact in the next backfill; garbage frames are extra
frames, never replacements.  A client that reconnects, deduplicates, and
reorders (:class:`repro.twitter.resilient.ResilientStream`) therefore
recovers the exact fault-free stream.
"""

from __future__ import annotations

import json
import random
from collections import deque
from collections.abc import Iterable, Iterator
from dataclasses import dataclass, fields
from typing import Any

from repro.errors import ConfigError
from repro.twitter.errors import (
    HTTPStreamError,
    RateLimitError,
    StreamDisconnectError,
)
from repro.twitter.models import Tweet

#: A blank keep-alive frame, like the newline keep-alives Twitter sends.
KEEPALIVE: str = ""

_RATE_FIELDS = (
    "disconnect_rate",
    "rate_limit_rate",
    "http_error_rate",
    "stall_rate",
    "keepalive_rate",
    "garbage_rate",
    "truncate_rate",
)


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Per-class fault rates and shapes for one chaos run.

    All rates are per-opportunity probabilities: connect-time rates are
    drawn on every connection attempt, the rest before each new record.
    A plan with every rate at zero is a perfectly reliable substrate.

    Attributes:
        seed: RNG seed; the whole fault schedule derives from it.
        disconnect_rate: mid-stream TCP reset probability.
        rate_limit_rate: HTTP 420 rejection probability on (re)connect.
        http_error_rate: HTTP 503 rejection probability on (re)connect.
        stall_rate: probability of a stall burst (``stall_ticks``
            consecutive keep-alives) before the next record.
        stall_ticks: keep-alive frames per stall burst.
        keepalive_rate: probability of a single benign keep-alive.
        garbage_rate: probability of an injected malformed frame.
        truncate_rate: probability a record's frame is torn mid-JSON and
            the connection reset (the record returns via backfill).
        backfill_depth: records re-delivered after each reconnect.
        reorder_span: new records shuffled into the backfill window; the
            maximum out-of-order displacement is
            ``backfill_depth + reorder_span - 1``.
        max_connect_failures: cap on *consecutive* connect rejections, so
            a chaos run always makes progress.
    """

    seed: int = 0
    disconnect_rate: float = 0.0
    rate_limit_rate: float = 0.0
    http_error_rate: float = 0.0
    stall_rate: float = 0.0
    stall_ticks: int = 12
    keepalive_rate: float = 0.0
    garbage_rate: float = 0.0
    truncate_rate: float = 0.0
    backfill_depth: int = 8
    reorder_span: int = 4
    max_connect_failures: int = 4

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        if self.stall_ticks < 1:
            raise ConfigError(f"stall_ticks must be >= 1, got {self.stall_ticks}")
        if self.backfill_depth < 0:
            raise ConfigError(
                f"backfill_depth must be >= 0, got {self.backfill_depth}"
            )
        if self.reorder_span < 0:
            raise ConfigError(
                f"reorder_span must be >= 0, got {self.reorder_span}"
            )
        if self.max_connect_failures < 1:
            raise ConfigError(
                "max_connect_failures must be >= 1, got "
                f"{self.max_connect_failures}"
            )
        if self.truncate_rate > 0.0 and self.backfill_depth < 1:
            raise ConfigError(
                "truncate_rate > 0 requires backfill_depth >= 1 "
                "(torn records are recovered from backfill)"
            )

    @property
    def max_displacement(self) -> int:
        """Upper bound on out-of-order displacement this plan can cause."""
        return max(0, self.backfill_depth + self.reorder_span - 1)

    @property
    def any_faults(self) -> bool:
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    @classmethod
    def none(cls, seed: int = 0) -> "FaultPlan":
        """A perfectly reliable plan (every fault rate zero)."""
        return cls(seed=seed)

    @classmethod
    def chaos(cls, seed: int = 0) -> "FaultPlan":
        """Every fault class enabled at moderate rates — the default for
        ``repro collect --chaos``."""
        return cls(
            seed=seed,
            disconnect_rate=0.01,
            rate_limit_rate=0.25,
            http_error_rate=0.25,
            stall_rate=0.005,
            keepalive_rate=0.02,
            garbage_rate=0.005,
            truncate_rate=0.005,
        )

    def describe(self) -> str:
        active = ", ".join(
            f"{name}={getattr(self, name)}"
            for name in _RATE_FIELDS
            if getattr(self, name) > 0.0
        )
        return f"FaultPlan(seed={self.seed}, {active or 'no faults'})"


@dataclass(slots=True)
class InjectionLog:
    """What a :class:`FaultySource` actually injected, for accounting.

    Frame-level counters tick at delivery time and exception counters at
    raise time, so a resilient client's
    :class:`~repro.twitter.resilient.ReliabilityReport` can be reconciled
    against this log fault-for-fault.
    """

    connections: int = 0
    disconnects: int = 0
    rate_limited: int = 0
    http_errors: int = 0
    stalls: int = 0
    keepalives: int = 0
    garbage_frames: int = 0
    truncated_frames: int = 0
    duplicates: int = 0
    shuffled_windows: int = 0

    def as_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}


class _Connection:
    """One live connection to a :class:`FaultySource`.

    Iterating yields raw frames; the source decides when this connection
    dies.  A superseded or dropped connection raises
    :class:`StreamDisconnectError` forever.
    """

    __slots__ = ("_source", "queue", "dead", "delivered_new", "drop_after_frame")

    def __init__(self, source: "FaultySource"):
        self._source = source
        self.queue: deque[tuple[str, int, str]] = deque()
        self.dead = False
        self.delivered_new = 0
        self.drop_after_frame = False

    def __iter__(self) -> Iterator[str]:
        return self

    def __next__(self) -> str:
        return self._source._next_frame(self)


class FaultySource:
    """A connection-oriented, fault-injecting wrapper over a tweet source.

    Args:
        source: the underlying tweet iterable (e.g. a synthetic firehose).
        plan: fault rates and shapes; all randomness derives from
            ``plan.seed``.

    The wrapper serializes tweets to JSON payload frames, so malformed
    and truncated payloads are representable.  Clients drive it like the
    real Streaming API::

        conn = faulty.connect()        # may raise RateLimitError / HTTPStreamError
        for frame in conn:             # may raise StreamDisconnectError
            ...                        # frame: JSON payload or KEEPALIVE

    ``StopIteration`` from a connection means the source is exhausted
    (the simulated collection window ended), never a failure.
    """

    def __init__(self, source: Iterable[Tweet], plan: FaultPlan | None = None):
        self._source = iter(source)
        self.plan = plan or FaultPlan.none()
        self._rng = random.Random(self.plan.seed)
        self._history: deque[tuple[int, str]] = deque(
            maxlen=max(1, self.plan.backfill_depth)
        )
        self._pending: deque[tuple[int, str]] = deque()
        self._connection: _Connection | None = None
        self._ever_connected = False
        self._drained = False
        self._connect_failures = 0
        self.injected = InjectionLog()

    @property
    def exhausted(self) -> bool:
        """True once every underlying tweet has been handed out."""
        return self._drained and not self._pending

    def connect(self) -> _Connection:
        """Open a new connection, superseding any previous one.

        Raises:
            RateLimitError: simulated HTTP 420 rejection.
            HTTPStreamError: simulated HTTP 503 rejection.
        """
        if self._connection is not None:
            self._recover_undelivered(self._connection)
            self._connection.dead = True
            self._connection = None
        self._maybe_reject_connect()
        conn = _Connection(self)
        if self._ever_connected:
            self._plan_backfill(conn)
        self._connection = conn
        self._ever_connected = True
        self.injected.connections += 1
        return conn

    # -- connection internals -------------------------------------------

    def _maybe_reject_connect(self) -> None:
        if self._connect_failures >= self.plan.max_connect_failures:
            self._connect_failures = 0
            return
        roll = self._rng.random()
        if self.plan.rate_limit_rate and roll < self.plan.rate_limit_rate:
            self._connect_failures += 1
            self.injected.rate_limited += 1
            raise RateLimitError()
        roll = self._rng.random()
        if self.plan.http_error_rate and roll < self.plan.http_error_rate:
            self._connect_failures += 1
            self.injected.http_errors += 1
            raise HTTPStreamError(503)
        self._connect_failures = 0

    def _plan_backfill(self, conn: _Connection) -> None:
        """Queue the reconnect window: backfill duplicates plus up to
        ``reorder_span`` new records, shuffled together."""
        window: list[tuple[str, int, str]] = [
            ("dup", tweet_id, payload) for tweet_id, payload in self._history
        ]
        for _ in range(self.plan.reorder_span):
            item = self._pull()
            if item is None:
                break
            window.append(("new", item[0], item[1]))
        if len(window) > 1:
            self._rng.shuffle(window)
            self.injected.shuffled_windows += 1
        conn.queue.extend(window)

    def _recover_undelivered(self, conn: _Connection) -> None:
        """Return pulled-but-undelivered new records to the pending queue
        (in id order) so an abandoned connection never loses records."""
        leftovers = sorted(
            (tweet_id, payload)
            for kind, tweet_id, payload in conn.queue
            if kind == "new"
        )
        conn.queue.clear()
        self._pending.extendleft(reversed(leftovers))

    def _pull(self) -> tuple[int, str] | None:
        if self._pending:
            return self._pending.popleft()
        if self._drained:
            return None
        try:
            tweet = next(self._source)
        except StopIteration:
            self._drained = True
            return None
        return tweet.tweet_id, json.dumps(tweet.to_dict(), ensure_ascii=False)

    def _next_frame(self, conn: _Connection) -> str:
        if conn.dead or conn is not self._connection:
            raise StreamDisconnectError("connection is no longer live")
        if conn.drop_after_frame:
            conn.dead = True
            self.injected.disconnects += 1
            raise StreamDisconnectError("connection reset by peer (torn frame)")
        if conn.queue:
            return self._deliver(conn, conn.queue.popleft())
        plan, rng = self.plan, self._rng
        # Fault draws happen only between new records (the reconnect
        # window above is delivered atomically), so every fault requires
        # progress since the previous one and a chaos run terminates.
        if plan.keepalive_rate and rng.random() < plan.keepalive_rate:
            self.injected.keepalives += 1
            return KEEPALIVE
        if plan.stall_rate and rng.random() < plan.stall_rate:
            self.injected.stalls += 1
            self.injected.keepalives += plan.stall_ticks
            conn.queue.extend(
                ("keepalive", -1, KEEPALIVE)
                for _ in range(plan.stall_ticks - 1)
            )
            return KEEPALIVE
        if plan.garbage_rate and rng.random() < plan.garbage_rate:
            self.injected.garbage_frames += 1
            return self._garbage_frame()
        if (
            conn.delivered_new > 0
            and plan.disconnect_rate
            and rng.random() < plan.disconnect_rate
        ):
            conn.dead = True
            self.injected.disconnects += 1
            raise StreamDisconnectError("connection reset by peer")
        item = self._pull()
        if item is None:
            raise StopIteration
        tweet_id, payload = item
        self._history.append((tweet_id, payload))
        conn.delivered_new += 1
        if plan.truncate_rate and rng.random() < plan.truncate_rate:
            self.injected.truncated_frames += 1
            conn.drop_after_frame = True
            cut = rng.randrange(1, max(2, len(payload) - 1))
            return payload[:cut]
        return payload

    def _deliver(self, conn: _Connection, frame: tuple[str, int, str]) -> str:
        kind, tweet_id, payload = frame
        if kind == "dup":
            self.injected.duplicates += 1
        elif kind == "new":
            self._history.append((tweet_id, payload))
            conn.delivered_new += 1
        return payload

    def _garbage_frame(self) -> str:
        variant = self._rng.randrange(3)
        if variant == 0:
            return '{"tweet_id": 99, "user"'  # torn-looking JSON
        if variant == 1:
            return "{this is not json}"
        return '{"event": "limit", "track": 12}'  # valid JSON, not a tweet


def encode_frames(tweets: Iterable[Tweet]) -> Iterator[str]:
    """Serialize tweets to the payload-frame representation clients read.

    Convenience for tests that compare a fault-free frame stream with a
    faulty one.
    """
    for tweet in tweets:
        yield json.dumps(tweet.to_dict(), ensure_ascii=False)


def decode_frame(frame: str) -> Tweet:
    """Decode one payload frame back into a :class:`Tweet`.

    Raises:
        repro.errors.SerializationError: if the frame is malformed.
    """
    from repro.errors import SerializationError

    try:
        data: Any = json.loads(frame)
    except json.JSONDecodeError as exc:
        raise SerializationError(f"invalid JSON frame: {exc}") from exc
    if not isinstance(data, dict):
        raise SerializationError(f"frame is not an object: {frame!r}")
    return Tweet.from_dict(data)
