"""Resilient Streaming API client: reconnect, backoff, dedup, dead-letter.

:class:`ResilientStream` drives a connection-oriented source (normally a
:class:`repro.twitter.faults.FaultySource`) and yields an exactly-once,
in-order stream of :class:`~repro.twitter.models.Tweet` records despite
every fault the source injects:

* **Reconnects** follow Twitter's documented policy — linear backoff for
  network errors and stalls, capped exponential backoff for HTTP errors,
  a slower exponential schedule for HTTP 420 — with deterministic seeded
  jitter.  Backoff is *simulated*: delays are computed and recorded, and
  an injectable ``sleep`` callable (a no-op by default) receives them, so
  nothing here ever blocks on a wall clock.
* **Stalls** (runs of keep-alive frames longer than
  ``policy.stall_timeout_ticks``) tear the connection down proactively,
  the way real clients react to a missed ``stall_warning``.
* **Backfill duplicates** are suppressed by a sliding window of recently
  seen tweet ids.
* **Bounded out-of-order delivery** is repaired by an id-ordered buffer
  of ``policy.reorder_window`` records (exact restoration whenever the
  source's displacement bound fits the buffer).
* **Malformed frames** are never fatal and never silently dropped: each
  lands in the dead-letter queue with a reason.

The contract downstream analyses rely on (the chaos-equivalence
property): for a compatible policy/plan pair, iterating this client over
a faulty source yields *byte-identical* output to iterating the plain
source — so Figs. 2–7 and Table I are invariant under injected failure.
"""

from __future__ import annotations

import heapq
import json
import random
from collections import deque
from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field, fields
from pathlib import Path
from typing import Any

from repro.config import ResiliencePolicy
from repro.errors import ConfigError, SerializationError
from repro.health import rows_to_lines
from repro.obs import current as telemetry_current
from repro.storage.atomic import AtomicWriter
from repro.storage.fs import FileSystem
from repro.storage.manifest import Manifest, record_crc, write_manifest
from repro.twitter.errors import (
    HTTPStreamError,
    RateLimitError,
    StreamDisconnectError,
)
from repro.twitter.faults import KEEPALIVE, FaultPlan, FaultySource
from repro.twitter.models import Tweet


def network_backoff(policy: ResiliencePolicy, attempt: int) -> float:
    """Linear backoff for the ``attempt``-th consecutive network failure.

    Twitter guidance: start at 250 ms, grow linearly, cap at 16 s.
    """
    if attempt < 1:
        raise ConfigError(f"attempt must be >= 1, got {attempt}")
    return min(policy.network_backoff_step * attempt, policy.network_backoff_cap)


def http_backoff(policy: ResiliencePolicy, attempt: int) -> float:
    """Exponential backoff for the ``attempt``-th consecutive HTTP error.

    Twitter guidance: start at 5 s, double, cap at 320 s.
    """
    if attempt < 1:
        raise ConfigError(f"attempt must be >= 1, got {attempt}")
    return min(
        policy.http_backoff_initial * policy.backoff_factor ** (attempt - 1),
        policy.http_backoff_cap,
    )


def rate_limit_backoff(policy: ResiliencePolicy, attempt: int) -> float:
    """Exponential backoff after the ``attempt``-th consecutive HTTP 420.

    Twitter guidance: start at a full minute and double.
    """
    if attempt < 1:
        raise ConfigError(f"attempt must be >= 1, got {attempt}")
    return min(
        policy.rate_limit_backoff_initial
        * policy.backoff_factor ** (attempt - 1),
        policy.rate_limit_backoff_cap,
    )


def ensure_compatible(policy: ResiliencePolicy, plan: FaultPlan) -> None:
    """Check that ``policy`` can provably absorb every fault in ``plan``.

    Raises:
        ConfigError: when the reorder buffer cannot cover the plan's
            out-of-order displacement bound, or the dedup window cannot
            cover the backfill overlap.
    """
    if policy.reorder_window < plan.max_displacement:
        raise ConfigError(
            f"reorder_window={policy.reorder_window} cannot restore order "
            f"under displacement bound {plan.max_displacement}; raise "
            "reorder_window or shrink backfill_depth/reorder_span"
        )
    needed = 2 * (plan.backfill_depth + plan.reorder_span) + 1
    if policy.dedup_window < needed:
        raise ConfigError(
            f"dedup_window={policy.dedup_window} cannot cover the backfill "
            f"overlap; need >= {needed}"
        )


@dataclass(frozen=True, slots=True)
class DeadLetter:
    """One undecodable frame, preserved with a reason instead of crashing.

    Attributes:
        payload: the raw frame as received.
        reason: ``"invalid-json"`` or ``"malformed-record"``.
        sequence: ordinal of the frame on the wire (1-based).
    """

    payload: str
    reason: str
    sequence: int

    def to_dict(self) -> dict[str, object]:
        return {
            "payload": self.payload,
            "reason": self.reason,
            "sequence": self.sequence,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "DeadLetter":
        return cls(
            payload=str(data["payload"]),
            reason=str(data["reason"]),
            sequence=int(data["sequence"]),
        )


def write_dead_letters_jsonl(
    letters: Iterable[DeadLetter],
    path: str | Path,
    *,
    fs: FileSystem | None = None,
    manifest: bool = True,
) -> int:
    """Persist a dead-letter queue as JSONL; returns the count written.

    Dead letters are evidence — the frames a run refused to lose — so
    they get the same durability treatment as the corpus itself: one
    atomic-durable write plus a :mod:`repro.storage.manifest` integrity
    sidecar, making the queue scrubbable for bitrot like every other
    persisted artifact.
    """
    count = 0
    crcs: list[int] = []
    with AtomicWriter(path, fs=fs) as writer:
        for letter in letters:
            line = json.dumps(letter.to_dict(), ensure_ascii=False)
            writer.write(line)
            writer.write("\n")
            if manifest:
                crcs.append(record_crc(line))
            count += 1
    if manifest:
        write_manifest(
            path,
            Manifest(
                file=Path(path).name,
                sha256=writer.sha256_hex,
                size_bytes=writer.bytes_written,
                record_crcs=tuple(crcs),
            ),
            fs=fs,
        )
    return count


def read_dead_letters_jsonl(path: str | Path) -> Iterator[DeadLetter]:
    """Stream dead letters back from a JSONL file.

    Raises:
        SerializationError: on the first malformed line, with its
            1-based line number.
    """
    with open(path, encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"{path}:{line_number}: invalid JSON: {exc}"
                ) from exc
            try:
                yield DeadLetter.from_dict(data)
            except (KeyError, TypeError, ValueError) as exc:
                raise SerializationError(
                    f"{path}:{line_number}: malformed dead letter: {exc}"
                ) from exc


@dataclass(slots=True)
class ReliabilityReport:
    """What one resilient collection survived.

    Exposed alongside :class:`repro.pipeline.runner.PipelineReport` so a
    chaos run documents both what it kept and what it lived through.
    Implements the :class:`repro.health.HealthReport` protocol, the same
    surface as the compute layer's
    :class:`repro.supervise.RunHealth` — one rendering path serves both.
    """

    connects: int = 0
    disconnects: int = 0
    stalls_detected: int = 0
    rejections_420: int = 0
    rejections_503: int = 0
    retries_network: int = 0
    retries_http: int = 0
    retries_rate_limit: int = 0
    backoff_seconds: float = 0.0
    duplicates_suppressed: int = 0
    out_of_order: int = 0
    dead_lettered: int = 0
    delivered: int = 0
    dead_letters: list[DeadLetter] = field(default_factory=list)

    @property
    def total_retries(self) -> int:
        return self.retries_network + self.retries_http + self.retries_rate_limit

    def as_rows(self) -> list[tuple[str, str]]:
        return [
            ("Connections established", f"{self.connects:,}"),
            ("Disconnects survived", f"{self.disconnects:,}"),
            ("Stalls detected", f"{self.stalls_detected:,}"),
            ("HTTP 420 rejections", f"{self.rejections_420:,}"),
            ("HTTP 503 rejections", f"{self.rejections_503:,}"),
            ("Retries (network/HTTP/420)",
             f"{self.retries_network:,}/{self.retries_http:,}/"
             f"{self.retries_rate_limit:,}"),
            ("Backoff time (simulated)", f"{self.backoff_seconds:,.2f}s"),
            ("Duplicates suppressed", f"{self.duplicates_suppressed:,}"),
            ("Out-of-order arrivals", f"{self.out_of_order:,}"),
            ("Dead-lettered frames", f"{self.dead_lettered:,}"),
            ("Records delivered", f"{self.delivered:,}"),
        ]

    def summary_lines(self) -> list[str]:
        return rows_to_lines(self.as_rows())

    def to_dict(self) -> dict[str, object]:
        """Full round-trippable form (counters plus dead letters) —
        the same shape contract as
        :meth:`repro.supervise.RunHealth.to_dict`."""
        data: dict[str, object] = {
            spec.name: getattr(self, spec.name)
            for spec in fields(self)
            if spec.name != "dead_letters"
        }
        data["dead_letters"] = [
            letter.to_dict() for letter in self.dead_letters
        ]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ReliabilityReport":
        report = cls()
        for spec in fields(cls):
            if spec.name == "dead_letters":
                continue
            kind = type(getattr(report, spec.name))
            setattr(report, spec.name, kind(data[spec.name]))
        report.dead_letters = [
            DeadLetter.from_dict(item) for item in data["dead_letters"]
        ]
        return report


class _SeenWindow:
    """Sliding window of recently seen tweet ids (O(1) membership)."""

    __slots__ = ("_order", "_members")

    def __init__(self, size: int):
        self._order: deque[int] = deque(maxlen=size)
        self._members: set[int] = set()

    def __contains__(self, tweet_id: int) -> bool:
        return tweet_id in self._members

    def add(self, tweet_id: int) -> None:
        if len(self._order) == self._order.maxlen:
            self._members.discard(self._order[0])
        self._order.append(tweet_id)
        self._members.add(tweet_id)


class ResilientStream:
    """Exactly-once, in-order tweet iterator over a failable source.

    Args:
        source: any object with a ``connect()`` returning a frame
            iterator — normally a :class:`FaultySource`.
        policy: reconnect/dedup/reorder policy (defaults apply Twitter's
            documented schedule).
        sleep: receives every computed backoff delay, in seconds.  The
            default records the delay and returns immediately, so tests
            and simulations never block; pass ``time.sleep`` to get real
            pacing against a live source.

    Every frame is delivered exactly once as a :class:`Tweet` or
    dead-lettered with a reason; the client never raises for an injected
    fault.  Iteration ends only when the source is exhausted.
    """

    def __init__(
        self,
        source: FaultySource,
        policy: ResiliencePolicy | None = None,
        sleep: Callable[[float], None] | None = None,
    ):
        self._source = source
        self.policy = policy or ResiliencePolicy()
        self._sleep = sleep if sleep is not None else (lambda delay: None)
        # Deterministic jitter schedule derived from the policy seed.
        self._rng = random.Random(self.policy.seed)
        self._seen = _SeenWindow(self.policy.dedup_window)
        self._heap: list[tuple[int, int, Tweet]] = []
        self._push_seq = 0
        self._frame_seq = 0
        self._max_id: int | None = None
        self._conn = None
        self._exhausted = False
        self._stall_run = 0
        self._net_failures = 0
        self._http_failures = 0
        self._rate_limit_failures = 0
        self.report = ReliabilityReport()

    def __iter__(self) -> Iterator[Tweet]:
        return self

    def __next__(self) -> Tweet:
        while True:
            if self._exhausted:
                if self._heap:
                    return self._pop()
                raise StopIteration
            if len(self._heap) > self.policy.reorder_window:
                return self._pop()
            self._pump()

    @property
    def dead_letters(self) -> list[DeadLetter]:
        return self.report.dead_letters

    # -- internals ------------------------------------------------------

    def _pop(self) -> Tweet:
        __, __, tweet = heapq.heappop(self._heap)
        self.report.delivered += 1
        return tweet

    def _pump(self) -> None:
        """Advance by one event: connect, read one frame, or back off."""
        if self._conn is None:
            self._connect()
            return
        try:
            frame = next(self._conn)
        except StopIteration:
            self._exhausted = True
            self._conn = None
            return
        except StreamDisconnectError:
            self.report.disconnects += 1
            telemetry_current().inc("transport.disconnects")
            self._conn = None
            self._backoff_network()
            return
        self._frame_seq += 1
        if frame == KEEPALIVE:
            self._stall_run += 1
            if self._stall_run >= self.policy.stall_timeout_ticks:
                # Stalled connection: tear down and reconnect, treating
                # it as a network-level failure per Twitter guidance.
                self.report.stalls_detected += 1
                telemetry_current().inc("transport.stalls")
                self._stall_run = 0
                self._conn = None
                self._backoff_network()
            return
        self._stall_run = 0
        tweet = self._decode(frame)
        if tweet is None:
            return
        if tweet.tweet_id in self._seen:
            self.report.duplicates_suppressed += 1
            telemetry_current().inc("transport.duplicates_suppressed")
            return
        self._seen.add(tweet.tweet_id)
        if self._max_id is not None and tweet.tweet_id < self._max_id:
            self.report.out_of_order += 1
            telemetry_current().inc("transport.out_of_order")
        if self._max_id is None or tweet.tweet_id > self._max_id:
            self._max_id = tweet.tweet_id
        heapq.heappush(self._heap, (tweet.tweet_id, self._push_seq, tweet))
        self._push_seq += 1

    def _decode(self, frame: str) -> Tweet | None:
        try:
            data = json.loads(frame)
        except json.JSONDecodeError:
            self._dead_letter(frame, "invalid-json")
            return None
        try:
            if not isinstance(data, dict):
                raise SerializationError("frame is not an object")
            return Tweet.from_dict(data)
        except SerializationError:
            self._dead_letter(frame, "malformed-record")
            return None

    def _dead_letter(self, payload: str, reason: str) -> None:
        self.report.dead_letters.append(
            DeadLetter(payload=payload, reason=reason, sequence=self._frame_seq)
        )
        self.report.dead_lettered += 1
        telemetry_current().inc("transport.dead_lettered", reason=reason)

    def _connect(self) -> None:
        try:
            self._conn = self._source.connect()
        except RateLimitError:
            self.report.rejections_420 += 1
            self._rate_limit_failures += 1
            self.report.retries_rate_limit += 1
            telemetry_current().inc("transport.retries", kind="rate_limit")
            self._wait(rate_limit_backoff(self.policy, self._rate_limit_failures))
        except HTTPStreamError:
            self.report.rejections_503 += 1
            self._http_failures += 1
            self.report.retries_http += 1
            telemetry_current().inc("transport.retries", kind="http")
            self._wait(http_backoff(self.policy, self._http_failures))
        else:
            self.report.connects += 1
            telemetry_current().inc("transport.connects")
            self._stall_run = 0
            self._net_failures = 0
            self._http_failures = 0
            self._rate_limit_failures = 0

    def _backoff_network(self) -> None:
        self._net_failures += 1
        self.report.retries_network += 1
        telemetry_current().inc("transport.retries", kind="network")
        self._wait(network_backoff(self.policy, self._net_failures))

    def _wait(self, base_delay: float) -> None:
        delay = base_delay
        if self.policy.jitter:
            delay += base_delay * self.policy.jitter * self._rng.random()
        self.report.backoff_seconds += delay
        telemetry_current().inc("transport.backoff_seconds", delay)
        self._sleep(delay)
