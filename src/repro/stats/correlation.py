"""Rank and linear correlation.

The paper reports a Spearman correlation between Twitter organ popularity
and US transplant volume (r = .84, p < .05, §III-A).  Spearman is computed
as the Pearson correlation of average-tie ranks, with the standard
t-approximation p-value (two-sided) — the same definition SciPy uses, and
tests cross-check against SciPy.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import betainc

from repro.stats.ranking import rankdata


@dataclass(frozen=True, slots=True)
class CorrelationResult:
    """A correlation estimate.

    Attributes:
        r: correlation coefficient in [-1, 1].
        p_value: two-sided p-value under the t approximation, or ``nan``
            when n < 3 or the coefficient is undefined.
        n: sample size.
    """

    r: float
    p_value: float
    n: int

    @property
    def significant(self) -> bool:
        """True when p < .05 (the paper's reporting threshold)."""
        return bool(self.p_value < 0.05)


def pearson(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> CorrelationResult:
    """Pearson product-moment correlation with a t-test p-value.

    Raises:
        ValueError: on shape mismatch or non-finite input — a single
            NaN would silently zero the centered dot products into a
            ``nan`` r, and an infinity would overflow them; both are
            data errors the caller must see (the same stance as SciPy's
            ``nan_policy="raise"``).
    """
    x_arr = np.asarray(x, dtype=float)
    y_arr = np.asarray(y, dtype=float)
    if x_arr.shape != y_arr.shape or x_arr.ndim != 1:
        raise ValueError(
            f"x and y must be 1-D arrays of equal length, got {x_arr.shape} "
            f"and {y_arr.shape}"
        )
    if not (np.all(np.isfinite(x_arr)) and np.all(np.isfinite(y_arr))):
        raise ValueError(
            "correlation requires finite input; got NaN or infinity — "
            "clean or drop those observations first"
        )
    n = x_arr.size
    if n < 2:
        return CorrelationResult(r=math.nan, p_value=math.nan, n=n)
    x_centered = x_arr - x_arr.mean()
    y_centered = y_arr - y_arr.mean()
    denom = math.sqrt(float(x_centered @ x_centered) * float(y_centered @ y_centered))
    if denom == 0.0:
        return CorrelationResult(r=math.nan, p_value=math.nan, n=n)
    r = float(x_centered @ y_centered) / denom
    r = max(-1.0, min(1.0, r))
    return CorrelationResult(r=r, p_value=_t_test_p(r, n), n=n)


def spearman(x: np.ndarray | list[float], y: np.ndarray | list[float]) -> CorrelationResult:
    """Spearman rank correlation: Pearson over average-tie ranks."""
    return pearson(rankdata(x), rankdata(y))


def _t_test_p(r: float, n: int) -> float:
    """Two-sided p-value for H0: rho = 0 via the t distribution."""
    if n < 3:
        return math.nan
    if abs(r) >= 1.0:
        return 0.0
    df = n - 2
    t_squared = r * r * df / (1.0 - r * r)
    # P(|T| > t) via the regularized incomplete beta function.
    return float(betainc(df / 2.0, 0.5, df / (df + t_squared)))
