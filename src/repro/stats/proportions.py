"""Proportions and relative risk (Sistrom & Garvan, the paper's ref [31]).

The paper detects a state's *highlighted* organs by comparing the
prevalence of organ-related conversation inside the state against the rest
of the USA (Eq. 4):

    RR_ir = ρ_ir / ρ_in

with ρ the fraction of users mentioning organ *i* inside / outside state
*r*.  ``log(RR)`` is approximately normal, so an organ is highlighted when
the lower limit of the (1−α) CI of ``log(RR)`` exceeds zero.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from scipy.special import ndtri


@dataclass(frozen=True, slots=True)
class RelativeRiskResult:
    """Relative risk of one event between an exposed and a control group.

    Attributes:
        rr: point estimate ρ_exposed / ρ_control (``nan`` if undefined,
            ``inf`` if the control prevalence is zero).
        log_rr: natural log of the point estimate.
        se_log_rr: standard error of ``log_rr`` (delta method).
        ci_low / ci_high: (1−α) confidence interval for RR.
        alpha: significance level used for the interval.
    """

    rr: float
    log_rr: float
    se_log_rr: float
    ci_low: float
    ci_high: float
    alpha: float

    @property
    def significant_excess(self) -> bool:
        """True when the CI lower limit exceeds 1 (log-RR CI above zero).

        This is the paper's highlight criterion:
        ``log(RR) − z_α · σ_log(RR) > 0``.
        """
        return bool(self.ci_low > 1.0)

    @property
    def significant_deficit(self) -> bool:
        """True when the CI upper limit is below 1 (under-mention)."""
        return bool(self.ci_high < 1.0)


def prevalence(events: int, total: int) -> float:
    """Event prevalence ρ = events / total.

    Raises:
        ValueError: on a non-positive denominator or impossible counts.
    """
    if total <= 0:
        raise ValueError(f"total must be > 0, got {total}")
    if not 0 <= events <= total:
        raise ValueError(f"events must be in [0, {total}], got {events}")
    return events / total


def relative_risk(
    events_exposed: int,
    n_exposed: int,
    events_control: int,
    n_control: int,
    alpha: float = 0.05,
) -> RelativeRiskResult:
    """Relative risk with a log-normal (1−α) confidence interval.

    Uses the standard delta-method standard error

        SE = sqrt(1/a − 1/n₁ + 1/b − 1/n₂)

    where ``a``/``b`` are event counts in the exposed/control groups.  When
    either event count is zero the estimate degenerates (rr = 0 or inf)
    and the interval is unbounded on the corresponding side.
    """
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    rho_exposed = prevalence(events_exposed, n_exposed)
    rho_control = prevalence(events_control, n_control)

    if rho_exposed == 0.0 and rho_control == 0.0:
        return RelativeRiskResult(
            rr=math.nan, log_rr=math.nan, se_log_rr=math.inf,
            ci_low=0.0, ci_high=math.inf, alpha=alpha,
        )
    if rho_control == 0.0:
        return RelativeRiskResult(
            rr=math.inf, log_rr=math.inf, se_log_rr=math.inf,
            ci_low=0.0, ci_high=math.inf, alpha=alpha,
        )
    if rho_exposed == 0.0:
        return RelativeRiskResult(
            rr=0.0, log_rr=-math.inf, se_log_rr=math.inf,
            ci_low=0.0, ci_high=math.inf, alpha=alpha,
        )

    rr = rho_exposed / rho_control
    log_rr = math.log(rr)
    se = math.sqrt(
        1.0 / events_exposed
        - 1.0 / n_exposed
        + 1.0 / events_control
        - 1.0 / n_control
    )
    z = float(ndtri(1.0 - alpha / 2.0))
    return RelativeRiskResult(
        rr=rr,
        log_rr=log_rr,
        se_log_rr=se,
        ci_low=math.exp(log_rr - z * se),
        ci_high=math.exp(log_rr + z * se),
        alpha=alpha,
    )
