"""Chi-square test of independence and Cramér's V.

A global alternative to the per-cell relative-risk scan of §IV-B1: before
asking *which* states highlight *which* organs, test whether organ
attention depends on state at all.  On the paper's data the global test
rejects strongly (the planted geography exists); on a null world it does
not — the pairing exercised by the RR-vs-chi-square ablation test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np
from scipy.special import gammaincc

if TYPE_CHECKING:
    from repro.dataset.corpus import TweetCorpus


@dataclass(frozen=True, slots=True)
class ChiSquareResult:
    """Outcome of a chi-square independence test.

    Attributes:
        statistic: the X² statistic.
        dof: degrees of freedom, (r−1)(c−1).
        p_value: upper-tail probability under the χ² distribution.
        cramers_v: effect size in [0, 1].
        n: grand total of the table.
    """

    statistic: float
    dof: int
    p_value: float
    cramers_v: float
    n: int

    @property
    def significant(self) -> bool:
        return bool(self.p_value < 0.05)


def chi_square_independence(table: np.ndarray) -> ChiSquareResult:
    """Pearson chi-square test on an r × c contingency table.

    Rows or columns with zero marginals are dropped (they carry no
    information and would produce 0/0 expected cells).

    Raises:
        ValueError: on negative entries or a table with fewer than 2
            informative rows or columns.
    """
    counts = np.asarray(table, dtype=float)
    if counts.ndim != 2:
        raise ValueError(f"expected a 2-D table, got shape {counts.shape}")
    if np.any(counts < 0):
        raise ValueError("contingency counts must be non-negative")
    counts = counts[counts.sum(axis=1) > 0][:, counts.sum(axis=0) > 0]
    rows, cols = counts.shape
    if rows < 2 or cols < 2:
        raise ValueError(
            f"need >= 2 informative rows and columns, got {rows}×{cols}"
        )
    total = counts.sum()
    expected = np.outer(counts.sum(axis=1), counts.sum(axis=0)) / total
    statistic = float(((counts - expected) ** 2 / expected).sum())
    dof = (rows - 1) * (cols - 1)
    # Upper tail of chi² via the regularized upper incomplete gamma.
    p_value = float(gammaincc(dof / 2.0, statistic / 2.0))
    k = min(rows - 1, cols - 1)
    cramers_v = float(np.sqrt(statistic / (total * k))) if k > 0 else 0.0
    return ChiSquareResult(
        statistic=statistic,
        dof=dof,
        p_value=p_value,
        cramers_v=min(cramers_v, 1.0),
        n=int(total),
    )


def state_organ_table(corpus: TweetCorpus) -> tuple[np.ndarray, list[str]]:
    """The state × organ user-mention contingency table.

    Returns the table (users mentioning each organ per state) and its row
    labels.  Users mentioning several organs contribute to several cells,
    matching the prevalence definition of Eq. 4.
    """
    from repro.organs import N_ORGANS

    states = sorted(
        {user.state for user in corpus.user_slices() if user.state}
    )
    index = {state: i for i, state in enumerate(states)}
    table = np.zeros((len(states), N_ORGANS))
    for user in corpus.user_slices():
        if user.state is None:
            continue
        for organ in user.distinct_organs:
            table[index[user.state], organ.index] += 1
    return table, states
