"""Rank transformation with average-tie handling.

Self-contained equivalent of ``scipy.stats.rankdata(method="average")`` —
kept in-repo so the Spearman implementation has no hidden dependency and
its tie behaviour is pinned by our own tests.
"""

from __future__ import annotations

import numpy as np


def rankdata(values: np.ndarray | list[float]) -> np.ndarray:
    """1-based ranks with ties receiving their average rank.

    >>> rankdata([10, 20, 20, 30]).tolist()
    [1.0, 2.5, 2.5, 4.0]

    Raises:
        ValueError: on non-finite input.  ``argsort`` places every NaN
            last — silently handing each one a distinct top rank and a
            downstream Spearman coefficient that looks plausible but
            means nothing (SciPy's ``rankdata`` does the same, which is
            why ``spearmanr`` grew ``nan_policy``); infinities rank
            "correctly" but poison the Pearson step afterwards.  A loud
            error beats a quietly wrong r.
    """
    array = np.asarray(values, dtype=float)
    if array.ndim != 1:
        raise ValueError(f"rankdata expects a 1-D array, got shape {array.shape}")
    if not np.all(np.isfinite(array)):
        raise ValueError(
            "rankdata requires finite input; got NaN or infinity (ranks "
            "over missing data are meaningless — clean or drop those "
            "observations first)"
        )
    order = np.argsort(array, kind="stable")
    ranks = np.empty(array.size, dtype=float)
    ranks[order] = np.arange(1, array.size + 1, dtype=float)
    # Average the ranks within each tie group.
    sorted_values = array[order]
    group_start = 0
    for index in range(1, array.size + 1):
        at_end = index == array.size
        if at_end or sorted_values[index] != sorted_values[group_start]:
            if index - group_start > 1:
                average = (group_start + 1 + index) / 2.0
                ranks[order[group_start:index]] = average
            group_start = index
    return ranks
