"""Statistics substrate: ranking, correlation, proportions, descriptives."""

from repro.stats.correlation import CorrelationResult, pearson, spearman
from repro.stats.proportions import (
    RelativeRiskResult,
    prevalence,
    relative_risk,
)
from repro.stats.ranking import rankdata
from repro.stats.descriptive import log_binned_histogram, summarize

__all__ = [
    "CorrelationResult",
    "RelativeRiskResult",
    "log_binned_histogram",
    "pearson",
    "prevalence",
    "rankdata",
    "relative_risk",
    "spearman",
    "summarize",
]
