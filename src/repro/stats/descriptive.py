"""Descriptive statistics: log-binned histograms and summaries.

The paper presents its count data "as histograms in log scale" (Fig. 2,
Fig. 3).  :func:`log_binned_histogram` reproduces that view for heavy-
tailed counts; :func:`summarize` provides the usual five-number summary
used throughout the reports.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True, slots=True)
class Summary:
    """Five-number summary plus mean for a sample."""

    n: int
    mean: float
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float


def summarize(values: np.ndarray | list[float]) -> Summary:
    """Five-number summary; raises on an empty sample."""
    array = np.asarray(values, dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarize an empty sample")
    q1, median, q3 = np.percentile(array, [25, 50, 75])
    return Summary(
        n=int(array.size),
        mean=float(array.mean()),
        minimum=float(array.min()),
        q1=float(q1),
        median=float(median),
        q3=float(q3),
        maximum=float(array.max()),
    )


def log_binned_histogram(
    counts: np.ndarray | list[int], base: float = 2.0
) -> list[tuple[int, int, int]]:
    """Histogram of positive integer counts with log-spaced bins.

    Returns ``(low, high, frequency)`` triples where the bin covers
    ``low <= value < high`` and edges grow geometrically with ``base``.
    Zero values are excluded (log scale), mirroring how the paper's
    log-scale histograms drop empty categories.

    Input must be genuine counts: finite, non-negative, and integral
    (integer-valued floats like ``3.0`` are fine).  The bin edges start
    at 1, so a fractional value in (0, 1) would fall below the first
    bin and silently vanish from the histogram — breaking the invariant
    that frequencies sum to the number of positive values.  Rejecting
    non-count input keeps that invariant a guarantee instead of a hope.

    Raises:
        ValueError: on ``base <= 1`` or non-finite, negative, or
            fractional input.
    """
    if base <= 1.0:
        raise ValueError(f"base must be > 1, got {base}")
    array = np.asarray(counts, dtype=float)
    if array.size:
        if not np.all(np.isfinite(array)):
            raise ValueError(
                "log_binned_histogram requires finite counts; got NaN "
                "or infinity"
            )
        if np.any(array < 0):
            raise ValueError(
                "log_binned_histogram requires non-negative counts; got "
                f"minimum {array.min()}"
            )
        if np.any(array != np.floor(array)):
            raise ValueError(
                "log_binned_histogram requires integer counts; "
                "fractional values in (0, 1) would fall below the first "
                "bin edge and vanish from the histogram"
            )
    positive = array[array > 0]
    if positive.size == 0:
        return []
    top = float(positive.max())
    n_bins = max(1, int(math.ceil(math.log(top + 1, base))))
    edges = [int(base**power) for power in range(n_bins + 1)]
    bins: list[tuple[int, int, int]] = []
    for low, high in zip(edges, edges[1:]):
        if high <= low:
            continue
        frequency = int(np.count_nonzero((positive >= low) & (positive < high)))
        bins.append((low, high, frequency))
    # Final catch-all bin for the maximum value itself.
    last_low = edges[-1]
    tail = int(np.count_nonzero(positive >= last_low))
    if tail:
        bins.append((last_low, int(top) + 1, tail))
    return bins
