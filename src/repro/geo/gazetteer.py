"""US state gazetteer: names, abbreviations, populations, census regions.

Populations are 2015 Census Bureau estimates (thousands), matching the
paper's collection window (Apr 2015 – May 2016).  The census region is used
to reproduce the paper's geographic observations (e.g. "Kansas is the only
state in the Midwestern USA …", the Twitter under-representation of the
Midwest noted in §V).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import GeoError


class CensusRegion(enum.Enum):
    """US Census Bureau region."""

    NORTHEAST = "Northeast"
    MIDWEST = "Midwest"
    SOUTH = "South"
    WEST = "West"
    OTHER = "Other"  # DC is formally South; PR and territories use OTHER.


@dataclass(frozen=True, slots=True)
class StateInfo:
    """A US state or state-equivalent territory.

    Attributes:
        name: Full official name, e.g. ``"Kansas"``.
        abbrev: USPS two-letter code, e.g. ``"KS"``.
        population: 2015 resident population estimate, in thousands.
        region: Census region membership.
        nicknames: Informal names seen in Twitter profile locations.
    """

    name: str
    abbrev: str
    population: int
    region: CensusRegion
    nicknames: tuple[str, ...] = ()


# fmt: off
STATES: tuple[StateInfo, ...] = (
    StateInfo("Alabama", "AL", 4854, CensusRegion.SOUTH, ("bama", "the heart of dixie")),
    StateInfo("Alaska", "AK", 738, CensusRegion.WEST, ("the last frontier",)),
    StateInfo("Arizona", "AZ", 6829, CensusRegion.WEST, ()),
    StateInfo("Arkansas", "AR", 2978, CensusRegion.SOUTH, ()),
    StateInfo("California", "CA", 39145, CensusRegion.WEST, ("cali", "the golden state")),
    StateInfo("Colorado", "CO", 5456, CensusRegion.WEST, ()),
    StateInfo("Connecticut", "CT", 3591, CensusRegion.NORTHEAST, ()),
    StateInfo("Delaware", "DE", 946, CensusRegion.SOUTH, ()),
    StateInfo("District of Columbia", "DC", 672, CensusRegion.SOUTH, ("washington dc", "washington d.c.", "d.c.")),
    StateInfo("Florida", "FL", 20271, CensusRegion.SOUTH, ("fla", "the sunshine state")),
    StateInfo("Georgia", "GA", 10215, CensusRegion.SOUTH, ()),
    StateInfo("Hawaii", "HI", 1432, CensusRegion.WEST, ()),
    StateInfo("Idaho", "ID", 1655, CensusRegion.WEST, ()),
    StateInfo("Illinois", "IL", 12860, CensusRegion.MIDWEST, ()),
    StateInfo("Indiana", "IN", 6620, CensusRegion.MIDWEST, ()),
    StateInfo("Iowa", "IA", 3124, CensusRegion.MIDWEST, ()),
    StateInfo("Kansas", "KS", 2912, CensusRegion.MIDWEST, ()),
    StateInfo("Kentucky", "KY", 4425, CensusRegion.SOUTH, ()),
    StateInfo("Louisiana", "LA", 4671, CensusRegion.SOUTH, ()),
    StateInfo("Maine", "ME", 1329, CensusRegion.NORTHEAST, ()),
    StateInfo("Maryland", "MD", 6006, CensusRegion.SOUTH, ()),
    StateInfo("Massachusetts", "MA", 6794, CensusRegion.NORTHEAST, ("mass",)),
    StateInfo("Michigan", "MI", 9923, CensusRegion.MIDWEST, ()),
    StateInfo("Minnesota", "MN", 5490, CensusRegion.MIDWEST, ()),
    StateInfo("Mississippi", "MS", 2992, CensusRegion.SOUTH, ()),
    StateInfo("Missouri", "MO", 6084, CensusRegion.MIDWEST, ()),
    StateInfo("Montana", "MT", 1033, CensusRegion.WEST, ()),
    StateInfo("Nebraska", "NE", 1896, CensusRegion.MIDWEST, ()),
    StateInfo("Nevada", "NV", 2891, CensusRegion.WEST, ()),
    StateInfo("New Hampshire", "NH", 1330, CensusRegion.NORTHEAST, ()),
    StateInfo("New Jersey", "NJ", 8958, CensusRegion.NORTHEAST, ("jersey",)),
    StateInfo("New Mexico", "NM", 2085, CensusRegion.WEST, ()),
    StateInfo("New York", "NY", 19795, CensusRegion.NORTHEAST, ()),
    StateInfo("North Carolina", "NC", 10043, CensusRegion.SOUTH, ()),
    StateInfo("North Dakota", "ND", 757, CensusRegion.MIDWEST, ()),
    StateInfo("Ohio", "OH", 11613, CensusRegion.MIDWEST, ()),
    StateInfo("Oklahoma", "OK", 3911, CensusRegion.SOUTH, ()),
    StateInfo("Oregon", "OR", 4029, CensusRegion.WEST, ()),
    StateInfo("Pennsylvania", "PA", 12803, CensusRegion.NORTHEAST, ("penna",)),
    StateInfo("Puerto Rico", "PR", 3474, CensusRegion.OTHER, ()),
    StateInfo("Rhode Island", "RI", 1056, CensusRegion.NORTHEAST, ()),
    StateInfo("South Carolina", "SC", 4896, CensusRegion.SOUTH, ()),
    StateInfo("South Dakota", "SD", 858, CensusRegion.MIDWEST, ()),
    StateInfo("Tennessee", "TN", 6600, CensusRegion.SOUTH, ()),
    StateInfo("Texas", "TX", 27469, CensusRegion.SOUTH, ("lone star state",)),
    StateInfo("Utah", "UT", 2996, CensusRegion.WEST, ()),
    StateInfo("Vermont", "VT", 626, CensusRegion.NORTHEAST, ()),
    StateInfo("Virginia", "VA", 8383, CensusRegion.SOUTH, ()),
    StateInfo("Washington", "WA", 7170, CensusRegion.WEST, ()),
    StateInfo("West Virginia", "WV", 1844, CensusRegion.SOUTH, ()),
    StateInfo("Wisconsin", "WI", 5771, CensusRegion.MIDWEST, ()),
    StateInfo("Wyoming", "WY", 586, CensusRegion.WEST, ()),
)
# fmt: on

#: All region codes (USPS abbreviations) in gazetteer order; these are the
#: ``r`` regions of the paper's Eq. 2 (states and territories of the USA).
ALL_REGION_CODES: tuple[str, ...] = tuple(state.abbrev for state in STATES)

_BY_ABBREV: dict[str, StateInfo] = {state.abbrev: state for state in STATES}
_BY_NAME: dict[str, StateInfo] = {state.name.lower(): state for state in STATES}


def state_by_abbrev(abbrev: str) -> StateInfo:
    """Look up a state by USPS code (case-insensitive).

    Raises:
        GeoError: if the code is not a US state/territory in the gazetteer.
    """
    info = _BY_ABBREV.get(abbrev.strip().upper())
    if info is None:
        raise GeoError(f"unknown state abbreviation: {abbrev!r}")
    return info


def state_by_name(name: str) -> StateInfo:
    """Look up a state by full name (case-insensitive).

    Raises:
        GeoError: if the name is not a US state/territory in the gazetteer.
    """
    info = _BY_NAME.get(name.strip().lower())
    if info is None:
        raise GeoError(f"unknown state name: {name!r}")
    return info


def states_in_region(region: CensusRegion) -> tuple[StateInfo, ...]:
    """All gazetteer states belonging to a census region."""
    return tuple(state for state in STATES if state.region is region)


def total_population() -> int:
    """Total gazetteer population, in thousands."""
    return sum(state.population for state in STATES)
