"""Location-string corrupter used by the synthetic world.

Real Twitter profile locations are messy: inconsistent casing, emoji,
nicknames, bare city names, jokes ("somewhere over the rainbow"), or empty.
The synthetic population emits location strings through this module so the
geocoder is exercised on the same distribution of forms the paper faced.
"""

from __future__ import annotations

import numpy as np

from repro.geo.cities import cities_in_state
from repro.geo.gazetteer import StateInfo

#: Unresolvable strings emitted for users who hide or joke about location.
JUNK_LOCATIONS: tuple[str, ...] = (
    "somewhere over the rainbow",
    "earth",
    "the internet",
    "in my feelings",
    "everywhere and nowhere",
    "🌍",
    "your heart",
    "wonderland",
    "the moon",
    "planet earth",
    "worldwide",
    "hogwarts",
)

_EMOJI = ("☀", "🏠", "❤", "🌴", "✨", "🌊")


class LocationStyler:
    """Render a US state as a plausible profile location string.

    Args:
        rng: NumPy random generator; all randomness flows through it so the
            synthetic world stays deterministic per seed.
    """

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def style_us(self, state: StateInfo) -> str:
        """One profile-location string for a user living in ``state``."""
        roll = self._rng.random()
        if roll < 0.30:
            text = self._city_comma_abbrev(state)
        elif roll < 0.45:
            text = state.name
        elif roll < 0.55:
            text = state.abbrev  # uppercase bare code
        elif roll < 0.70:
            text = self._bare_city(state)
        elif roll < 0.80:
            text = f"{state.name}, USA"
        elif roll < 0.88 and state.nicknames:
            text = str(self._rng.choice(state.nicknames))
        else:
            text = self._city_comma_name(state)
        return self._decorate(text)

    def style_junk(self) -> str:
        """A location string that should not geocode anywhere."""
        return str(self._rng.choice(JUNK_LOCATIONS))

    def _city_comma_abbrev(self, state: StateInfo) -> str:
        city = self._pick_city(state)
        return f"{city.title()}, {state.abbrev}"

    def _city_comma_name(self, state: StateInfo) -> str:
        city = self._pick_city(state)
        return f"{city.title()}, {state.name}"

    def _bare_city(self, state: StateInfo) -> str:
        return self._pick_city(state).title()

    def _pick_city(self, state: StateInfo) -> str:
        cities = cities_in_state(state.abbrev)
        if not cities:
            return state.name
        city = str(self._rng.choice(cities))
        # City table disambiguates duplicates with a state suffix ("salem or");
        # strip it for display — the comma pattern re-adds the real state.
        if city.endswith(f" {state.abbrev.lower()}"):
            city = city[: -(len(state.abbrev) + 1)]
        return city

    def _decorate(self, text: str) -> str:
        """Apply surface noise: casing and the occasional emoji."""
        roll = self._rng.random()
        if roll < 0.12:
            text = text.lower() if text.upper() != text else text
        elif roll < 0.18:
            text = text.upper() if len(text) > 2 else text
        if self._rng.random() < 0.08:
            text = f"{text} {self._rng.choice(_EMOJI)}"
        return text
