"""Free-text location geocoder (offline OpenStreetMap stand-in).

The paper resolves the self-reported profile ``location`` string of each
user to a country and US state using OpenStreetMap Nominatim (§III-A).  This
geocoder reproduces that resolution offline against the bundled gazetteer.

Resolution strategy, in order of decreasing confidence:

1. ``"City, ST"`` / ``"City, State Name"`` — comma patterns with a state.
2. Full state name anywhere in the string ("living in kansas ☀").
3. Bare USPS code — accepted only when uppercase, because lowercase
   two-letter codes collide with English words ("in", "or", "hi", "me",
   "ok", "la"); this mirrors the precision/recall tradeoff of real
   geocoding and is exercised by tests.
4. Known city name (resolved via :mod:`repro.geo.cities`).
5. "USA"/"United States" alone — country-level match without a state.
6. Known foreign country/city — non-US match.

Anything else is unresolved (``GeoMatch.unresolved()``), which downstream
causes the tweet to be dropped by the US filter, exactly as in the paper
(only ~14% of collected tweets could be attributed to US users).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.geo.cities import CITY_TO_STATE
from repro.geo.gazetteer import STATES

#: Foreign locations commonly seen in profile strings.  Values are ISO-ish
#: country codes; only "not US" matters downstream.
FOREIGN_LOCATIONS: dict[str, str] = {
    "london": "GB", "uk": "GB", "united kingdom": "GB", "england": "GB",
    "manchester uk": "GB", "scotland": "GB", "wales": "GB",
    "toronto": "CA-ON", "vancouver": "CA-BC", "canada": "CA",
    "montreal": "CA-QC", "ontario": "CA-ON",
    "sydney": "AU", "melbourne": "AU", "australia": "AU",
    "mumbai": "IN-C", "delhi": "IN-C", "india": "IN-C", "bangalore": "IN-C",
    "lagos": "NG", "nigeria": "NG", "abuja": "NG",
    "manila": "PH", "philippines": "PH",
    "jakarta": "ID-C", "indonesia": "ID-C",
    "dublin": "IE", "ireland": "IE",
    "paris": "FR", "france": "FR",
    "berlin": "DE", "germany": "DE",
    "madrid": "ES", "spain": "ES",
    "tokyo": "JP", "japan": "JP",
    "nairobi": "KE", "kenya": "KE",
    "johannesburg": "ZA", "south africa": "ZA",
    "mexico city": "MX", "mexico": "MX",
    "sao paulo": "BR", "brazil": "BR", "rio de janeiro": "BR",
    "buenos aires": "AR-C", "argentina": "AR-C",
}

#: Informal multi-state metro/region names seen in profile locations,
#: resolved to the state Nominatim's top result would give.
METRO_AREAS: dict[str, str] = {
    "bay area": "CA",
    "the bay": "CA",
    "silicon valley": "CA",
    "socal": "CA",
    "norcal": "CA",
    "twin cities": "MN",
    "pnw": "WA",
    "pacific northwest": "WA",
    "dmv": "DC",
    "south florida": "FL",
    "the hamptons": "NY",
    "cape cod": "MA",
    "the ozarks": "MO",
}

_US_COUNTRY_TERMS = frozenset(
    {"usa", "us", "u.s.", "u.s.a.", "united states", "united states of america", "america"}
)

_NON_WORD = re.compile(r"[^\w\s,.'-]+", re.UNICODE)
_WS = re.compile(r"\s+")
_TRAILING_ZIP = re.compile(r"^(.*?)[\s,]+\d{5}(?:-\d{4})?$")


@dataclass(frozen=True, slots=True)
class GeoMatch:
    """Result of geocoding one location string.

    Attributes:
        country: ISO-like country code (``"US"`` for the United States),
            or ``None`` when unresolved.
        state: USPS state code when the match is a US state, else ``None``.
        confidence: heuristic resolution confidence in ``(0, 1]``;
            0.0 for unresolved.
        source: which resolution rule fired (for provenance/debugging).
    """

    country: str | None
    state: str | None
    confidence: float
    source: str

    @property
    def is_us_state(self) -> bool:
        """True when resolved to a specific US state or territory."""
        return self.country == "US" and self.state is not None

    @property
    def resolved(self) -> bool:
        return self.country is not None

    @staticmethod
    def unresolved() -> "GeoMatch":
        return GeoMatch(country=None, state=None, confidence=0.0, source="none")


class Geocoder:
    """Resolve free-text profile locations to (country, US state).

    Stateless and cheap to construct; lookup tables are built once per
    instance.  Thread-safe after construction.
    """

    #: Memo bound: profile locations are heavy-tailed (a 1M-tweet
    #: firehose carries only a few thousand distinct strings), so this
    #: is far above steady state; when an adversarial stream does exceed
    #: it, the oldest insertion is evicted instead of freezing the memo,
    #: so the cache keeps adapting to the live distribution.
    _CACHE_LIMIT = 262_144

    def __init__(self) -> None:
        self._state_by_name = {state.name.lower(): state.abbrev for state in STATES}
        self._state_by_code = {state.abbrev: state.abbrev for state in STATES}
        self._nicknames = {
            nickname: state.abbrev for state in STATES for nickname in state.nicknames
        }
        # Longest names first so "west virginia" wins over "virginia";
        # patterns precompiled once — geocoding is the pipeline hot path.
        self._state_names_ordered = sorted(
            self._state_by_name, key=len, reverse=True
        )
        self._state_name_patterns = [
            (name, re.compile(rf"\b{re.escape(name)}\b"))
            for name in self._state_names_ordered
        ]
        self._nickname_patterns = [
            (code, re.compile(rf"\b{re.escape(nickname)}\b"))
            for nickname, code in self._nicknames.items()
        ]
        self._metro_patterns = [
            (code, re.compile(rf"\b{re.escape(metro)}\b"))
            for metro, code in METRO_AREAS.items()
        ]
        self._cache: dict[str, GeoMatch] = {}

    def geocode(self, location: str | None) -> GeoMatch:
        """Resolve one location string; never raises on messy input.

        Results are memoized per string — users repeat across tweets, so
        corpora contain few distinct location strings.
        """
        if not location:
            return GeoMatch.unresolved()
        cached = self._cache.get(location)
        if cached is not None:
            return cached
        match = self._geocode_uncached(location)
        cache = self._cache
        if len(cache) >= self._CACHE_LIMIT:
            # Evict the oldest insertion (dicts preserve insertion
            # order) — approximates LRU without per-hit bookkeeping.
            del cache[next(iter(cache))]
        cache[location] = match
        return match

    def _geocode_uncached(self, location: str) -> GeoMatch:
        cleaned = _WS.sub(" ", _NON_WORD.sub(" ", location)).strip()
        if not cleaned:
            return GeoMatch.unresolved()
        zip_stripped = _TRAILING_ZIP.match(cleaned)
        if zip_stripped is not None and zip_stripped.group(1).strip():
            cleaned = zip_stripped.group(1).strip().rstrip(",")

        match = self._match_comma_pattern(cleaned)
        if match is None:
            match = self._match_state_name(cleaned)
        if match is None:
            match = self._match_bare_code(cleaned)
        if match is None:
            match = self._match_city(cleaned)
        if match is None:
            match = self._match_metro(cleaned)
        if match is None:
            match = self._match_country(cleaned)
        if match is None:
            match = self._match_foreign(cleaned)
        return match if match is not None else GeoMatch.unresolved()

    def _match_comma_pattern(self, cleaned: str) -> GeoMatch | None:
        """Resolve '<place>, <state>' forms, the most reliable pattern."""
        if "," not in cleaned:
            return None
        __, __, tail = cleaned.rpartition(",")
        tail = tail.strip().rstrip(".")
        tail_lower = tail.lower()
        code = self._state_by_code.get(tail.upper())
        if code is not None:
            # USPS codes are exactly two letters, so a gazetteer hit on
            # the upcased tail is already a definitive abbrev match.
            return GeoMatch("US", code, 0.95, "comma-abbrev")
        state = self._state_by_name.get(tail_lower)
        if state is not None:
            return GeoMatch("US", state, 0.95, "comma-name")
        if tail_lower in _US_COUNTRY_TERMS:
            # "Springfield, USA" — retry the head for a state/city.
            head = cleaned.rpartition(",")[0].strip()
            inner = self.geocode(head)
            if inner.is_us_state:
                return GeoMatch("US", inner.state, inner.confidence * 0.9, inner.source)
            return GeoMatch("US", None, 0.6, "comma-country")
        return None

    def _match_state_name(self, cleaned: str) -> GeoMatch | None:
        lowered = cleaned.lower()
        for name, pattern in self._state_name_patterns:
            if pattern.search(lowered):
                return GeoMatch("US", self._state_by_name[name], 0.85, "state-name")
        for code, pattern in self._nickname_patterns:
            if pattern.search(lowered):
                return GeoMatch("US", code, 0.7, "state-nickname")
        return None

    def _match_bare_code(self, cleaned: str) -> GeoMatch | None:
        token = cleaned.strip()
        if len(token) == 2 and token.isupper() and token in self._state_by_code:
            return GeoMatch("US", token, 0.75, "bare-abbrev")
        return None

    def _match_city(self, cleaned: str) -> GeoMatch | None:
        lowered = cleaned.lower().strip(" .")
        state = CITY_TO_STATE.get(lowered)
        if state is not None:
            return GeoMatch("US", state, 0.8, "city")
        # "downtown wichita" style: try the longest suffix of up to 3 tokens.
        tokens = lowered.split()
        for width in (3, 2, 1):
            if len(tokens) >= width:
                suffix = " ".join(tokens[-width:])
                state = CITY_TO_STATE.get(suffix)
                if state is not None:
                    return GeoMatch("US", state, 0.65, "city-suffix")
        return None

    def _match_metro(self, cleaned: str) -> GeoMatch | None:
        lowered = cleaned.lower().strip(" .")
        state = METRO_AREAS.get(lowered)
        if state is not None:
            return GeoMatch("US", state, 0.6, "metro")
        for code, pattern in self._metro_patterns:
            if pattern.search(lowered):
                return GeoMatch("US", code, 0.55, "metro-embedded")
        return None

    def _match_country(self, cleaned: str) -> GeoMatch | None:
        if cleaned.lower().strip(" .") in _US_COUNTRY_TERMS:
            return GeoMatch("US", None, 0.6, "country")
        return None

    def _match_foreign(self, cleaned: str) -> GeoMatch | None:
        lowered = cleaned.lower().strip(" .")
        country = FOREIGN_LOCATIONS.get(lowered)
        if country is not None:
            return GeoMatch(country, None, 0.8, "foreign")
        __, __, tail = lowered.rpartition(",")
        country = FOREIGN_LOCATIONS.get(tail.strip())
        if country is not None:
            return GeoMatch(country, None, 0.75, "foreign-comma")
        return None
