"""Offline geolocation substrate.

The paper augments tweets with a location by geocoding the free-text
``location`` field of the user profile through OpenStreetMap.  Network
geocoding is unavailable offline, so this package provides a faithful
replacement: a US gazetteer (:mod:`repro.geo.gazetteer`,
:mod:`repro.geo.cities`) and a free-text geocoder
(:mod:`repro.geo.geocoder`) that resolves the same kinds of messy profile
strings ("NOLA", "Wichita, KS", "somewhere over the rainbow") to a country
and US state.  :mod:`repro.geo.noise` generates that messiness for the
synthetic world.
"""

from repro.geo.gazetteer import (
    ALL_REGION_CODES,
    STATES,
    CensusRegion,
    StateInfo,
    state_by_abbrev,
    state_by_name,
)
from repro.geo.geocoder import GeoMatch, Geocoder

__all__ = [
    "ALL_REGION_CODES",
    "STATES",
    "CensusRegion",
    "StateInfo",
    "GeoMatch",
    "Geocoder",
    "state_by_abbrev",
    "state_by_name",
]
