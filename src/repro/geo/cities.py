"""Major US cities and their states.

Profile locations frequently name a city without a state ("Wichita",
"Brooklyn, NY", "NOLA").  This table lets the geocoder resolve bare city
names the way OpenStreetMap would.  City names that exist in several states
are resolved to the most populous bearer, mirroring Nominatim's
importance-ranked first result.
"""

from __future__ import annotations

# fmt: off
#: city (lowercase) -> USPS state code.  Includes at least one major city per
#: state so the synthetic location generator can emit city-style locations
#: everywhere, plus common informal names.
CITY_TO_STATE: dict[str, str] = {
    # Northeast
    "new york": "NY", "new york city": "NY", "nyc": "NY", "brooklyn": "NY",
    "manhattan": "NY", "queens": "NY", "the bronx": "NY", "buffalo": "NY",
    "rochester": "NY", "albany": "NY",
    "boston": "MA", "worcester": "MA", "springfield": "MA", "cambridge": "MA",
    "philadelphia": "PA", "philly": "PA", "pittsburgh": "PA", "allentown": "PA",
    "newark": "NJ", "jersey city": "NJ", "trenton": "NJ",
    "providence": "RI", "warwick": "RI",
    "hartford": "CT", "new haven": "CT", "bridgeport": "CT",
    "portland me": "ME", "augusta me": "ME", "bangor": "ME",
    "manchester": "NH", "concord nh": "NH", "nashua": "NH",
    "burlington": "VT", "montpelier": "VT",
    # South
    "houston": "TX", "dallas": "TX", "san antonio": "TX", "austin": "TX",
    "fort worth": "TX", "el paso": "TX", "atx": "TX",
    "miami": "FL", "orlando": "FL", "tampa": "FL", "jacksonville": "FL",
    "tallahassee": "FL", "st petersburg": "FL",
    "atlanta": "GA", "atl": "GA", "savannah": "GA", "athens ga": "GA",
    "charlotte": "NC", "raleigh": "NC", "durham": "NC", "greensboro": "NC",
    "nashville": "TN", "memphis": "TN", "knoxville": "TN", "chattanooga": "TN",
    "new orleans": "LA", "nola": "LA", "baton rouge": "LA", "shreveport": "LA",
    "louisville": "KY", "lexington": "KY", "frankfort": "KY",
    "birmingham": "AL", "montgomery": "AL", "huntsville": "AL", "mobile": "AL",
    "jackson ms": "MS", "gulfport": "MS", "biloxi": "MS",
    "little rock": "AR", "fayetteville ar": "AR", "fort smith": "AR",
    "oklahoma city": "OK", "okc": "OK", "tulsa": "OK", "norman": "OK",
    "richmond": "VA", "virginia beach": "VA", "norfolk": "VA", "arlington va": "VA",
    "charleston sc": "SC", "columbia sc": "SC", "greenville sc": "SC",
    "charleston wv": "WV", "huntington wv": "WV", "morgantown": "WV",
    "baltimore": "MD", "annapolis": "MD", "bethesda": "MD",
    "wilmington de": "DE", "dover de": "DE",
    "washington": "DC", "georgetown dc": "DC",
    "san juan": "PR", "ponce": "PR", "bayamon": "PR",
    # Midwest
    "chicago": "IL", "chi-town": "IL", "aurora il": "IL", "naperville": "IL",
    "detroit": "MI", "grand rapids": "MI", "ann arbor": "MI", "lansing": "MI",
    "columbus": "OH", "cleveland": "OH", "cincinnati": "OH", "toledo": "OH",
    "indianapolis": "IN", "indy": "IN", "fort wayne": "IN", "bloomington in": "IN",
    "milwaukee": "WI", "madison": "WI", "green bay": "WI",
    "minneapolis": "MN", "st paul": "MN", "saint paul": "MN", "duluth": "MN",
    "st louis": "MO", "saint louis": "MO", "kansas city mo": "MO", "springfield mo": "MO",
    "kansas city": "MO",
    "wichita": "KS", "topeka": "KS", "overland park": "KS", "lawrence ks": "KS",
    "omaha": "NE", "lincoln ne": "NE", "grand island": "NE",
    "des moines": "IA", "cedar rapids": "IA", "davenport": "IA",
    "fargo": "ND", "bismarck": "ND", "grand forks": "ND",
    "sioux falls": "SD", "rapid city": "SD", "pierre": "SD",
    # West
    "los angeles": "CA", "la": "CA", "l.a.": "CA", "san francisco": "CA",
    "sf": "CA", "san diego": "CA", "sacramento": "CA", "san jose": "CA",
    "oakland": "CA", "fresno": "CA", "long beach": "CA",
    "seattle": "WA", "spokane": "WA", "tacoma": "WA", "olympia": "WA",
    "portland": "OR", "eugene": "OR", "salem or": "OR", "bend": "OR",
    "denver": "CO", "boulder": "CO", "colorado springs": "CO", "fort collins": "CO",
    "phoenix": "AZ", "tucson": "AZ", "mesa": "AZ", "scottsdale": "AZ",
    "las vegas": "NV", "vegas": "NV", "reno": "NV", "henderson": "NV",
    "salt lake city": "UT", "slc": "UT", "provo": "UT", "ogden": "UT",
    "albuquerque": "NM", "santa fe": "NM", "las cruces": "NM",
    "boise": "ID", "idaho falls": "ID", "pocatello": "ID",
    "billings": "MT", "missoula": "MT", "bozeman": "MT", "helena": "MT",
    "cheyenne": "WY", "casper": "WY", "laramie": "WY",
    "anchorage": "AK", "fairbanks": "AK", "juneau": "AK",
    "honolulu": "HI", "hilo": "HI", "kailua": "HI",
}
# fmt: on


def city_state(city: str) -> str | None:
    """State code for a known city name (case-insensitive), else ``None``."""
    return CITY_TO_STATE.get(city.strip().lower())


def cities_in_state(abbrev: str) -> tuple[str, ...]:
    """Known city names located in the given state."""
    code = abbrev.strip().upper()
    return tuple(city for city, state in CITY_TO_STATE.items() if state == code)
