"""Temporal robustness of the characterization.

The paper aggregates 385 days of data into one static characterization,
implicitly assuming the attention structure is stationary over the
collection window.  This module tests that assumption by temporal
holdout: split the corpus at its median timestamp, characterize each half
independently, and compare the halves' K matrices row by row
(Bhattacharyya distance, the paper's own metric).  Stable structure →
small half-vs-half distances and matching argmax readings.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import timedelta

from repro.cluster.distances import bhattacharyya_distance
from repro.core.characterize import characterize_organs
from repro.dataset.corpus import TweetCorpus
from repro.errors import DatasetError
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class TemporalStability:
    """Half-vs-half agreement of the organ characterization.

    Attributes:
        split_at_iso: the split timestamp (median tweet time).
        row_distances: per-organ Bhattacharyya distance between the two
            halves' K rows (only organs present in both halves).
        top_co_organ_agreement: fraction of organs whose Fig. 3 top
            co-organ reading matches across halves.
        n_first / n_second: tweets per half.
    """

    split_at_iso: str
    row_distances: dict[Organ, float]
    top_co_organ_agreement: float
    n_first: int
    n_second: int

    @property
    def mean_row_distance(self) -> float:
        if not self.row_distances:
            return float("nan")
        return sum(self.row_distances.values()) / len(self.row_distances)


def temporal_split(corpus: TweetCorpus) -> tuple[TweetCorpus, TweetCorpus]:
    """Split a corpus at its median tweet timestamp.

    Raises:
        DatasetError: if either half would be empty.
    """
    times = sorted(record.tweet.created_at for record in corpus)
    median = times[len(times) // 2]
    start, end = corpus.time_span()
    first = corpus.in_window(start, median)
    second = corpus.in_window(median, end + timedelta(seconds=1))
    if not len(first) or not len(second):  # pragma: no cover - guarded above
        raise DatasetError("temporal split produced an empty half")
    return first, second


def organ_characterization_stability(corpus: TweetCorpus) -> TemporalStability:
    """Measure half-vs-half stability of the Fig. 3 characterization."""
    first, second = temporal_split(corpus)
    char_first = characterize_organs(first)
    char_second = characterize_organs(second)

    common = set(char_first.characterized_organs()) & set(
        char_second.characterized_organs()
    )
    row_distances = {
        organ: bhattacharyya_distance(
            char_first.aggregation.row(organ.value),
            char_second.aggregation.row(organ.value),
        )
        for organ in common
    }
    agreements = [
        char_first.top_co_organ(organ) is char_second.top_co_organ(organ)
        for organ in common
    ]
    times = sorted(record.tweet.created_at for record in corpus)
    return TemporalStability(
        split_at_iso=times[len(times) // 2].isoformat(),
        row_distances=row_distances,
        top_co_organ_agreement=(
            sum(agreements) / len(agreements) if agreements else float("nan")
        ),
        n_first=len(first),
        n_second=len(second),
    )
