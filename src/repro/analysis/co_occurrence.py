"""Organ co-mention structure (§IV-A's dual-transplant reading).

The paper reads Fig. 3 as evidence that conversations reflect organ
dependencies — dual transplantation (heart–kidney, liver–kidney,
kidney–pancreas are the common pairs) and cascade effects of organ
failure.  This module quantifies that directly: how often organ pairs are
mentioned together, within single tweets and within a user's aggregated
stream, with a lift score against independence.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from repro.data.transplants import COMMON_DUAL_TRANSPLANTS
from repro.dataset.corpus import TweetCorpus
from repro.organs import N_ORGANS, ORGANS, Organ


@dataclass(frozen=True, slots=True)
class CoOccurrenceResult:
    """Pairwise organ co-mention statistics.

    Attributes:
        counts: (n, n) symmetric matrix of co-mention unit counts
            (diagonal = units mentioning the organ at all).
        lift: (n, n) observed/expected co-mention ratio under
            independence; ``nan`` where either marginal is zero.
        n_units: number of units (tweets or users) analyzed.
        level: ``"tweet"`` or ``"user"``.
    """

    counts: np.ndarray
    lift: np.ndarray
    n_units: int
    level: str

    def pair_count(self, a: Organ, b: Organ) -> int:
        return int(self.counts[a.index, b.index])

    def pair_lift(self, a: Organ, b: Organ) -> float:
        return float(self.lift[a.index, b.index])

    def top_pairs(self, k: int = 5) -> list[tuple[Organ, Organ, int, float]]:
        """The k most frequent organ pairs: (a, b, count, lift)."""
        pairs = [
            (a, b, self.pair_count(a, b), self.pair_lift(a, b))
            for a, b in combinations(ORGANS, 2)
        ]
        pairs.sort(key=lambda item: -item[2])
        return pairs[:k]

    def dual_transplant_rank(self) -> float:
        """Mean frequency-rank of the common dual-transplant pairs.

        Lower is better: 1.0 means the paper's cited dual-transplant
        pairs are exactly the most co-mentioned pairs.
        """
        ranked = [
            frozenset((a, b))
            for a, b, __, __ in self.top_pairs(k=len(ORGANS) * N_ORGANS)
        ]
        ranks = [
            ranked.index(pair) + 1
            for pair in COMMON_DUAL_TRANSPLANTS
            if pair in ranked
        ]
        return float(np.mean(ranks)) if ranks else float("nan")


def organ_co_occurrence(
    corpus: TweetCorpus, level: str = "user"
) -> CoOccurrenceResult:
    """Compute pairwise co-mention counts and lift.

    Args:
        corpus: the analysis corpus.
        level: ``"user"`` counts a pair once per user whose aggregated
            tweets mention both organs (the paper's preferred unit);
            ``"tweet"`` counts per single tweet.

    Raises:
        ValueError: on an unknown level.
    """
    if level == "user":
        organ_sets = [user.distinct_organs for user in corpus.user_slices()]
    elif level == "tweet":
        organ_sets = [record.distinct_organs for record in corpus]
    else:
        raise ValueError(f"level must be 'user' or 'tweet', got {level!r}")

    counts = np.zeros((N_ORGANS, N_ORGANS), dtype=np.int64)
    for organs in organ_sets:
        indices = sorted(organ.index for organ in organs)
        for index in indices:
            counts[index, index] += 1
        for a, b in combinations(indices, 2):
            counts[a, b] += 1
            counts[b, a] += 1

    n_units = len(organ_sets)
    marginals = np.diag(counts).astype(float) / max(n_units, 1)
    expected = np.outer(marginals, marginals) * n_units
    with np.errstate(divide="ignore", invalid="ignore"):
        lift = np.where(expected > 0, counts / expected, np.nan)
    np.fill_diagonal(lift, np.nan)
    return CoOccurrenceResult(
        counts=counts, lift=lift, n_units=n_units, level=level
    )
