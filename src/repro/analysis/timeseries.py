"""Temporal structure of the conversation stream.

Table I reports an average of 350 tweets/day over 385 days; the
conclusion frames the method as a real-time sensor.  This module supplies
the temporal primitives: a daily volume series (optionally per organ), a
rolling baseline, and z-score burst detection — days whose volume
deviates far above the local baseline, the events a campaign monitor
would react to.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from datetime import date, timedelta

import numpy as np

from repro.dataset.corpus import TweetCorpus
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class DailySeries:
    """Tweet counts per calendar day, gap-free.

    Attributes:
        start: first day.
        counts: (n_days,) tweets per day; days without tweets are zero.
    """

    start: date
    counts: np.ndarray

    @property
    def n_days(self) -> int:
        return int(self.counts.size)

    def day(self, index: int) -> date:
        return self.start + timedelta(days=index)

    @property
    def mean_per_day(self) -> float:
        return float(self.counts.mean())

    def rolling_mean(self, window: int = 7) -> np.ndarray:
        """Trailing rolling mean with a ramp-up over the first window."""
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        cumulative = np.cumsum(np.insert(self.counts.astype(float), 0, 0.0))
        result = np.empty(self.n_days)
        for index in range(self.n_days):
            low = max(0, index - window + 1)
            result[index] = (cumulative[index + 1] - cumulative[low]) / (
                index + 1 - low
            )
        return result


@dataclass(frozen=True, slots=True)
class Burst:
    """One detected volume burst.

    Attributes:
        day: calendar day of the burst.
        count: tweets that day.
        baseline: trailing rolling-mean volume.
        z_score: (count − baseline) / baseline std within the window.
    """

    day: date
    count: int
    baseline: float
    z_score: float


def daily_series(corpus: TweetCorpus, organ: Organ | None = None) -> DailySeries:
    """Daily volume series, optionally restricted to one organ's mentions."""
    per_day: Counter[date] = Counter()
    for record in corpus:
        if organ is not None and organ not in record.distinct_organs:
            continue
        per_day[record.tweet.created_at.date()] += 1
    if not per_day:
        raise ValueError("no tweets match the requested series")
    start = min(per_day)
    end = max(per_day)
    n_days = (end - start).days + 1
    counts = np.zeros(n_days, dtype=np.int64)
    for day, count in per_day.items():
        counts[(day - start).days] = count
    return DailySeries(start=start, counts=counts)


def detect_bursts(
    series: DailySeries, window: int = 14, threshold: float = 3.0
) -> list[Burst]:
    """Days whose volume exceeds the trailing baseline by ``threshold``σ.

    The standard deviation is computed over the same trailing window, with
    a floor of √baseline (Poisson noise) so quiet periods do not flag
    trivial fluctuations.

    Raises:
        ValueError: on a non-positive window or threshold.
    """
    if window < 2:
        raise ValueError(f"window must be >= 2, got {window}")
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    counts = series.counts.astype(float)
    bursts: list[Burst] = []
    for index in range(1, series.n_days):
        low = max(0, index - window)
        history = counts[low:index]
        baseline = float(history.mean())
        spread = max(float(history.std()), np.sqrt(max(baseline, 1.0)))
        z_score = (counts[index] - baseline) / spread
        if z_score >= threshold:
            bursts.append(
                Burst(
                    day=series.day(index),
                    count=int(counts[index]),
                    baseline=baseline,
                    z_score=float(z_score),
                )
            )
    return bursts
