"""Twitter demographic bias, quantified (§V limitations).

The paper warns that Twitter users are "a highly non-uniform sample of
the USA population especially with regards to geography … the Midwestern
population of United States is underrepresented among Twitter users"
(citing Mislove et al.).  This module measures that bias in a collected
corpus: each state's share of corpus users against its share of census
population, and the same ratio aggregated by census region.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.dataset.corpus import TweetCorpus
from repro.geo.gazetteer import STATES, CensusRegion, total_population


@dataclass(frozen=True, slots=True)
class RepresentationBias:
    """Per-state and per-region representation ratios.

    A ratio of 1 means the state holds the same share of corpus users as
    of the US population; < 1 means under-representation.

    Attributes:
        state_ratio: USPS code → representation ratio (only states with
            at least one corpus user).
        region_ratio: census region → aggregated representation ratio.
        n_users: located users in the corpus.
    """

    state_ratio: dict[str, float]
    region_ratio: dict[CensusRegion, float]
    n_users: int

    def underrepresented_states(self, threshold: float = 0.9) -> list[str]:
        """States with ratio below ``threshold``, most biased first."""
        return sorted(
            (s for s, ratio in self.state_ratio.items() if ratio < threshold),
            key=lambda s: self.state_ratio[s],
        )

    def most_biased_region(self) -> CensusRegion:
        """The region with the lowest representation ratio."""
        return min(self.region_ratio, key=lambda r: self.region_ratio[r])


def representation_bias(corpus: TweetCorpus) -> RepresentationBias:
    """Compute representation ratios for a corpus.

    Raises:
        ValueError: if the corpus has no located users.
    """
    user_states = Counter(
        user.state for user in corpus.user_slices() if user.state is not None
    )
    n_users = sum(user_states.values())
    if n_users == 0:
        raise ValueError("corpus has no located users")

    population = float(total_population())
    state_ratio: dict[str, float] = {}
    region_users: Counter[CensusRegion] = Counter()
    region_population: Counter[CensusRegion] = Counter()
    for state in STATES:
        region_population[state.region] += state.population
        users = user_states.get(state.abbrev, 0)
        region_users[state.region] += users
        if users:
            user_share = users / n_users
            population_share = state.population / population
            state_ratio[state.abbrev] = user_share / population_share

    region_ratio = {
        region: (region_users[region] / n_users)
        / (region_population[region] / population)
        for region in region_population
        if region_users[region] or region_population[region]
    }
    return RepresentationBias(
        state_ratio=state_ratio,
        region_ratio=region_ratio,
        n_users=n_users,
    )
