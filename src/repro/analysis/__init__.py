"""Secondary analyses the paper discusses but does not plot.

* :mod:`repro.analysis.co_occurrence` — within-tweet and within-user
  organ co-mention structure, compared against the dual-transplant pairs
  §IV-A cites (heart–kidney, liver–kidney, kidney–pancreas).
* :mod:`repro.analysis.bias` — the §V limitations, quantified: per-state
  Twitter representation against census population, and the Midwest
  under-representation.
* :mod:`repro.analysis.timeseries` — daily conversation volume, rolling
  baselines, and burst detection (the temporal side of the "social
  sensor").
* :mod:`repro.analysis.consistency` — agreement between the Fig. 5
  highlighted organs and the Fig. 6 cluster zones ("such clusters present
  some degree of consistence with the aforementioned results").
* :mod:`repro.analysis.stability` — bootstrap stability of the Fig. 3
  readings (§IV-A's "less reliable statistics" caveat, quantified).
* :mod:`repro.analysis.robustness` — temporal-holdout stationarity of the
  characterization over the 385-day window.
"""

from repro.analysis.bias import RepresentationBias, representation_bias
from repro.analysis.co_occurrence import (
    CoOccurrenceResult,
    organ_co_occurrence,
)
from repro.analysis.consistency import (
    ZoneConsistency,
    highlight_cluster_consistency,
)
from repro.analysis.robustness import (
    TemporalStability,
    organ_characterization_stability,
    temporal_split,
)
from repro.analysis.stability import OrganStability, co_attention_stability
from repro.analysis.timeseries import (
    Burst,
    DailySeries,
    daily_series,
    detect_bursts,
)

__all__ = [
    "Burst",
    "CoOccurrenceResult",
    "DailySeries",
    "OrganStability",
    "RepresentationBias",
    "TemporalStability",
    "ZoneConsistency",
    "co_attention_stability",
    "daily_series",
    "detect_bursts",
    "highlight_cluster_consistency",
    "organ_characterization_stability",
    "organ_co_occurrence",
    "representation_bias",
    "temporal_split",
]
