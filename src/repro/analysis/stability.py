"""Bootstrap stability of the organ characterization (§IV-A's caveat).

The paper cautions that "the analysis of intestine is less significant,
since the majority of transplants happen in pediatric patients and are
only related to a small fraction of the overall organ transplants … This
fact leads to less reliable statistics."  This module turns that caveat
into a measurement: bootstrap-resample the users, recompute each organ's
top co-organ (the Fig. 3 reading), and report how often each organ's
answer agrees with the full-data answer.  Small groups (intestine) come
out measurably less stable than large ones (heart).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.core.aggregation import aggregate
from repro.core.attention import AttentionMatrix
from repro.core.membership import Membership
from repro.errors import CharacterizationError
from repro.organs import ORGAN_NAMES, ORGANS, Organ


@dataclass(frozen=True, slots=True)
class OrganStability:
    """Bootstrap stability of one organ's Fig. 3 reading.

    Attributes:
        organ: the focal organ.
        full_data_top: top co-organ on the full data.
        stability: fraction of bootstrap replicates agreeing with it.
        group_size: users whose most-cited organ this is (full data).
        replicate_tops: top co-organ counts across replicates.
    """

    organ: Organ
    full_data_top: Organ
    stability: float
    group_size: int
    replicate_tops: dict[Organ, int]


def co_attention_stability(
    attention: AttentionMatrix,
    n_replicates: int = 100,
    seed: int = 0,
) -> dict[Organ, OrganStability]:
    """Bootstrap the Fig. 3 top-co-organ reading per focal organ.

    Args:
        attention: the full Û matrix.
        n_replicates: bootstrap resamples of the user population.
        seed: RNG seed.

    Raises:
        CharacterizationError: if fewer than 2 users, or n_replicates < 1.
    """
    if n_replicates < 1:
        raise CharacterizationError(
            f"n_replicates must be >= 1, got {n_replicates}"
        )
    m = attention.n_users
    if m < 2:
        raise CharacterizationError("stability analysis needs >= 2 users")
    rng = np.random.default_rng(seed)

    assignments = attention.most_cited()
    full_tops = _top_co_organs(attention.normalized, assignments)
    replicate_counts: dict[Organ, Counter[Organ]] = {
        organ: Counter() for organ in ORGANS
    }
    for __ in range(n_replicates):
        rows = rng.integers(0, m, size=m)
        tops = _top_co_organs(
            attention.normalized[rows], assignments[rows]
        )
        for organ, top in tops.items():
            replicate_counts[organ][top] += 1

    results: dict[Organ, OrganStability] = {}
    sizes = np.bincount(assignments, minlength=len(ORGANS))
    for organ in ORGANS:
        full_top = full_tops.get(organ)
        if full_top is None:
            continue
        counts = replicate_counts[organ]
        total = sum(counts.values())
        stability = counts[full_top] / total if total else 0.0
        results[organ] = OrganStability(
            organ=organ,
            full_data_top=full_top,
            stability=stability,
            group_size=int(sizes[organ.index]),
            replicate_tops=dict(counts),
        )
    return results


def _top_co_organs(
    normalized: np.ndarray, assignments: np.ndarray
) -> dict[Organ, Organ]:
    """Top co-organ per focal organ for one (resampled) population."""
    membership = Membership(
        group_labels=ORGAN_NAMES, assignments=assignments
    )
    try:
        result = aggregate(_as_attention(normalized), membership)
    except np.linalg.LinAlgError:  # pragma: no cover - defensive
        return {}
    tops: dict[Organ, Organ] = {}
    for row_index, label in enumerate(result.group_labels):
        organ = Organ(label)
        row = result.matrix[row_index].copy()
        row[organ.index] = -np.inf
        tops[organ] = ORGANS[int(np.argmax(row))]
    return tops


def _as_attention(normalized: np.ndarray) -> AttentionMatrix:
    """Wrap a bare matrix for :func:`repro.core.aggregation.aggregate`."""
    m = normalized.shape[0]
    return AttentionMatrix(
        user_ids=tuple(range(m)),
        states=(None,) * m,
        counts=normalized,
        normalized=normalized,
    )
