"""Fig. 5 ↔ Fig. 6 consistency (§IV-B2).

The paper observes that the hierarchical clusters "present some degree of
consistence with the aforementioned results regarding the organs that are
highlighted at each state" — e.g. Delaware, Rhode Island, and Colorado
(liver) cluster together, as do Oregon, Georgia, and Virginia (lung).
This module quantifies the claim: for a flat cut of the dendrogram, how
often do two states that share a highlighted organ land in the same
cluster, against the rate expected from cluster sizes alone?
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.state_clusters import StateClustering
from repro.organs import Organ


@dataclass(frozen=True, slots=True)
class ZoneConsistency:
    """Agreement between highlighted organs and cluster assignments.

    Attributes:
        n_clusters: flat-cut size used.
        same_highlight_pairs: state pairs sharing a highlighted organ.
        pairs_co_clustered: of those, pairs in the same flat cluster.
        expected_co_clustered: co-clustered pairs expected if highlights
            were independent of the clustering (from cluster sizes).
    """

    n_clusters: int
    same_highlight_pairs: int
    pairs_co_clustered: int
    expected_co_clustered: float

    @property
    def observed_rate(self) -> float:
        if self.same_highlight_pairs == 0:
            return float("nan")
        return self.pairs_co_clustered / self.same_highlight_pairs

    @property
    def expected_rate(self) -> float:
        if self.same_highlight_pairs == 0:
            return float("nan")
        return self.expected_co_clustered / self.same_highlight_pairs

    @property
    def enrichment(self) -> float:
        """observed / expected co-clustering; > 1 means consistency."""
        if not self.expected_co_clustered:
            return float("nan")
        return self.pairs_co_clustered / self.expected_co_clustered


def highlight_cluster_consistency(
    clustering: StateClustering,
    highlights: dict[str, tuple[Organ, ...]],
    n_clusters: int = 8,
) -> ZoneConsistency:
    """Measure Fig. 5 / Fig. 6 agreement at one flat cut.

    Args:
        clustering: the Fig. 6 state clustering.
        highlights: the Fig. 5 state → highlighted organs mapping.
        n_clusters: flat-cut size.
    """
    assignment = clustering.cut(n_clusters)
    states = [
        state
        for state in clustering.states
        if highlights.get(state)
    ]
    same_pairs = [
        (a, b)
        for a, b in combinations(states, 2)
        if set(highlights[a]) & set(highlights[b])
    ]
    co_clustered = sum(assignment[a] == assignment[b] for a, b in same_pairs)

    # Expected co-clustering under independence: probability two random
    # states share a cluster, from the cluster size distribution over all
    # clustered states.
    sizes: dict[int, int] = {}
    for state in clustering.states:
        sizes[assignment[state]] = sizes.get(assignment[state], 0) + 1
    total = len(clustering.states)
    if total < 2:
        p_same = 0.0
    else:
        p_same = sum(size * (size - 1) for size in sizes.values()) / (
            total * (total - 1)
        )
    return ZoneConsistency(
        n_clusters=n_clusters,
        same_highlight_pairs=len(same_pairs),
        pairs_co_clustered=int(co_clustered),
        expected_co_clustered=p_same * len(same_pairs),
    )
