"""Exception hierarchy for the ``repro`` package.

Every package-specific failure derives from :class:`ReproError`, so callers
can catch one type at an integration boundary.  Subsystems define narrower
exceptions in their own modules when the error carries extra state (e.g.
:class:`repro.organs.UnknownOrganError`); simple failures live here.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid or inconsistent.

    Also a :class:`ValueError`: a bad numeric field on a frozen policy
    dataclass is exactly what ``ValueError`` means in stdlib terms, so
    callers holding only generic expectations may catch either.
    """


class PipelineError(ReproError):
    """A stage of the collection pipeline failed."""


class DatasetError(ReproError):
    """A dataset/corpus operation failed (e.g. malformed record)."""


class SerializationError(DatasetError):
    """A record could not be encoded to or decoded from JSONL."""


class StorageError(ReproError):
    """A durable-storage operation failed (atomic write, manifest, scrub).

    Raised when the storage layer cannot uphold its durability contract —
    persistent I/O errors past the retry budget, out-of-disk during an
    atomic replace, or an unreadable integrity sidecar.  A transient fault
    that the bounded retry absorbed is *not* an error.
    """


class CharacterizationError(ReproError):
    """A characterization (attention/membership/aggregation) step failed."""


class EmptyGroupError(CharacterizationError):
    """An aggregation group has no members, so its profile is undefined.

    The paper's Eq. 3 inverts ``LᵀL``; a group with zero members makes the
    matrix singular.  Callers choose between dropping empty groups and
    raising, via ``on_empty`` arguments.
    """

    def __init__(self, group: object):
        super().__init__(f"aggregation group {group!r} has no members")
        self.group = group


class ClusteringError(ReproError):
    """A clustering algorithm received invalid input or failed to converge."""


class GeoError(ReproError):
    """A geolocation operation failed."""
