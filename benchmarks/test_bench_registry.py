"""Bench R1 — the registry substrate and the sensor-validity cross-check.

The paper's Fig. 2a reference data (2012 transplant volumes), the §I
waitlist arithmetic, and the §IV-B1 Cao et al. cross-validation all come
from the OPTN registry; this bench regenerates them from the simulated
registry and closes the loop: the Twitter-side Kansas kidney anomaly is
jointly flagged with the registry-side Kansas donor surplus.
"""

import pytest

from repro.core.relative_risk import state_organ_risks
from repro.data.transplants import TRANSPLANTS_2012, transplant_rank
from repro.organs import ORGANS, Organ
from repro.registry.config import calibrated_2012_config
from repro.registry.model import TransplantRegistry
from repro.registry.statistics import summarize_registry
from repro.registry.validation import sensor_validity


@pytest.mark.benchmark(group="registry")
def test_registry_reproduces_published_aggregates(benchmark):
    outcome = benchmark.pedantic(
        lambda: TransplantRegistry(calibrated_2012_config(seed=3)).run(),
        rounds=1,
        iterations=1,
    )
    stats = summarize_registry(outcome)

    print()
    for organ in ORGANS:
        print(
            f"{organ.value:<10} transplants {stats.national_transplants[organ]:>8,.0f} "
            f"(OPTN 2012: {TRANSPLANTS_2012[organ]:>6,})  "
            f"waitlist {stats.national_waitlist[organ]:>8,.0f}"
        )
    print(f"waitlist deaths/day: {stats.deaths_per_day:.1f} (paper §I: ~22)")

    ours = sorted(ORGANS, key=lambda organ: -stats.national_transplants[organ])
    assert ours == transplant_rank()
    for organ, published in TRANSPLANTS_2012.items():
        # 12% relative, with a ~2.5σ Poisson allowance for tiny volumes.
        tolerance = max(0.12 * published, 2.5 * published**0.5)
        assert abs(stats.national_transplants[organ] - published) <= (
            tolerance
        ), organ
    assert stats.deaths_per_day == pytest.approx(22.0, abs=4.0)
    assert stats.transplant_shortfall(Organ.KIDNEY) > 3.0


@pytest.mark.benchmark(group="registry")
def test_sensor_validity_cross_check(benchmark, bench_corpus):
    """Twitter RR vs registry donor geography (the Kansas coincidence)."""
    registry_stats = summarize_registry(
        TransplantRegistry(calibrated_2012_config(seed=3, months=72)).run()
    )
    risks = state_organ_risks(bench_corpus)
    validity = benchmark.pedantic(
        sensor_validity,
        args=(risks, registry_stats, Organ.KIDNEY),
        rounds=1,
        iterations=1,
    )

    print()
    print(
        f"sensor states: {validity.sensor_states}; "
        f"registry surplus states: {validity.registry_states}; "
        f"jointly flagged: {validity.jointly_flagged}; "
        f"rank correlation r = {validity.correlation.r:.2f}"
    )
    assert "KS" in validity.jointly_flagged
    assert validity.agrees
