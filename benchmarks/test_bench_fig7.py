"""Bench F7 — regenerate Fig. 7 (K-Means user clusters, k = 12).

Asserts the §IV-C structure: k = 12 clusters with a very high silhouette
(the paper reports 0.953), at least one cluster per organ, and the
qualitative mix Fig. 7 shows — single-organ clusters, multi-organ
clusters, and a broad cluster mentioning virtually all organs.
"""

import numpy as np
import pytest

from repro.config import UserClusteringConfig
from repro.core.user_clusters import cluster_users, sweep_k
from repro.organs import N_ORGANS


@pytest.mark.benchmark(group="fig7")
def test_fig7_user_clustering(benchmark, bench_suite):
    attention = bench_suite.attention
    clustering = benchmark.pedantic(
        cluster_users,
        args=(attention, UserClusteringConfig(k=12, n_init=4, seed=0)),
        rounds=1,
        iterations=1,
    )

    print()
    print(bench_suite.run_fig7().render())

    assert clustering.k == 12
    assert clustering.silhouette > 0.85  # paper: 0.953

    # One cluster per organ corner (the k >= n rationale).
    dominant = {
        int(np.argmax(clustering.result.centers[c])) for c in range(12)
    }
    assert dominant == set(range(N_ORGANS))

    # Qualitative mix: single-focus clusters and at least one broader one.
    focus_counts = [clustering.n_focus_organs(c) for c in range(12)]
    assert focus_counts.count(1) >= 6
    assert max(focus_counts) >= 2


@pytest.mark.benchmark(group="fig7")
def test_fig7_model_selection_sweep(benchmark, bench_suite):
    """The paper's k-selection: inertia decreases with k while the
    silhouette stays high; k = 12 remains a defensible choice."""
    attention = bench_suite.attention
    sweep = benchmark.pedantic(
        sweep_k,
        args=(attention, (6, 9, 12, 15)),
        kwargs={"config": UserClusteringConfig(n_init=3, seed=0)},
        rounds=1,
        iterations=1,
    )
    print()
    for k, inertia, silhouette in zip(sweep.ks, sweep.inertias, sweep.silhouettes):
        print(f"k={k:>2}  inertia={inertia:10.2f}  silhouette={silhouette:.3f}")
    assert sweep.inertias[-1] <= sweep.inertias[0]
    assert all(s > 0.8 for s in sweep.silhouettes)
