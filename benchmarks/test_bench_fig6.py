"""Bench F6 — regenerate Fig. 6 (hierarchical state clustering).

Asserts the §IV-B2 structure: the Bhattacharyya similarity matrix over
state signatures yields a dendrogram whose flat cut groups same-organ
states (the paper's liver/lung/kidney/heart "zones"), with states lacking
a highlighted organ tending to cluster together.
"""

import numpy as np
import pytest

from repro.core.characterize import characterize_regions
from repro.core.state_clusters import cluster_states


@pytest.mark.benchmark(group="fig6")
def test_fig6_state_clustering(benchmark, bench_corpus, bench_suite):
    characterization = characterize_regions(bench_corpus)
    clustering = benchmark.pedantic(
        cluster_states, args=(characterization,), rounds=1, iterations=1
    )

    print()
    print(bench_suite.run_fig6().render(n_clusters=5))

    states = list(clustering.states)
    matrix = clustering.distance_matrix

    # Dendrogram covers every state exactly once.
    assert sorted(clustering.leaf_order()) == sorted(states)

    # Zone structure: same-planted-organ states are mutually closer than
    # cross-organ states (well-populated states only, for power).
    zones = {
        "liver": [s for s in ("CO", "TX", "NC", "AZ") if s in states],
        "lung": [s for s in ("OR", "GA", "VA", "WA", "MA") if s in states],
        "kidney": [s for s in ("KS", "LA", "NY", "TN") if s in states],
    }

    def mean_distance(group_a, group_b):
        return float(np.mean([
            matrix[states.index(a), states.index(b)]
            for a in group_a for b in group_b if a != b
        ]))

    for organ, zone in zones.items():
        others = [s for o, z in zones.items() if o != organ for s in z]
        assert mean_distance(zone, zone) < mean_distance(zone, others), organ

    # A moderate flat cut keeps at least one same-organ pair together.
    assignment = clustering.cut(6)
    kept_together = sum(
        assignment[zone[i]] == assignment[zone[j]]
        for zone in zones.values()
        for i in range(len(zone))
        for j in range(i + 1, len(zone))
    )
    assert kept_together >= 3
