"""Ablation A1 — user-level vs tweet-level characterization (§III-B).

The paper chooses a user-based representation because tweet-based
statistics "may be biased by the existence of a few heavily-active
users".  We inject one hyperactive intestine-obsessed user into a single
state and measure how much each representation's state signature moves:
the tweet-level signature is dragged far toward intestine, the
user-level signature barely moves.
"""

from datetime import datetime, timezone

import pytest

from repro.core.characterize import characterize_regions
from repro.core.tweet_level import tweet_level_state_aggregation
from repro.dataset.corpus import TweetCorpus
from repro.dataset.records import CollectedTweet
from repro.geo.geocoder import GeoMatch
from repro.organs import Organ
from repro.twitter.models import Tweet, UserProfile

_TARGET_STATE = "CA"
_HYPERACTIVE_TWEETS = 400


def _inject_hyperactive_user(corpus: TweetCorpus) -> TweetCorpus:
    spam = [
        CollectedTweet(
            tweet=Tweet(
                tweet_id=10_000_000 + i,
                user=UserProfile(
                    user_id=9_999_999, screen_name="intestine_spammer"
                ),
                text="intestine donor awareness",
                created_at=datetime(2015, 8, 1, tzinfo=timezone.utc),
            ),
            location=GeoMatch("US", _TARGET_STATE, 0.95, "test"),
            mentions={Organ.INTESTINE: 1},
        )
        for i in range(_HYPERACTIVE_TWEETS)
    ]
    return TweetCorpus(list(corpus.records) + spam)


@pytest.mark.benchmark(group="ablation-user-vs-tweet")
def test_user_level_resists_heavy_user_bias(benchmark, bench_corpus):
    polluted = _inject_hyperactive_user(bench_corpus)

    def run_both():
        user_level = characterize_regions(polluted)
        tweet_level = tweet_level_state_aggregation(polluted)
        return user_level, tweet_level

    user_level, tweet_level = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    clean_user = characterize_regions(bench_corpus)
    intestine = Organ.INTESTINE.index

    clean_share = clean_user.aggregation.row(_TARGET_STATE)[intestine]
    user_share = user_level.aggregation.row(_TARGET_STATE)[intestine]
    tweet_share = tweet_level.row(_TARGET_STATE)[intestine]

    print()
    print(
        f"{_TARGET_STATE} intestine share — clean user-level: "
        f"{clean_share:.4f}, polluted user-level: {user_share:.4f}, "
        f"polluted tweet-level: {tweet_share:.4f}"
    )

    # One spammer ≈ one extra user among hundreds: user-level moves a
    # little; tweet-level is dragged by hundreds of extra tweets.
    user_distortion = user_share - clean_share
    tweet_distortion = tweet_share - clean_share
    assert tweet_distortion > 5 * max(user_distortion, 1e-9)
    assert tweet_share > 3 * clean_share
    assert user_share < clean_share + 0.02
