"""Shared benchmark fixtures.

One synthetic world + pipeline run is shared across every bench module.
``REPRO_BENCH_SCALE`` scales the dataset (1.0 ≈ the paper's Table I
volumes, ~975k keyword-matched tweets); the default 0.12 keeps the whole
bench suite at a few minutes while giving the shape assertions enough
statistical power — below scale ≈ 0.1, small states (Kansas has ~50
located users at 0.08) can miss their planted anomalies by sampling
noise, exactly as a real undersized collection would.
"""

from __future__ import annotations

import os

import pytest

from repro.config import AnalysisConfig
from repro.pipeline.runner import CollectionPipeline
from repro.report.experiments import ExperimentSuite
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld

BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.12"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))


@pytest.fixture(scope="session")
def bench_world() -> SyntheticWorld:
    return SyntheticWorld(paper2016_scenario(scale=BENCH_SCALE, seed=BENCH_SEED))


@pytest.fixture(scope="session")
def bench_run(bench_world):
    return CollectionPipeline().run(bench_world.firehose())


@pytest.fixture(scope="session")
def bench_corpus(bench_run):
    return bench_run[0]


@pytest.fixture(scope="session")
def bench_report(bench_run):
    return bench_run[1]


@pytest.fixture(scope="session")
def bench_suite(bench_corpus, bench_report) -> ExperimentSuite:
    return ExperimentSuite(bench_corpus, bench_report, AnalysisConfig())
