"""Timing harness for the sharded pipeline and parallel clustering.

Produces the ``BENCH_pipeline.json`` artifact: throughput of the
collect→augment→US-filter pipeline at several corpus sizes and worker
counts (with a byte-identity check against the serial run), wall time of
the clustering k-sweep per worker count, and the bounded-memory
silhouette at paper scale.  Peak RSS is taken from ``getrusage`` for the
parent and, separately, the worker processes.

Speedups are *measured*, not assumed: on a single-core container the
sharded run is expected to be slower than serial (process setup plus
pickling with no extra cores to spend), and the artifact records
``cpu_count`` so readers can interpret the numbers honestly.

Schema v2 adds a ``supervision`` section: the cost of the supervised
pool (process-per-task isolation, heartbeat polling, retries) on the
fault-free path, measured against the plain in-process run of the same
workload, plus the cost under the chaos fault plan.  Every supervised
run is checked byte-identical to the in-process baseline — overhead is
only reported for runs that produce the same corpus.

Schema v3 adds a ``durability`` section: the cost of the atomic write
path (temp sibling, fsyncs, rename, directory fsync) plus the
streaming integrity sidecar, measured against a plain buffered write
of the same records.  Both paths must produce byte-identical corpora
and the sidecar must verify, so the overhead number prices exactly the
crash-safety and bitrot-detection guarantees and nothing else.

Schema v4 adds an ``observability`` section: the cost of run telemetry
(ambient span/counter recording plus per-worker trace buffers shipped
back through the result pipes), measured as a traced pipeline run
against the untraced run of the same firehose — which must be
byte-identical, the determinism invariant the obs layer is built
around — plus the time and size of the trace export itself.

Schema v5 adds a ``static_analysis`` section: wall time of the
reprolint passes over ``src/repro`` — the file-local rules and the
interprocedural whole-program pass (parse, call-graph build, summaries,
dataflow fixpoints, RPL101–RPL105) — together with the analyzed-program
size (modules, functions, classes, call edges).  The numbers back the
CI timing guard: the whole-program pass must stay well under its
30-second budget, and the artifact shows what that budget buys.

Schema v6 adds a ``serving`` section: throughput and shed rate of the
overload-robust query service at offered loads of 1x, 4x, and 16x the
sustained admission capacity (the token-bucket refill rate).  Each run
replays an evenly spaced request schedule on the simulated clock and
must satisfy the request-accounting invariant — completed + shed +
expired + dead-lettered == submitted — so the shed rate measures
explicit back-pressure, never silent loss.

Schema v7 adds a ``hot_path`` section (:mod:`benchmarks.perf.hotpath`):
per-layer microbenchmarks of the single-core hot-path engine — the
allocation-free token scan, the Aho–Corasick keyword filter, the
automaton organ matcher, and the geocoder memo — each timed against the
naive reference implementation it replaced and required to produce
*identical* results (the parity booleans are schema-enforced).  The
section also records the serial 1M-tweet speedup against the frozen v6
baseline throughput, and the ``serving`` runs now report paid artifact
loads per request, which the schema requires to stay below one (the
generation cache must amortize loads across requests).
"""

from __future__ import annotations

import json
import os
import resource
import tempfile
import time
from pathlib import Path
from typing import Any

import numpy as np

from benchmarks.perf.hotpath import bench_hot_path
from repro.core.attention import AttentionMatrix
from repro.core.user_clusters import sweep_k
from repro.cluster.silhouette import silhouette_samples
from repro.config import CollectionConfig, UserClusteringConfig
from repro.dataset.io import write_jsonl
from repro.dataset.records import CollectedTweet
from repro.faults.compute import WorkerFaultPlan
from repro.geo.geocoder import GeoMatch
from repro.obs import Telemetry, activate
from repro.obs.export import write_trace
from repro.organs import N_ORGANS, Organ
from repro.pipeline.parallel import run_sharded
from repro.pipeline.runner import CollectionPipeline
from repro.serve import (
    ArtifactCache,
    QueryRequest,
    QueryService,
    ServicePolicy,
)
from repro.storage.manifest import verify_file
from repro.supervise import SupervisorPolicy
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld
from repro.twitter.models import Tweet, UserProfile

SCHEMA_VERSION = 7

#: Firehose tweets emitted per unit of scenario scale (calibrated once;
#: the artifact records the *actual* count per size).
_FIREHOSE_PER_SCALE = 1_100_000

#: The v6 artifact's serial 1M-tweet throughput (tweets/s), frozen as
#: the reference point for the hot-path engine's ``speedup_vs_v6``.
V6_SERIAL_1M_THROUGHPUT = 23_221.6


def cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def peak_rss_mb() -> dict[str, float]:
    """Peak resident set size in MiB for this process and its children.

    ``ru_maxrss`` is kilobytes on Linux; children's peak only reflects
    workers that have already been reaped.
    """
    to_mb = 1.0 / 1024.0
    return {
        "self": resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * to_mb,
        "children": (
            resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss * to_mb
        ),
    }


def make_firehose(size_target: int, seed: int) -> list:
    scale = max(size_target / _FIREHOSE_PER_SCALE, 1e-4)
    world = SyntheticWorld(paper2016_scenario(scale=scale, seed=seed))
    return list(world.firehose())


def corpus_fingerprint(corpus) -> bytes:
    return "\n".join(
        json.dumps(record.to_dict(), ensure_ascii=False)
        for record in corpus.records
    ).encode("utf-8")


def bench_pipeline_size(
    size_target: int, worker_counts: tuple[int, ...], seed: int
) -> dict[str, Any]:
    """Time the pipeline at one corpus size across worker counts."""
    source = make_firehose(size_target, seed)
    entry: dict[str, Any] = {
        "size_target": size_target,
        "firehose_tweets": len(source),
        "runs": [],
    }
    serial_seconds: float | None = None
    serial_bytes: bytes | None = None
    for workers in worker_counts:
        start = time.perf_counter()
        corpus, report = CollectionPipeline().run(source, workers=workers)
        seconds = time.perf_counter() - start
        fingerprint = corpus_fingerprint(corpus)
        if workers == 1:
            serial_seconds = seconds
            serial_bytes = fingerprint
            entry["collected"] = report.collected
            entry["retained"] = report.retained
        entry["runs"].append({
            "workers": workers,
            "seconds": round(seconds, 4),
            "throughput_tweets_per_s": round(len(source) / seconds, 1),
            "speedup_vs_serial": (
                round(serial_seconds / seconds, 3)
                if serial_seconds is not None else None
            ),
            "byte_identical_to_serial": (
                fingerprint == serial_bytes
                if serial_bytes is not None else None
            ),
        })
    return entry


def bench_supervision(size_target: int, seed: int) -> dict[str, Any]:
    """Cost of the supervised pool against the plain in-process run.

    Four runs over the same firehose: the in-process baseline, the
    supervised pool at workers=1 (isolates the process-per-task and
    heartbeat cost with no parallelism in play), the supervised pool at
    workers=2 fault-free, and workers=2 under ``WorkerFaultPlan.chaos``
    (crashes, exception storms, slow tasks — the retry cost).  Each
    supervised corpus must be byte-identical to the baseline.
    """
    source = make_firehose(size_target, seed)
    config = CollectionConfig()
    policy = SupervisorPolicy()
    entry: dict[str, Any] = {
        "size_target": size_target,
        "firehose_tweets": len(source),
        "runs": [],
    }

    def fingerprint(records: list) -> bytes:
        return "\n".join(
            json.dumps(record.to_dict(), ensure_ascii=False)
            for record in records
        ).encode("utf-8")

    baseline_seconds: float | None = None
    baseline_bytes: bytes | None = None
    cases: list[tuple[str, int, dict[str, Any]]] = [
        ("in-process", 1, {}),
        ("supervised", 1, {"policy": policy}),
        ("supervised", 2, {"policy": policy}),
        ("supervised+chaos", 2, {
            "policy": policy,
            "worker_faults": WorkerFaultPlan.chaos(seed=seed),
        }),
    ]
    for mode, workers, kwargs in cases:
        start = time.perf_counter()
        records, __ = run_sharded(source, config, workers, **kwargs)
        seconds = time.perf_counter() - start
        digest = fingerprint(records)
        if baseline_seconds is None:
            baseline_seconds = seconds
            baseline_bytes = digest
        entry["runs"].append({
            "mode": mode,
            "workers": workers,
            "faulted": "worker_faults" in kwargs,
            "seconds": round(seconds, 4),
            "overhead_vs_inprocess": round(seconds / baseline_seconds, 3),
            "byte_identical_to_inprocess": digest == baseline_bytes,
        })
    return entry


def make_collected(n_records: int) -> list[CollectedTweet]:
    """Synthetic pipeline-surviving records sized for write benchmarks."""
    location = GeoMatch(
        country="US", state="KS", confidence=0.9, source="profile"
    )
    organs = tuple(Organ)
    return [
        CollectedTweet(
            tweet=Tweet(
                tweet_id=i,
                user=UserProfile(
                    user_id=i % 997,
                    screen_name=f"user{i % 997}",
                    location="Wichita, KS",
                ),
                text=f"{organs[i % len(organs)].value} donor update {i}",
            ),
            location=location,
            mentions={organs[i % len(organs)]: 1},
        )
        for i in range(n_records)
    ]


def bench_durability(
    record_counts: tuple[int, ...], seed: int
) -> dict[str, Any]:
    """Price the atomic+manifest write path against a plain buffered write.

    For each record count the same corpus is written twice: once with a
    bare buffered ``open`` (what the repo used before the storage layer
    — no crash safety, no integrity evidence) and once through
    :func:`repro.dataset.io.write_jsonl` (temp sibling, fsync, rename,
    directory fsync, plus the streaming SHA-256/CRC32 sidecar).  The
    two corpora must be byte-identical and the sidecar must verify, so
    ``overhead_vs_plain`` measures only the durability guarantees.
    """
    entry: dict[str, Any] = {"seed": seed, "runs": []}
    for n_records in record_counts:
        records = make_collected(n_records)
        with tempfile.TemporaryDirectory() as tmp:
            plain_path = Path(tmp) / "plain.jsonl"
            start = time.perf_counter()
            # The pre-storage-layer baseline, serializing per record
            # exactly as write_jsonl does so the ratio prices only the
            # durability work; bench code is exempt from RPL008
            # precisely so this comparison can exist.
            with open(plain_path, "w", encoding="utf-8") as handle:
                for record in records:
                    handle.write(
                        json.dumps(record.to_dict(), ensure_ascii=False)
                    )
                    handle.write("\n")
            plain_seconds = time.perf_counter() - start

            atomic_path = Path(tmp) / "atomic.jsonl"
            start = time.perf_counter()
            write_jsonl(records, atomic_path)
            atomic_seconds = time.perf_counter() - start

            entry["runs"].append({
                "records": n_records,
                "bytes": plain_path.stat().st_size,
                "plain_seconds": round(plain_seconds, 4),
                "atomic_manifest_seconds": round(atomic_seconds, 4),
                "overhead_vs_plain": round(
                    atomic_seconds / plain_seconds, 3
                ),
                "byte_identical_to_plain": (
                    atomic_path.read_bytes() == plain_path.read_bytes()
                ),
                "manifest_verified": verify_file(atomic_path).ok,
            })
    return entry


def bench_observability(
    size_targets: tuple[int, ...], seed: int
) -> dict[str, Any]:
    """Price run telemetry against the untraced run of the same firehose.

    For each firehose size the pipeline runs twice at workers=2: once
    untraced — the ``NULL_TELEMETRY`` fast path every instrumentation
    site hits by default — and once under an activated
    :class:`repro.obs.Telemetry`, with each worker building its own
    trace buffer and shipping it back through the result pipe.  The two
    corpora must be byte-identical (telemetry is write-only; nothing
    reads a metric to make a decision), so ``overhead_vs_untraced``
    prices exactly the recording, and the atomic trace export is timed
    and sized separately.
    """
    entry: dict[str, Any] = {"seed": seed, "runs": []}
    for size_target in size_targets:
        source = make_firehose(size_target, seed)
        start = time.perf_counter()
        corpus, __ = CollectionPipeline().run(source, workers=2)
        untraced_seconds = time.perf_counter() - start
        untraced_bytes = corpus_fingerprint(corpus)

        telemetry = Telemetry()
        start = time.perf_counter()
        with activate(telemetry):
            traced_corpus, __ = CollectionPipeline().run(source, workers=2)
        traced_seconds = time.perf_counter() - start

        with tempfile.TemporaryDirectory() as tmp:
            trace_path = Path(tmp) / "trace.jsonl"
            start = time.perf_counter()
            trace_lines = write_trace(telemetry, trace_path, source="bench")
            export_seconds = time.perf_counter() - start
            trace_bytes = trace_path.stat().st_size

        entry["runs"].append({
            "size_target": size_target,
            "firehose_tweets": len(source),
            "untraced_seconds": round(untraced_seconds, 4),
            "traced_seconds": round(traced_seconds, 4),
            "overhead_vs_untraced": round(
                traced_seconds / untraced_seconds, 3
            ),
            "byte_identical_to_untraced": (
                corpus_fingerprint(traced_corpus) == untraced_bytes
            ),
            "trace_lines": trace_lines,
            "trace_bytes": trace_bytes,
            "export_seconds": round(export_seconds, 4),
        })
    return entry


def bench_serving(
    n_requests: int,
    load_factors: tuple[int, ...],
    seed: int,
) -> dict[str, Any]:
    """Throughput and shed rate of the query service under offered load.

    One request schedule per load factor: arrivals are evenly spaced at
    ``factor``× the admission token-refill rate, so 1× offers exactly
    the sustained capacity and 16× is a heavy overload.  The mix cycles
    the three analysis queries with a health probe every eighth request
    (health is CRITICAL and must never shed).  Every run is checked
    against the accounting invariant — completed + shed + expired +
    dead-lettered == submitted — so the shed rate prices explicit
    back-pressure, never silent loss.  Wall time covers the whole
    simulated event loop; the simulated makespan is recorded separately.
    """
    kinds = ("state_signature", "relative_risk", "cluster_profile")
    entry: dict[str, Any] = {
        "seed": seed,
        "n_requests": n_requests,
        "runs": [],
    }
    with tempfile.TemporaryDirectory() as tmp:
        run_dir = Path(tmp)
        write_jsonl(make_collected(3_000), run_dir / "corpus.jsonl")
        # One generation-keyed cache across every load factor: the first
        # service pays each artifact build once, the rest start warm —
        # the deployment shape the artifact_loads_per_request number
        # prices.
        cache = ArtifactCache()
        for factor in load_factors:
            policy = ServicePolicy()
            rate = policy.admission.refill_per_second * factor
            requests = []
            for i in range(n_requests):
                if i % 8 == 0:
                    kind = "health"
                    params: tuple[tuple[str, str], ...] = ()
                elif kinds[i % len(kinds)] == "cluster_profile":
                    kind = "cluster_profile"
                    params = (("cluster", str(i % policy.cluster_k)),)
                else:
                    kind = kinds[i % len(kinds)]
                    params = (("state", "KS"),)
                requests.append(QueryRequest(
                    request_id=f"bench-{factor}x-{i}",
                    kind=kind,
                    arrival=round(i / rate, 9),
                    params=params,
                ))
            service = QueryService(run_dir, policy=policy, cache=cache)
            start = time.perf_counter()
            result = service.serve(requests)
            seconds = time.perf_counter() - start
            report = result.report
            simulated = max(
                (response.finished_at for response in result.responses),
                default=0.0,
            )
            entry["runs"].append({
                "offered_x_capacity": factor,
                "offered_rate_rps": round(rate, 1),
                "submitted": report.submitted,
                "completed": report.completed,
                "shed": report.shed,
                "expired": report.expired,
                "dead_lettered": report.dead_lettered,
                "degraded": report.degraded,
                "max_brownout_level": report.max_brownout_level,
                "shed_rate": round(report.shed / report.submitted, 4),
                "artifact_loads": report.artifact_loads,
                "artifact_loads_per_request": round(
                    report.artifact_loads / report.submitted, 4
                ),
                "simulated_seconds": round(simulated, 4),
                "seconds": round(seconds, 4),
                "throughput_responses_per_s": round(
                    len(result.responses) / seconds, 1
                ),
                "accounting_exact": report.accounted,
            })
    return entry


def bench_static_analysis(root: str = "src/repro") -> dict[str, Any]:
    """Time both reprolint passes over the source tree.

    The file-local pass re-parses every file independently; the
    whole-program pass parses once, builds the call graph, extracts one
    summary per function, and runs every dataflow fixpoint.  Findings
    are counted, not asserted — the self-clean pytest gate owns the
    "must be zero" invariant; the benchmark prices the analysis.
    """
    from repro.lint import run_lint
    from repro.lint.ipa import run_ipa

    start = time.perf_counter()
    local_findings = run_lint([root])
    local_seconds = time.perf_counter() - start

    start = time.perf_counter()
    result = run_ipa([root])
    ipa_seconds = time.perf_counter() - start

    return {
        "root": root,
        "file_local": {
            "seconds": round(local_seconds, 4),
            "findings": len(local_findings),
        },
        "whole_program": {
            "seconds": round(ipa_seconds, 4),
            "findings": len(result.findings),
            "modules": result.stats.modules,
            "functions": result.stats.functions,
            "classes": result.stats.classes,
            "call_edges": result.stats.call_edges,
            "functions_per_s": round(
                result.stats.functions / ipa_seconds, 1
            ),
            "time_budget_s": 30.0,
        },
    }


def synthetic_attention(n_users: int, seed: int) -> AttentionMatrix:
    """A row-normalized Û with organ-skewed rows (clusterable structure)."""
    rng = np.random.default_rng(seed)
    counts = rng.poisson(0.4, size=(n_users, N_ORGANS)).astype(float)
    focus = rng.integers(0, N_ORGANS, size=n_users)
    counts[np.arange(n_users), focus] += rng.poisson(3.0, size=n_users) + 1
    normalized = counts / counts.sum(axis=1, keepdims=True)
    return AttentionMatrix(
        user_ids=tuple(range(n_users)),
        states=tuple(None for _ in range(n_users)),
        counts=counts,
        normalized=normalized,
    )


def bench_clustering(
    n_users: int,
    ks: tuple[int, ...],
    worker_counts: tuple[int, ...],
    seed: int,
    n_init: int = 4,
    silhouette_rows: int = 8_000,
    memory_budget_mb: float = 64.0,
) -> dict[str, Any]:
    """Time the k-sweep per worker count plus the chunked silhouette."""
    attention = synthetic_attention(n_users, seed)
    config = UserClusteringConfig(n_init=n_init, seed=seed)
    sweep_runs = []
    serial_seconds: float | None = None
    for workers in worker_counts:
        start = time.perf_counter()
        sweep = sweep_k(attention, ks=ks, config=config, workers=workers)
        seconds = time.perf_counter() - start
        if workers == 1:
            serial_seconds = seconds
        sweep_runs.append({
            "workers": workers,
            "seconds": round(seconds, 4),
            "speedup_vs_serial": (
                round(serial_seconds / seconds, 3)
                if serial_seconds is not None else None
            ),
            "best_k_by_silhouette": sweep.best_k_by_silhouette(),
        })

    rows = attention.normalized[:silhouette_rows]
    rng = np.random.default_rng(seed)
    labels = rng.integers(0, max(ks), size=rows.shape[0])
    start = time.perf_counter()
    silhouette_samples(rows, labels, memory_budget_mb=memory_budget_mb)
    silhouette_seconds = time.perf_counter() - start

    return {
        "n_users": n_users,
        "n_organs": N_ORGANS,
        "ks": list(ks),
        "n_init": n_init,
        "sweep": sweep_runs,
        "silhouette": {
            "rows": int(rows.shape[0]),
            "memory_budget_mb": memory_budget_mb,
            "seconds": round(silhouette_seconds, 4),
        },
    }


def run_suite(
    sizes: tuple[int, ...],
    worker_counts: tuple[int, ...],
    seed: int = 7,
    smoke: bool = False,
    cluster_users_n: int = 20_000,
    cluster_ks: tuple[int, ...] = (11, 12, 13, 14),
    supervision_size: int = 20_000,
    durability_counts: tuple[int, ...] = (10_000, 100_000),
    observability_sizes: tuple[int, ...] = (10_000, 100_000),
    serving_requests: int = 480,
    serving_load_factors: tuple[int, ...] = (1, 4, 16),
    hotpath_size: int | None = None,
) -> dict[str, Any]:
    """Run the full harness and return the ``BENCH_pipeline.json`` payload."""
    if hotpath_size is None:
        hotpath_size = 5_000 if smoke else 50_000
    payload: dict[str, Any] = {
        "schema_version": SCHEMA_VERSION,
        "generated_by": "benchmarks/perf/run_bench.py",
        "smoke": smoke,
        "seed": seed,
        "cpu_count": cpu_count(),
        "pipeline": [
            bench_pipeline_size(size, worker_counts, seed) for size in sizes
        ],
        "hot_path": bench_hot_path(make_firehose(hotpath_size, seed)),
        "clustering": bench_clustering(
            cluster_users_n, cluster_ks, worker_counts, seed
        ),
        "supervision": bench_supervision(supervision_size, seed),
        "durability": bench_durability(durability_counts, seed),
        "observability": bench_observability(observability_sizes, seed),
        "serving": bench_serving(serving_requests, serving_load_factors, seed),
        "static_analysis": bench_static_analysis(),
    }
    # The headline number: this engine's serial throughput at the
    # largest measured size against the frozen v6 baseline.
    largest = max(payload["pipeline"], key=lambda e: e["size_target"])
    serial_run = next(
        run for run in largest["runs"] if run["workers"] == 1
    )
    payload["hot_path"]["serial_reference"] = {
        "size_target": largest["size_target"],
        "throughput_tweets_per_s": serial_run["throughput_tweets_per_s"],
        "v6_serial_1m_throughput": V6_SERIAL_1M_THROUGHPUT,
        "speedup_vs_v6": round(
            serial_run["throughput_tweets_per_s"] / V6_SERIAL_1M_THROUGHPUT,
            3,
        ),
    }
    payload["peak_rss_mb"] = peak_rss_mb()
    return payload


def validate_payload(payload: dict[str, Any]) -> list[str]:
    """Structural schema check; returns a list of problems (empty = valid)."""
    problems: list[str] = []

    def need(obj: dict, key: str, kind, where: str) -> Any:
        if key not in obj:
            problems.append(f"{where}: missing key {key!r}")
            return None
        value = obj[key]
        if kind is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                problems.append(f"{where}.{key}: expected number")
        elif not isinstance(value, kind) or isinstance(value, bool):
            problems.append(f"{where}.{key}: expected {kind.__name__}")
        return value

    if not isinstance(payload, dict):
        return ["payload is not an object"]
    if payload.get("schema_version") != SCHEMA_VERSION:
        problems.append(f"schema_version must be {SCHEMA_VERSION}")
    need(payload, "cpu_count", int, "payload")
    need(payload, "seed", int, "payload")
    if not isinstance(payload.get("smoke"), bool):
        problems.append("payload.smoke: expected bool")

    pipeline = payload.get("pipeline")
    if not isinstance(pipeline, list) or not pipeline:
        problems.append("payload.pipeline: expected non-empty list")
        pipeline = []
    for i, entry in enumerate(pipeline):
        where = f"pipeline[{i}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: expected object")
            continue
        need(entry, "size_target", int, where)
        need(entry, "firehose_tweets", int, where)
        need(entry, "collected", int, where)
        need(entry, "retained", int, where)
        runs = entry.get("runs")
        if not isinstance(runs, list) or not runs:
            problems.append(f"{where}.runs: expected non-empty list")
            continue
        for j, run in enumerate(runs):
            run_where = f"{where}.runs[{j}]"
            need(run, "workers", int, run_where)
            need(run, "seconds", float, run_where)
            need(run, "throughput_tweets_per_s", float, run_where)
            if run.get("workers") != 1 and run.get(
                "byte_identical_to_serial"
            ) is not True:
                problems.append(
                    f"{run_where}: parallel run is not byte-identical"
                )

    hot_path = payload.get("hot_path")
    if not isinstance(hot_path, dict):
        problems.append("payload.hot_path: expected object")
    else:
        need(hot_path, "stream_tweets", int, "hot_path")
        need(hot_path, "distinct_texts", int, "hot_path")
        for section, fast_key in (
            ("tokenize", "scan_seconds"),
            ("track_filter", "automaton_seconds"),
            ("matcher", "automaton_seconds"),
        ):
            block = hot_path.get(section)
            where = f"hot_path.{section}"
            if not isinstance(block, dict):
                problems.append(f"{where}: expected object")
                continue
            need(block, fast_key, float, where)
            need(block, "speedup", float, where)
            if block.get("parity") is not True:
                problems.append(
                    f"{where}: fast path is not equivalent to the naive path"
                )
        geocode = hot_path.get("geocode")
        if not isinstance(geocode, dict):
            problems.append("hot_path.geocode: expected object")
        else:
            need(geocode, "locations", int, "hot_path.geocode")
            need(geocode, "cold_seconds", float, "hot_path.geocode")
            need(geocode, "warm_seconds", float, "hot_path.geocode")
        reference = hot_path.get("serial_reference")
        if not isinstance(reference, dict):
            problems.append("hot_path.serial_reference: expected object")
        else:
            where = "hot_path.serial_reference"
            need(reference, "size_target", int, where)
            need(reference, "throughput_tweets_per_s", float, where)
            need(reference, "v6_serial_1m_throughput", float, where)
            need(reference, "speedup_vs_v6", float, where)

    clustering = payload.get("clustering")
    if not isinstance(clustering, dict):
        problems.append("payload.clustering: expected object")
    else:
        need(clustering, "n_users", int, "clustering")
        need(clustering, "ks", list, "clustering")
        sweep = clustering.get("sweep")
        if not isinstance(sweep, list) or not sweep:
            problems.append("clustering.sweep: expected non-empty list")
        else:
            for j, run in enumerate(sweep):
                need(run, "workers", int, f"clustering.sweep[{j}]")
                need(run, "seconds", float, f"clustering.sweep[{j}]")
        silhouette = clustering.get("silhouette")
        if not isinstance(silhouette, dict):
            problems.append("clustering.silhouette: expected object")
        else:
            need(silhouette, "rows", int, "clustering.silhouette")
            need(silhouette, "seconds", float, "clustering.silhouette")
            need(
                silhouette, "memory_budget_mb", float, "clustering.silhouette"
            )

    supervision = payload.get("supervision")
    if not isinstance(supervision, dict):
        problems.append("payload.supervision: expected object")
    else:
        need(supervision, "size_target", int, "supervision")
        need(supervision, "firehose_tweets", int, "supervision")
        sup_runs = supervision.get("runs")
        if not isinstance(sup_runs, list) or not sup_runs:
            problems.append("supervision.runs: expected non-empty list")
        else:
            for j, run in enumerate(sup_runs):
                run_where = f"supervision.runs[{j}]"
                need(run, "mode", str, run_where)
                need(run, "workers", int, run_where)
                need(run, "seconds", float, run_where)
                need(run, "overhead_vs_inprocess", float, run_where)
                if run.get("byte_identical_to_inprocess") is not True:
                    problems.append(
                        f"{run_where}: supervised run is not byte-identical"
                    )

    durability = payload.get("durability")
    if not isinstance(durability, dict):
        problems.append("payload.durability: expected object")
    else:
        dur_runs = durability.get("runs")
        if not isinstance(dur_runs, list) or not dur_runs:
            problems.append("durability.runs: expected non-empty list")
        else:
            for j, run in enumerate(dur_runs):
                run_where = f"durability.runs[{j}]"
                need(run, "records", int, run_where)
                need(run, "bytes", int, run_where)
                need(run, "plain_seconds", float, run_where)
                need(run, "atomic_manifest_seconds", float, run_where)
                need(run, "overhead_vs_plain", float, run_where)
                if run.get("byte_identical_to_plain") is not True:
                    problems.append(
                        f"{run_where}: atomic corpus is not byte-identical"
                    )
                if run.get("manifest_verified") is not True:
                    problems.append(
                        f"{run_where}: integrity sidecar failed to verify"
                    )

    observability = payload.get("observability")
    if not isinstance(observability, dict):
        problems.append("payload.observability: expected object")
    else:
        obs_runs = observability.get("runs")
        if not isinstance(obs_runs, list) or not obs_runs:
            problems.append("observability.runs: expected non-empty list")
        else:
            for j, run in enumerate(obs_runs):
                run_where = f"observability.runs[{j}]"
                need(run, "size_target", int, run_where)
                need(run, "firehose_tweets", int, run_where)
                need(run, "untraced_seconds", float, run_where)
                need(run, "traced_seconds", float, run_where)
                need(run, "overhead_vs_untraced", float, run_where)
                need(run, "trace_lines", int, run_where)
                need(run, "trace_bytes", int, run_where)
                need(run, "export_seconds", float, run_where)
                if run.get("byte_identical_to_untraced") is not True:
                    problems.append(
                        f"{run_where}: traced corpus is not byte-identical"
                    )

    serving = payload.get("serving")
    if not isinstance(serving, dict):
        problems.append("payload.serving: expected object")
    else:
        need(serving, "n_requests", int, "serving")
        srv_runs = serving.get("runs")
        if not isinstance(srv_runs, list) or not srv_runs:
            problems.append("serving.runs: expected non-empty list")
        else:
            for j, run in enumerate(srv_runs):
                run_where = f"serving.runs[{j}]"
                need(run, "offered_x_capacity", int, run_where)
                need(run, "offered_rate_rps", float, run_where)
                need(run, "submitted", int, run_where)
                need(run, "completed", int, run_where)
                need(run, "shed", int, run_where)
                need(run, "expired", int, run_where)
                need(run, "dead_lettered", int, run_where)
                need(run, "shed_rate", float, run_where)
                need(run, "seconds", float, run_where)
                need(run, "throughput_responses_per_s", float, run_where)
                rate = run.get("shed_rate")
                if (
                    isinstance(rate, (int, float))
                    and not isinstance(rate, bool)
                    and not 0.0 <= rate <= 1.0
                ):
                    problems.append(f"{run_where}.shed_rate: outside [0, 1]")
                if run.get("accounting_exact") is not True:
                    problems.append(
                        f"{run_where}: request accounting is not exact"
                    )
                need(run, "artifact_loads", int, run_where)
                per_request = need(
                    run, "artifact_loads_per_request", float, run_where
                )
                if (
                    isinstance(per_request, (int, float))
                    and not isinstance(per_request, bool)
                    and per_request >= 1.0
                ):
                    problems.append(
                        f"{run_where}.artifact_loads_per_request: "
                        "cache is not amortizing loads (>= 1 per request)"
                    )

    static_analysis = payload.get("static_analysis")
    if not isinstance(static_analysis, dict):
        problems.append("payload.static_analysis: expected object")
    else:
        need(static_analysis, "root", str, "static_analysis")
        file_local = static_analysis.get("file_local")
        if not isinstance(file_local, dict):
            problems.append("static_analysis.file_local: expected object")
        else:
            need(file_local, "seconds", float, "static_analysis.file_local")
            need(file_local, "findings", int, "static_analysis.file_local")
        whole = static_analysis.get("whole_program")
        if not isinstance(whole, dict):
            problems.append("static_analysis.whole_program: expected object")
        else:
            where = "static_analysis.whole_program"
            need(whole, "seconds", float, where)
            need(whole, "findings", int, where)
            need(whole, "modules", int, where)
            need(whole, "functions", int, where)
            need(whole, "classes", int, where)
            need(whole, "call_edges", int, where)
            need(whole, "functions_per_s", float, where)
            budget = whole.get("time_budget_s")
            seconds = whole.get("seconds")
            if (
                isinstance(budget, (int, float))
                and isinstance(seconds, (int, float))
                and seconds >= budget
            ):
                problems.append(
                    f"{where}: whole-program pass exceeded its "
                    f"{budget}s budget ({seconds}s)"
                )

    rss = payload.get("peak_rss_mb")
    if not isinstance(rss, dict):
        problems.append("payload.peak_rss_mb: expected object")
    else:
        need(rss, "self", float, "peak_rss_mb")
        need(rss, "children", float, "peak_rss_mb")
    return problems
