"""CLI entry point for the performance harness.

Usage::

    PYTHONPATH=src:. python -m benchmarks.perf.run_bench            # full
    PYTHONPATH=src:. python -m benchmarks.perf.run_bench --smoke    # CI

The full run times the pipeline on ~10k/100k/1M-tweet firehoses with
worker counts 1/2/4 and writes ``BENCH_pipeline.json`` at the repo root;
``--smoke`` shrinks every axis so the harness plus schema validation
finishes in well under a minute.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from benchmarks.perf.harness import run_suite, validate_payload

FULL_SIZES = (10_000, 100_000, 1_000_000)
SMOKE_SIZES = (2_000,)
FULL_WORKERS = (1, 2, 4)
SMOKE_WORKERS = (1, 2)
DEFAULT_OUTPUT = Path(__file__).resolve().parents[2] / "BENCH_pipeline.json"


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes; validates the harness, not the hardware",
    )
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="target firehose sizes (overrides the mode default)",
    )
    parser.add_argument(
        "--workers", type=int, nargs="+", default=None,
        help="worker counts to time (must include 1 for the baseline)",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT,
        help=f"artifact path (default: {DEFAULT_OUTPUT})",
    )
    return parser.parse_args(argv)


def main(argv: list[str] | None = None) -> int:
    args = parse_args(argv)
    sizes = tuple(args.sizes or (SMOKE_SIZES if args.smoke else FULL_SIZES))
    workers = tuple(
        args.workers or (SMOKE_WORKERS if args.smoke else FULL_WORKERS)
    )
    if workers[0] != 1:
        print("error: --workers must start with 1 (serial baseline)",
              file=sys.stderr)
        return 2

    payload = run_suite(
        sizes=sizes,
        worker_counts=workers,
        seed=args.seed,
        smoke=args.smoke,
        cluster_users_n=2_000 if args.smoke else 20_000,
        cluster_ks=(11, 12) if args.smoke else (11, 12, 13, 14),
        supervision_size=2_000 if args.smoke else 20_000,
        durability_counts=(1_000,) if args.smoke else (10_000, 100_000),
        observability_sizes=(2_000,) if args.smoke else (10_000, 100_000),
        serving_requests=240 if args.smoke else 480,
    )
    problems = validate_payload(payload)
    if problems:
        for problem in problems:
            print(f"schema violation: {problem}", file=sys.stderr)
        return 1

    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.output}")
    for entry in payload["pipeline"]:
        for run in entry["runs"]:
            print(
                f"  pipeline size={entry['firehose_tweets']:>9,} "
                f"workers={run['workers']} "
                f"{run['throughput_tweets_per_s']:>10,.0f} tweets/s "
                f"speedup={run['speedup_vs_serial']}"
            )
    hot_path = payload["hot_path"]
    for section in ("tokenize", "track_filter", "matcher", "geocode"):
        block = hot_path[section]
        parity = block.get("parity")
        print(
            f"  hot-path    {section:<12} speedup={block['speedup']}x"
            + ("" if parity is None else f" parity={parity}")
        )
    reference = hot_path["serial_reference"]
    print(
        f"  hot-path    serial size={reference['size_target']:,} "
        f"{reference['throughput_tweets_per_s']:,.0f} tweets/s "
        f"({reference['speedup_vs_v6']}x vs v6 serial-1M baseline)"
    )
    for run in payload["clustering"]["sweep"]:
        print(
            f"  k-sweep workers={run['workers']} {run['seconds']:.2f}s "
            f"speedup={run['speedup_vs_serial']}"
        )
    for run in payload["supervision"]["runs"]:
        print(
            f"  supervision {run['mode']:<16} workers={run['workers']} "
            f"{run['seconds']:.2f}s "
            f"overhead={run['overhead_vs_inprocess']}x"
        )
    for run in payload["durability"]["runs"]:
        print(
            f"  durability  records={run['records']:>7,} "
            f"plain={run['plain_seconds']:.3f}s "
            f"atomic+manifest={run['atomic_manifest_seconds']:.3f}s "
            f"overhead={run['overhead_vs_plain']}x"
        )
    for run in payload["serving"]["runs"]:
        print(
            f"  serving     offered={run['offered_x_capacity']:>2}x "
            f"({run['offered_rate_rps']:,.0f} rps) "
            f"shed_rate={run['shed_rate']:.1%} "
            f"completed={run['completed']}/{run['submitted']} "
            f"brownout={run['max_brownout_level']}"
        )
    for run in payload["observability"]["runs"]:
        print(
            f"  observability tweets={run['firehose_tweets']:>9,} "
            f"untraced={run['untraced_seconds']:.3f}s "
            f"traced={run['traced_seconds']:.3f}s "
            f"overhead={run['overhead_vs_untraced']}x "
            f"trace={run['trace_bytes']:,}B"
        )
    print(f"  cpu_count={payload['cpu_count']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
