"""Microbenchmarks for the single-core hot-path engine.

Times each layer of the hot path in isolation, always against the naive
reference implementation that is still shipped as the oracle:

* ``tokenize``  — the full :class:`Token`-allocating tokenizer versus
  the allocation-free :func:`repro.nlp.tokenize.scan_words_hashtags`
  sweep the matching layers actually use;
* ``track_filter`` — :meth:`TrackFilter.matches_naive` (per-term scan)
  versus :meth:`TrackFilter.matches` (compiled
  :class:`~repro.nlp.automaton.TermVocabulary`);
* ``matcher`` — :meth:`OrganMatcher.mentions_naive` versus the
  Aho–Corasick :meth:`OrganMatcher.mentions`;
* ``geocode`` — the geocoder's cold resolution cost versus the warm
  bounded-memo path over a heavy-tailed location sample.

Every comparison also *checks parity* — the fast path must produce
exactly the naive result on every sampled text — and the parity boolean
lands in the artifact, where schema validation requires it to be true.
Texts come from the same synthetic firehose the pipeline benchmarks use,
deduplicated for the cold-path timings so per-text memos cannot flatter
the numbers, with the raw stream timed separately to show what the
memos are worth on realistic (repetitive) traffic.
"""

from __future__ import annotations

import time
from typing import Any

from repro.config import CollectionConfig
from repro.geo.geocoder import Geocoder
from repro.nlp.keywords import build_query_set, track_phrases
from repro.nlp.matcher import OrganMatcher
from repro.nlp.tokenize import scan_words_hashtags, tokenize, TokenKind
from repro.twitter.stream import TrackFilter


def _fresh_caches() -> None:
    tokenize.cache_clear()
    scan_words_hashtags.cache_clear()


def _track_filter() -> TrackFilter:
    config = CollectionConfig()
    return TrackFilter(
        track_phrases(
            build_query_set(config.context_terms, config.subject_terms)
        )
    )


def bench_tokenize(texts: list[str]) -> dict[str, Any]:
    """Full tokenizer vs the words/hashtags fast scan, with parity."""
    parity = True
    for text in texts[:2_000]:
        tokens = tokenize(text)
        expected = (
            tuple(t.text for t in tokens if t.kind is TokenKind.WORD),
            tuple(t.text for t in tokens if t.kind is TokenKind.HASHTAG),
        )
        if scan_words_hashtags(text) != expected:
            parity = False
            break

    _fresh_caches()
    start = time.perf_counter()
    for text in texts:
        tokenize(text)
    tokenize_seconds = time.perf_counter() - start

    _fresh_caches()
    start = time.perf_counter()
    for text in texts:
        scan_words_hashtags(text)
    scan_seconds = time.perf_counter() - start

    return {
        "texts": len(texts),
        "tokenize_seconds": round(tokenize_seconds, 4),
        "scan_seconds": round(scan_seconds, 4),
        "speedup": round(tokenize_seconds / scan_seconds, 3),
        "parity": parity,
    }


def bench_track_filter(
    texts: list[str], stream: list[str]
) -> dict[str, Any]:
    """Per-term keyword scan vs the compiled automaton vocabulary."""
    oracle = _track_filter()
    parity = all(
        oracle.matches(text) == oracle.matches_naive(text) for text in texts
    )

    _fresh_caches()
    naive = _track_filter()
    start = time.perf_counter()
    for text in texts:
        naive.matches_naive(text)
    naive_seconds = time.perf_counter() - start

    _fresh_caches()
    fast = _track_filter()
    start = time.perf_counter()
    for text in texts:
        fast.matches(text)
    fast_seconds = time.perf_counter() - start

    # The same filter over the raw (repetitive) stream: what the
    # per-text memo is worth on realistic traffic.
    start = time.perf_counter()
    for text in stream:
        fast.matches(text)
    stream_seconds = time.perf_counter() - start

    return {
        "texts": len(texts),
        "stream": len(stream),
        "naive_seconds": round(naive_seconds, 4),
        "automaton_seconds": round(fast_seconds, 4),
        "speedup": round(naive_seconds / fast_seconds, 3),
        "stream_seconds": round(stream_seconds, 4),
        "stream_tweets_per_s": round(len(stream) / stream_seconds, 1),
        "parity": parity,
    }


def bench_matcher(texts: list[str]) -> dict[str, Any]:
    """Naive per-alias mention scan vs the Aho–Corasick path."""
    oracle = OrganMatcher()
    parity = all(
        oracle.mentions(text) == oracle.mentions_naive(text)
        for text in texts
    )

    _fresh_caches()
    naive = OrganMatcher()
    start = time.perf_counter()
    for text in texts:
        naive.mentions_naive(text)
    naive_seconds = time.perf_counter() - start

    _fresh_caches()
    fast = OrganMatcher()
    start = time.perf_counter()
    for text in texts:
        fast.mentions(text)
    fast_seconds = time.perf_counter() - start

    return {
        "texts": len(texts),
        "naive_seconds": round(naive_seconds, 4),
        "automaton_seconds": round(fast_seconds, 4),
        "speedup": round(naive_seconds / fast_seconds, 3),
        "parity": parity,
    }


def bench_geocode(locations: list[str]) -> dict[str, Any]:
    """Cold resolution vs the warm bounded memo over real-shape traffic."""
    geocoder = Geocoder()
    start = time.perf_counter()
    for location in locations:
        geocoder.geocode(location)
    cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for location in locations:
        geocoder.geocode(location)
    warm_seconds = time.perf_counter() - start

    return {
        "locations": len(locations),
        "distinct": len(set(locations)),
        "cold_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 4),
        "speedup": round(cold_seconds / max(warm_seconds, 1e-9), 3),
    }


def bench_hot_path(source: list[Any]) -> dict[str, Any]:
    """Run every hot-path microbench over one synthetic firehose."""
    stream = [tweet.text for tweet in source]
    seen: set[str] = set()
    texts: list[str] = []
    for text in stream:
        if text not in seen:
            seen.add(text)
            texts.append(text)
    locations = [
        tweet.user.location
        for tweet in source
        if tweet.user.location is not None
    ]
    return {
        "stream_tweets": len(stream),
        "distinct_texts": len(texts),
        "tokenize": bench_tokenize(texts),
        "track_filter": bench_track_filter(texts, stream),
        "matcher": bench_matcher(texts),
        "geocode": bench_geocode(locations),
    }
