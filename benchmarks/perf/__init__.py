"""Reproducible performance harness (serial vs sharded pipeline)."""
