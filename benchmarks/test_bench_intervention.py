"""Bench I1 — intervention strategies on the follower graph (§V).

The paper's closing claim is that its characterization "can inform models
of social influence … designing interventions that effectively target
specific groups of users."  This bench runs the comparison: seeding an
organ campaign by Fig. 7-style segments delivers more on-topic awareness
per reached user than raw audience size, which in turn beats random
seeding on raw reach.
"""

import pytest

from repro.network.graph import GraphConfig, build_follower_graph
from repro.network.intervention import CampaignStrategy, run_campaign
from repro.organs import Organ
from repro.synth.scenarios import paper2016_scenario
from repro.synth.world import SyntheticWorld


@pytest.fixture(scope="module")
def campaign_graph():
    # A dedicated small world keeps the graph build + Monte-Carlo fast.
    world = SyntheticWorld(paper2016_scenario(scale=0.015, seed=7))
    return build_follower_graph(world, GraphConfig(seed=1))


@pytest.mark.benchmark(group="intervention")
def test_strategy_comparison(benchmark, campaign_graph):
    organ = Organ.KIDNEY

    def run_all():
        return {
            strategy: run_campaign(
                campaign_graph, strategy, organ, budget=10,
                n_simulations=20, seed=3,
            )
            for strategy in (
                CampaignStrategy.RANDOM,
                CampaignStrategy.TOP_FOLLOWERS,
                CampaignStrategy.SEGMENT,
            )
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)

    print()
    for strategy, outcome in outcomes.items():
        print(
            f"{strategy.value:<14} reach={outcome.mean_reach:8.1f} "
            f"aligned={outcome.mean_aligned_reach:8.1f} "
            f"alignment={outcome.alignment:.3f}"
        )

    random_run = outcomes[CampaignStrategy.RANDOM]
    top = outcomes[CampaignStrategy.TOP_FOLLOWERS]
    segment = outcomes[CampaignStrategy.SEGMENT]

    # Audience size buys reach.
    assert top.mean_reach > 5 * random_run.mean_reach
    # Characterization-informed targeting buys alignment.
    assert segment.alignment > top.alignment > random_run.alignment * 0.9
    # Segment targeting is competitive on aligned reach despite a smaller
    # raw audience.
    assert segment.mean_aligned_reach > 0.5 * top.mean_aligned_reach


@pytest.mark.benchmark(group="intervention")
def test_greedy_reference(benchmark, campaign_graph):
    greedy = benchmark.pedantic(
        run_campaign,
        args=(campaign_graph, CampaignStrategy.GREEDY, Organ.HEART),
        kwargs={"budget": 5, "n_simulations": 16, "seed": 3},
        rounds=1,
        iterations=1,
    )
    top = run_campaign(
        campaign_graph, CampaignStrategy.TOP_FOLLOWERS, Organ.HEART,
        budget=5, n_simulations=16, seed=3,
    )
    # Greedy must at least match the heuristic within Monte-Carlo noise.
    assert greedy.mean_reach >= 0.9 * top.mean_reach
