"""Bench F3 — regenerate Fig. 3 (organ co-attention characterization).

Asserts the §IV-A reading: kidney is the most important co-organ for
heart, liver, and pancreas users; heart for kidney and lung users; and
the co-occurrences are not reciprocal.  Intestine is reported but not
asserted — the paper itself calls its statistics unreliable.
"""

import pytest

from repro.core.characterize import characterize_organs
from repro.organs import Organ


@pytest.mark.benchmark(group="fig3")
def test_fig3_organ_characterization(benchmark, bench_corpus, bench_suite):
    characterization = benchmark.pedantic(
        characterize_organs, args=(bench_corpus,), rounds=1, iterations=1
    )

    print()
    print(bench_suite.run_fig3().render())

    assert characterization.top_co_organ(Organ.HEART) is Organ.KIDNEY
    assert characterization.top_co_organ(Organ.LIVER) is Organ.KIDNEY
    assert characterization.top_co_organ(Organ.PANCREAS) is Organ.KIDNEY
    assert characterization.top_co_organ(Organ.KIDNEY) is Organ.HEART
    assert characterization.top_co_organ(Organ.LUNG) is Organ.HEART

    # "Clearly, these co-occurrences are not reciprocal."
    assert not all(characterization.reciprocity().values())

    # Every organ dominates its own profile (Fig. 3's leading bar).
    for organ in characterization.characterized_organs():
        top, __ = characterization.profile(organ)[0]
        assert top is organ
