"""Ablation A4 — geolocation source: GPS-only vs profile-augmented.

The paper notes GPS coordinates are precise but rare (~1.4% of tweets,
Morstatter et al.) while the profile location is abundant but noisy, and
chooses to augment with profile geocoding.  We measure both coverage and
accuracy of each source against the synthetic world's ground truth.
"""

import pytest

from repro.config import CollectionConfig
from repro.geo.geocoder import Geocoder
from repro.pipeline.augment import augment_location
from repro.pipeline.collect import collect


@pytest.mark.benchmark(group="ablation-geo")
def test_gps_only_coverage_is_tiny(benchmark, bench_world):
    """GPS-only location loses ~98.6% of collected tweets."""
    geocoder = Geocoder()
    config = CollectionConfig()
    truth = bench_world.ground_truth

    def measure():
        gps_located = 0
        profile_located = 0
        gps_correct = 0
        profile_correct = 0
        collected = 0
        for tweet in collect(bench_world.firehose(), config):
            collected += 1
            expected_state = truth.seeds[tweet.user.user_id].state
            match = augment_location(tweet, geocoder, config)
            if match.source == "gps":
                gps_located += 1
                if match.state == expected_state:
                    gps_correct += 1
            elif match.is_us_state:
                profile_located += 1
                if match.state == expected_state:
                    profile_correct += 1
        return (collected, gps_located, gps_correct,
                profile_located, profile_correct)

    collected, gps_located, gps_correct, profile_located, profile_correct = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )

    gps_coverage = gps_located / collected
    combined_coverage = (gps_located + profile_located) / collected
    print()
    print(
        f"coverage — GPS only: {gps_coverage:.2%}, "
        f"GPS+profile: {combined_coverage:.2%} of {collected} collected"
    )
    if gps_located:
        print(f"accuracy — GPS: {gps_correct / gps_located:.2%}")
    print(f"accuracy — profile: {profile_correct / profile_located:.2%}")

    # Morstatter et al.: ~1.4% geo-tagged.
    assert gps_coverage < 0.03
    # Profile augmentation multiplies usable location coverage ~10x.
    assert combined_coverage > 5 * gps_coverage
    # Profile geocoding stays accurate despite the noise.
    assert profile_correct / profile_located > 0.9
